//! Incremental-vs-batch determinism for the experiment harness: the
//! incremental statistical core (CELF selection, warm-start Cox-Time,
//! cached criteria) must render byte-identical output with the
//! `ANUBIS_INCREMENTAL` toggle on or off, at any worker count. The whole
//! check lives in a single `#[test]` (its own binary) so the env-var
//! mutations can never race another test.

use anubis_bench::experiments::{fig8, table3};

/// Renders table3 (warm-start Cox-Time trainer vs cold fit) and fig8
/// (CELF vs eager selection inside the cluster simulation) under the
/// current env configuration.
fn render_both() -> (String, String) {
    let t3 = table3::run(&table3::Table3Config::quick()).to_string();
    let f8 = fig8::run(&fig8::Fig8Config::quick()).to_string();
    (t3, f8)
}

#[test]
fn rendered_output_is_identical_with_incrementality_on_or_off() {
    // Batch reference at one worker.
    std::env::set_var("ANUBIS_THREADS", "1");
    std::env::set_var("ANUBIS_INCREMENTAL", "0");
    let (table3_batch, fig8_batch) = render_both();

    // Every other (incremental, threads) combination must reproduce the
    // batch rendering byte for byte.
    for threads in ["1", "4"] {
        std::env::set_var("ANUBIS_THREADS", threads);
        std::env::set_var("ANUBIS_INCREMENTAL", "1");
        let (t3, f8) = render_both();
        assert_eq!(
            table3_batch, t3,
            "table3 must render identically with incrementality on at {threads} workers"
        );
        assert_eq!(
            fig8_batch, f8,
            "fig8 must render identically with incrementality on at {threads} workers"
        );
    }

    // Batch at 4 workers closes the square.
    std::env::set_var("ANUBIS_THREADS", "4");
    std::env::set_var("ANUBIS_INCREMENTAL", "0");
    let (t3, f8) = render_both();
    std::env::remove_var("ANUBIS_THREADS");
    std::env::remove_var("ANUBIS_INCREMENTAL");
    assert_eq!(
        table3_batch, t3,
        "table3 must render identically in batch mode at 4 workers"
    );
    assert_eq!(
        fig8_batch, f8,
        "fig8 must render identically in batch mode at 4 workers"
    );
}

//! Smoke tests over the experiment harness: every cheap experiment runs in
//! its quick configuration and reproduces the paper's qualitative shape.
//! (The heavier experiments are covered by their own module tests inside
//! `anubis-bench`.)

use anubis_bench::experiments::{appendix_a, fig1, fig2, fig3, fig5, fig6};

#[test]
fn fig1_shape() {
    let result = fig1::run(&fig1::Fig1Config::quick());
    assert!(result.shares.len() >= 8);
    assert!(result.total_incidents > 50);
}

#[test]
fn fig2_shape() {
    let result = fig2::run(&fig2::Fig2Config::quick());
    let over_day = result
        .exceedance
        .iter()
        .find(|(h, _, _)| *h == 24.0)
        .unwrap()
        .2;
    assert!(
        (0.3..0.5).contains(&over_day),
        "38.1%-ish of tickets run past a day"
    );
}

#[test]
fn fig3_shape() {
    let result = fig3::run(&fig3::Fig3Config::quick());
    // Who wins: the healthy-redundancy scenario has no slow tail, the
    // degraded one does.
    assert!(result.degraded_fraction_below(180.0) > 0.05);
    assert!(result.healthy_bandwidths.iter().all(|&b| b >= 180.0));
}

#[test]
fn fig5_shape() {
    let result = fig5::run(&fig5::Fig5Config::quick());
    assert!(result.transformer_share > 0.3, "Transformers dominate");
    assert!((0.3..0.42).contains(&result.unidentified_transformer_fraction));
}

#[test]
fn fig6_shape() {
    let result = fig6::run(&fig6::Fig6Config::quick());
    // The paper's point: the strawmen false-positive, the criteria do not.
    assert!(result.lof.false_positives + result.ocsvm.false_positives > 0);
    assert_eq!(result.criteria.false_positives, 0);
}

#[test]
fn appendix_a_shape() {
    let result = appendix_a::run(&appendix_a::AppendixAConfig::quick());
    let small = result.scales.first().unwrap();
    let big = result.scales.last().unwrap();
    assert!(big.full_rounds > small.full_rounds, "full scan is O(n)");
    assert_eq!(big.quick_rounds, small.quick_rounds, "quick scan is O(1)");
}

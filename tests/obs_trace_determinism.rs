//! Byte-determinism of `anubis-obs` traces: an instrumented scenario must
//! serialize to the exact same JSONL bytes on repeated runs and at any
//! worker-thread count. The whole check lives in a single `#[test]` (its
//! own binary) so the `ANUBIS_THREADS` mutations can never race another
//! test.
//!
//! The thread-count half pins the executor contract: recording is only
//! enabled on the coordinating thread and `anubis_parallel::execute`
//! suppresses it on the inline single-worker path, so work dispatched
//! through the executor is invisible to the trace no matter where it ran.

use anubis_benchsuite::{run_set_parallel, BenchmarkId};
use anubis_cluster::{simulate, ClusterSimConfig, Policy};
use anubis_hwsim::{NodeId, NodeSim, NodeSpec};
use anubis_traces::{generate_allocation_trace, AllocationConfig};

/// Runs an instrumented scenario — a serial cluster simulation plus a
/// benchmark fan-out through the deterministic executor (worker count from
/// `ANUBIS_THREADS`) — and returns the drained trace's JSONL bytes.
fn traced_scenario() -> String {
    anubis_obs::enable_with_capacity(1 << 16);

    let config = ClusterSimConfig {
        nodes: 32,
        horizon_hours: 240.0,
        ..Default::default()
    };
    let jobs = generate_allocation_trace(&AllocationConfig {
        duration_hours: 240.0,
        ..AllocationConfig::stressed(32)
    });
    let outcome = simulate(&config, &jobs, &Policy::FullSet);
    assert!(outcome.jobs_completed > 0);

    let mut nodes: Vec<NodeSim> = (0..8)
        .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 33))
        .collect();
    let set = [BenchmarkId::GpuGemmFp16, BenchmarkId::CpuLatency];
    run_set_parallel(&set, &mut nodes, 0).expect("benchmark fan-out");

    let trace = anubis_obs::drain();
    anubis_obs::disable();
    trace.to_jsonl()
}

#[test]
fn traces_are_byte_identical_across_runs_and_thread_counts() {
    std::env::set_var("ANUBIS_THREADS", "1");
    let first = traced_scenario();
    let second = traced_scenario();
    std::env::set_var("ANUBIS_THREADS", "4");
    let four_workers = traced_scenario();
    std::env::remove_var("ANUBIS_THREADS");

    assert_eq!(
        first, second,
        "repeated runs must produce identical trace bytes"
    );
    assert_eq!(
        first, four_workers,
        "ANUBIS_THREADS=1 and =4 must produce identical trace bytes"
    );

    // Sanity: the trace is substantial and carries the expected spans.
    assert!(first.lines().count() > 10, "trace too small:\n{first}");
    assert!(first.contains("\"name\":\"cluster.simulate\""));
    assert!(first.contains("\"name\":\"runner.run_set_parallel\""));
    assert!(first.contains("\"counter\":\"sim.jobs_completed\""));
    assert!(
        !first.contains("\"name\":\"GPU GEMM FP16\""),
        "per-node benchmark spans must be suppressed under the executor"
    );

    // Debug builds publish the simulator's arena-pool accounting when the
    // per-tick scratch arenas reset; the totals are part of the same
    // deterministic byte contract (release builds omit them entirely).
    #[cfg(debug_assertions)]
    {
        assert!(first.contains("\"counter\":\"arena.takes\""));
        assert!(first.contains("\"counter\":\"arena.misses\""));
    }
}

//! Cross-crate property tests: invariants that span the hardware
//! simulator, the benchmark suite and the Validator.

use anubis::hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis::validator::{calculate_criteria, CentroidMethod};
use anubis_benchsuite::{run_benchmark, BenchmarkId};
use anubis_metrics::Sample;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A severe compute defect is always filtered, regardless of severity
    /// draw and seed; mild (< 1%) deviations never are.
    #[test]
    fn severe_defects_always_filtered(severity in 0.15f64..0.6, seed in 0u64..500) {
        let mut samples = Vec::new();
        for i in 0..10u32 {
            let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), seed);
            samples.push(run_benchmark(BenchmarkId::GpuGemmFp16, &mut node).unwrap());
        }
        let mut defective = NodeSim::new(NodeId(100), NodeSpec::a100_8x(), seed);
        defective.inject_fault(FaultKind::GpuComputeDegraded { severity });
        samples.push(run_benchmark(BenchmarkId::GpuGemmFp16, &mut defective).unwrap());
        let result = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid).unwrap();
        prop_assert!(result.defects.contains(&10), "severity {severity} must be caught");
        prop_assert!(
            result.defects.iter().all(|&d| d == 10),
            "healthy nodes stay healthy: {:?}",
            result.defects
        );
    }

    /// Criteria results are invariant under sample-order permutation of
    /// the healthy cohort (the defect set is found regardless of order).
    #[test]
    fn criteria_defects_are_order_independent(rotate in 0usize..12, seed in 0u64..200) {
        let mut samples: Vec<Sample> = Vec::new();
        for i in 0..12u32 {
            let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), seed);
            samples.push(run_benchmark(BenchmarkId::CpuLatency, &mut node).unwrap());
        }
        let mut defective = NodeSim::new(NodeId(99), NodeSpec::a100_8x(), seed);
        defective.inject_fault(FaultKind::CpuMemoryLatency { severity: 0.4 });
        let bad = run_benchmark(BenchmarkId::CpuLatency, &mut defective).unwrap();

        let mut ordered = samples.clone();
        ordered.push(bad.clone());
        let baseline = calculate_criteria(&ordered, 0.95, CentroidMethod::Medoid).unwrap();

        let mut rotated = samples;
        rotated.rotate_left(rotate % 12);
        rotated.insert(rotate % 13, bad);
        let permuted = calculate_criteria(&rotated, 0.95, CentroidMethod::Medoid).unwrap();

        prop_assert_eq!(baseline.defects.len(), permuted.defects.len());
    }

    /// Node measurement determinism: same id/spec/seed gives identical
    /// benchmark samples; repair after arbitrary faults restores health.
    #[test]
    fn repair_restores_all_measurable_paths(severity in 0.1f64..0.5, seed in 0u64..300) {
        let mut reference = NodeSim::new(NodeId(1), NodeSpec::h100_8x(), seed);
        let mut node = NodeSim::new(NodeId(1), NodeSpec::h100_8x(), seed);
        node.inject_fault(FaultKind::GpuComputeDegraded { severity });
        node.inject_fault(FaultKind::DiskSlow { severity });
        node.inject_fault(FaultKind::NvLinkLanesDown { lanes: 50 });
        node.repair_all();
        prop_assert!(!node.has_detectable_defect());
        prop_assert!(!node.has_hidden_damage());
        // Post-repair measurements match a never-faulted twin (same RNG
        // stream position is not guaranteed, so compare deterministic
        // effective rates instead).
        prop_assert_eq!(
            node.effective_tflops(anubis::hwsim::Precision::Fp16),
            reference.effective_tflops(anubis::hwsim::Precision::Fp16)
        );
        let healthy = run_benchmark(BenchmarkId::GpuGemmFp16, &mut reference).unwrap();
        let repaired = run_benchmark(BenchmarkId::GpuGemmFp16, &mut node).unwrap();
        let diff = (healthy.mean() - repaired.mean()).abs() / healthy.mean();
        prop_assert!(diff < 0.01, "repaired node at nominal: {diff}");
    }
}

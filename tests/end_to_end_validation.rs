//! Cross-crate integration: the full validation pipeline catches every
//! fault class through the benchmark that should see it.

use anubis::hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis::netsim::{FatTree, FatTreeConfig};
use anubis::{Anubis, AnubisConfig, ValidationEvent};
use anubis_benchsuite::BenchmarkId;

fn fleet(n: u32, seed: u64) -> (Vec<NodeSim>, Vec<usize>) {
    let nodes = (0..n)
        .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), seed))
        .collect();
    (nodes, (0..n as usize).collect())
}

/// Each injectable fault class, the node that carries it, and a benchmark
/// expected to flag it.
fn fault_matrix() -> Vec<(FaultKind, BenchmarkId)> {
    vec![
        (
            FaultKind::GpuComputeDegraded { severity: 0.3 },
            BenchmarkId::GpuGemmFp16,
        ),
        (
            FaultKind::GpuMemoryBandwidthDegraded { severity: 0.3 },
            BenchmarkId::GpuCopyBandwidth,
        ),
        (
            FaultKind::PcieDowngrade { severity: 0.5 },
            BenchmarkId::GpuH2dBandwidth,
        ),
        (
            FaultKind::HcaDegraded { severity: 0.4 },
            BenchmarkId::IbHcaLoopback,
        ),
        (
            FaultKind::CpuMemoryLatency { severity: 0.3 },
            BenchmarkId::CpuLatency,
        ),
        (
            FaultKind::DiskSlow { severity: 0.5 },
            BenchmarkId::DiskSeqRead,
        ),
        (
            FaultKind::OverlapInterference { severity: 0.3 },
            BenchmarkId::MatmulAllReduceOverlap,
        ),
        (
            FaultKind::KernelLaunchOverhead { severity: 0.5 },
            BenchmarkId::KernelLaunch,
        ),
        (
            FaultKind::ThermalThrottle { severity: 0.25 },
            BenchmarkId::GpuBurn,
        ),
    ]
}

#[test]
fn every_fault_class_is_caught_by_its_benchmark() {
    let matrix = fault_matrix();
    let (mut nodes, members) = fleet(matrix.len() as u32 + 12, 99);
    // Inject fault k on node k; the remaining 12 nodes stay healthy.
    for (k, (fault, _)) in matrix.iter().enumerate() {
        nodes[k].inject_fault(*fault);
    }
    let mut system = Anubis::new(AnubisConfig::default());
    let outcome = system
        .handle_event(&ValidationEvent::NodesAdded, &mut nodes, &members, None)
        .expect("build-out validation");
    for (k, (fault, _)) in matrix.iter().enumerate() {
        assert!(
            outcome.defective.contains(&NodeId(k as u32)),
            "node {k} with {fault:?} must be flagged"
        );
    }
    // Healthy nodes pass.
    for k in matrix.len()..nodes.len() {
        assert!(
            !outcome.defective.contains(&NodeId(k as u32)),
            "healthy node {k} must not be flagged"
        );
    }
}

#[test]
fn flagging_benchmark_matches_fault_class() {
    // Validate one defective node at a time against criteria learned from
    // a healthy cohort, and check the *right* benchmark flags it.
    let (mut cohort, members) = fleet(14, 5);
    let mut system = Anubis::new(AnubisConfig::default());
    system
        .handle_event(&ValidationEvent::NodesAdded, &mut cohort, &members, None)
        .expect("bootstrap");

    for (fault, expected_bench) in fault_matrix() {
        let mut probe = vec![NodeSim::new(NodeId(777), NodeSpec::a100_8x(), 5)];
        probe[0].inject_fault(fault);
        let report = system
            .validator()
            .validate(&[expected_bench], &mut probe, &[0], None)
            .expect("single-benchmark validation");
        assert!(
            report
                .flagged
                .get(&NodeId(777))
                .is_some_and(|b| b.contains(&expected_bench)),
            "{expected_bench} must flag {fault:?}: {:?}",
            report.flagged
        );
    }
}

#[test]
fn masked_redundancy_loss_passes_validation_until_it_does_not() {
    let (mut cohort, members) = fleet(14, 13);
    let mut system = Anubis::new(AnubisConfig::default());
    system
        .handle_event(&ValidationEvent::NodesAdded, &mut cohort, &members, None)
        .expect("bootstrap");

    // Within the masking budget: gray state, validation passes.
    let mut probe = vec![NodeSim::new(NodeId(500), NodeSpec::a100_8x(), 13)];
    probe[0].inject_fault(FaultKind::NvLinkLanesDown { lanes: 10 });
    assert!(probe[0].has_hidden_damage());
    let report = system
        .validator()
        .validate(&[BenchmarkId::NvlinkAllReduce], &mut probe, &[0], None)
        .expect("validation");
    assert!(
        report.flagged.is_empty(),
        "masked damage is invisible: {:?}",
        report.flagged
    );

    // Past the budget: the same benchmark now flags it.
    probe[0].inject_fault(FaultKind::NvLinkLanesDown { lanes: 40 });
    let report = system
        .validator()
        .validate(&[BenchmarkId::NvlinkAllReduce], &mut probe, &[0], None)
        .expect("validation");
    assert!(
        report.flagged.contains_key(&NodeId(500)),
        "visible damage must be flagged"
    );
}

#[test]
fn multi_node_phase_catches_network_faults() {
    let fabric = FatTree::build(FatTreeConfig::figure3_testbed()).expect("testbed");
    let (mut cohort, members) = fleet(12, 21);
    let mut system = Anubis::new(AnubisConfig::default());
    system
        .handle_event(
            &ValidationEvent::NodesAdded,
            &mut cohort,
            &members,
            Some(&fabric),
        )
        .expect("bootstrap with fabric");

    let mut nodes: Vec<NodeSim> = (0..4)
        .map(|i| NodeSim::new(NodeId(100 + i), NodeSpec::a100_8x(), 21))
        .collect();
    nodes[1].inject_fault(FaultKind::IbLinkBer { severity: 0.5 });
    let report = system
        .validator()
        .validate(
            &[BenchmarkId::MultiNodeAllReduce],
            &mut nodes,
            &[0, 1, 2, 3],
            Some(&fabric),
        )
        .expect("multi-node validation");
    assert!(
        report.flagged.contains_key(&NodeId(101)),
        "bad NIC caught in the multi-node phase: {:?}",
        report.flagged
    );
}

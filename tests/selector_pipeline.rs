//! Cross-crate integration: trace → survival model → Selector decisions.

use anubis::selector::{
    CoverageTable, CoxTimeConfig, CoxTimeModel, ExponentialModel, NodeStatus, Selector,
    SelectorConfig, SurvivalModel,
};
use anubis::traces::{generate_incident_trace, IncidentTraceConfig};
use anubis_benchsuite::BenchmarkId;
use anubis_hwsim::fault::IncidentCategory;

fn trace_samples() -> Vec<anubis::selector::SurvivalSample> {
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: 250,
        ..IncidentTraceConfig::default()
    });
    trace.survival_samples(96.0)
}

fn worn_status() -> NodeStatus {
    let mut s = NodeStatus::fresh();
    s.advance(500.0);
    for _ in 0..8 {
        s.record_incident(IncidentCategory::GpuCompute);
    }
    s
}

#[test]
fn coxtime_fitted_on_trace_ranks_worn_nodes_riskier() {
    let samples = trace_samples();
    let model = CoxTimeModel::fit(
        &samples,
        &CoxTimeConfig {
            epochs: 25,
            hidden: vec![24, 24],
            baseline_buckets: 48,
            ..Default::default()
        },
    )
    .expect("incident trace contains events");
    let mut fresh = NodeStatus::fresh();
    fresh.advance(500.0);
    let p_fresh = model.incident_probability(&fresh, 48.0);
    let p_worn = model.incident_probability(&worn_status(), 48.0);
    assert!(
        p_worn > p_fresh,
        "worn node must look riskier: {p_worn} vs {p_fresh}"
    );
}

#[test]
fn selector_trades_time_for_coverage() {
    let mut coverage = CoverageTable::new();
    for d in 0..50u64 {
        coverage.record(BenchmarkId::IbHcaLoopback, d);
    }
    for d in 40..70u64 {
        coverage.record(BenchmarkId::GpuH2dBandwidth, d);
    }
    for d in 70..100u64 {
        coverage.record(BenchmarkId::GpuStress, d);
    }
    let model = ExponentialModel { rate: 1.0 / 100.0 };
    let selector = Selector::new(
        Box::new(model),
        coverage,
        SelectorConfig {
            p0: 0.1,
            ..Default::default()
        },
    );

    let statuses = vec![NodeStatus::fresh(); 8];
    let subset = selector.select(&statuses, 36.0);
    assert!(!subset.is_empty(), "high-risk set must be validated");
    let subset_minutes = BenchmarkId::total_runtime_minutes(&subset);
    let full_minutes = BenchmarkId::total_runtime_minutes(&BenchmarkId::ALL);
    assert!(
        subset_minutes < full_minutes / 3.0,
        "selection saves most of the validation time: {subset_minutes} vs {full_minutes}"
    );
    // The greedy picks the best probability-drop-per-minute first: one of
    // the cheap micro-benchmarks, never the slow stress test.
    assert!(
        [BenchmarkId::IbHcaLoopback, BenchmarkId::GpuH2dBandwidth].contains(&subset[0]),
        "first pick {:?}",
        subset[0]
    );
}

#[test]
fn residual_probability_decreases_monotonically_during_selection() {
    let mut coverage = CoverageTable::new();
    for (i, bench) in BenchmarkId::ALL.iter().enumerate() {
        for d in 0..=(i as u64 % 7) {
            coverage.record(*bench, d + (i as u64) * 3);
        }
    }
    let model = ExponentialModel { rate: 1.0 / 50.0 };
    let statuses = vec![NodeStatus::fresh(); 4];
    let mut last =
        anubis::selector::select::residual_probability(&model, &statuses, 24.0, &coverage, &[]);
    let subset = anubis::selector::select_benchmarks(
        &model,
        &statuses,
        24.0,
        &coverage,
        &BenchmarkId::ALL,
        0.0,
    );
    let mut chosen = Vec::new();
    for bench in subset {
        chosen.push(bench);
        let p = anubis::selector::select::residual_probability(
            &model, &statuses, 24.0, &coverage, &chosen,
        );
        assert!(p <= last + 1e-12, "residual probability must not increase");
        last = p;
    }
}

#[test]
fn skip_threshold_scales_with_node_count() {
    let model = ExponentialModel { rate: 1.0 / 2000.0 };
    let selector = Selector::new(
        Box::new(model),
        CoverageTable::new(),
        SelectorConfig {
            p0: 0.05,
            ..Default::default()
        },
    );
    // One low-risk node: skip. Forty of them jointly exceed p0.
    assert!(!selector.should_validate(&[NodeStatus::fresh(); 1], 24.0));
    assert!(selector.should_validate(&vec![NodeStatus::fresh(); 40], 100.0));
}

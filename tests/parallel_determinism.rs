//! Sequential-vs-parallel determinism for the experiment harness: every
//! parallelized hot path must render byte-identical output at any worker
//! count. The whole check lives in a single `#[test]` (its own binary) so
//! the `ANUBIS_THREADS` mutations can never race another test.

use anubis_bench::experiments::{fig9, table3, table6};

#[test]
fn rendered_experiment_output_is_identical_across_thread_counts() {
    // table3 drives Cox-Time training + evaluation through an explicit
    // thread count, exercising the chunk-parallel gradient accumulation.
    let mut cfg = table3::Table3Config::quick();
    cfg.coxtime.threads = 1;
    let table3_seq = table3::run(&cfg).to_string();
    cfg.coxtime.threads = 8;
    let table3_par = table3::run(&cfg).to_string();
    assert_eq!(
        table3_seq, table3_par,
        "table3 must render identically at 1 and 8 training workers"
    );

    // table6 (benchmark fan-out) and fig9 (per-node training loops)
    // resolve their worker count from `ANUBIS_THREADS`.
    let run_env_resolved = || {
        let t6 = table6::run(&table6::Table6Config::quick()).to_string();
        let f9 = fig9::run(&fig9::Fig9Config::quick()).to_string();
        (t6, f9)
    };
    std::env::set_var("ANUBIS_THREADS", "1");
    let (table6_seq, fig9_seq) = run_env_resolved();
    std::env::set_var("ANUBIS_THREADS", "8");
    let (table6_par, fig9_par) = run_env_resolved();
    std::env::remove_var("ANUBIS_THREADS");
    assert_eq!(
        table6_seq, table6_par,
        "table6 must render identically at 1 and 8 workers"
    );
    assert_eq!(
        fig9_seq, fig9_par,
        "fig9 must render identically at 1 and 8 workers"
    );
}

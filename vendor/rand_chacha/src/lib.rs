//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: [`ChaCha8Rng`], a deterministic generator built on the ChaCha
//! stream cipher with 8 rounds (Bernstein, 2008).
//!
//! The workspace's determinism contract rests on this type: every simulator
//! RNG is an explicitly seeded `ChaCha8Rng`, so identical seeds yield
//! identical streams on every platform. The implementation is the textbook
//! one — a 16-word state of constants, 256-bit key, 64-bit block counter
//! and 64-bit stream id, with the quarter-round network applied for 8
//! rounds and the initial state added back in.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k", the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, stream.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Produces the next keystream block and advances the 64-bit counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and stream id start at zero.
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539-style test vector adapted to 8 rounds: fixed key/counter,
    /// spot-check the first keystream words are stable across runs.
    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let sa: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let sc: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn zero_seed_differs_from_one_seed_and_blocks_chain() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        // Pull more than one block to exercise the counter increment.
        let first: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        let second: Vec<u64> = (0..40).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        let mut ones = ChaCha8Rng::from_seed([1u8; 32]);
        assert_ne!(first[0], ones.next_u64());
        // Distinct blocks: the keystream must not repeat block-to-block.
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 12];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
        assert_eq!(&bytes[4..8], &w1);
        assert_eq!(&bytes[8..], &w2);
    }
}

//! `Serialize` implementations for the std types the workspace emits.

use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

serialize_primitive!(
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for element in iter {
        seq.serialize_element(&element)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self, self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self, N)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self, self.len())
    }
}

impl<T: Serialize, Hasher> Serialize for HashSet<T, Hasher> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self, self.len())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self, self.len())
    }
}

impl<K: Serialize, V: Serialize, Hasher> Serialize for HashMap<K, V, Hasher> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_entry(key, value)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $index:tt),+) : $len:expr),* $(,)?) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(tuple.serialize_element(&self.$index)?;)+
                tuple.end()
            }
        })*
    };
}

serialize_tuple!(
    (A.0): 1,
    (A.0, B.1): 2,
    (A.0, B.1, C.2): 3,
    (A.0, B.1, C.2, D.3): 4,
    (A.0, B.1, C.2, D.3, E.4): 5,
    (A.0, B.1, C.2, D.3, E.4, F.5): 6,
);

//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! serialization framework — the **serialization half only**, which is all
//! the workspace uses (results and traces are exported, never parsed back
//! through serde; the binary trace codec has its own reader).
//!
//! The `ser` module reproduces the real crate's data model: the
//! [`Serializer`] trait with its seven compound-serializer associated
//! types, [`ser::Impossible`], and `Serialize` impls for the std types the
//! workspace serializes. `#[derive(Serialize)]` is provided by the sibling
//! `serde_derive` stand-in, re-exported here exactly like the real crate
//! does under its `derive` feature.

pub mod ser;

mod impls;

pub use ser::{Serialize, Serializer};
pub use serde_derive::Serialize;

//! The serialization half of the serde data model.

use std::fmt::Display;
use std::marker::PhantomData;

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// Errors produced by serializers.
pub trait Error: Sized + std::error::Error {
    /// Builds a custom error from a message.
    fn custom<T>(message: T) -> Self
    where
        T: Display;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;

    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant like `E::A`.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Meters(f64);`.
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes a newtype enum variant like `E::N(u8)`.
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct like `struct Rgb(u8, u8, u8);`.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant like `E::T(u8, u8)`.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant like `E::S { a: u8 }`.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes one value.
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes one entry as key then value.
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type on failure.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Finishes the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// An uninhabited compound serializer for formats that reject compound
/// values in some positions (e.g. JSON map keys).
pub struct Impossible<Ok, E> {
    void: Void,
    marker: PhantomData<(Ok, E)>,
}

enum Void {}

macro_rules! impossible_compound {
    ($($trait_name:ident { $($method:ident($($arg:ty),*)),* }),* $(,)?) => {
        $(impl<Ok, E: Error> $trait_name for Impossible<Ok, E> {
            type Ok = Ok;
            type Error = E;
            $(fn $method<T>(&mut self, $(_: $arg,)* _value: &T) -> Result<(), E>
            where
                T: Serialize + ?Sized,
            {
                match self.void {}
            })*
            fn end(self) -> Result<Ok, E> {
                match self.void {}
            }
        })*
    };
}

impossible_compound!(
    SerializeSeq { serialize_element() },
    SerializeTuple { serialize_element() },
    SerializeTupleStruct { serialize_field() },
    SerializeTupleVariant { serialize_field() },
    SerializeStruct { serialize_field(&'static str) },
    SerializeStructVariant { serialize_field(&'static str) },
);

impl<Ok, E: Error> SerializeMap for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_key<T>(&mut self, _key: &T) -> Result<(), E>
    where
        T: Serialize + ?Sized,
    {
        match self.void {}
    }
    fn serialize_value<T>(&mut self, _value: &T) -> Result<(), E>
    where
        T: Serialize + ?Sized,
    {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

//! `#[derive(Serialize)]` without `syn`/`quote`.
//!
//! The offline build environment cannot fetch the real proc-macro stack,
//! so this derive parses the item declaration directly from
//! [`proc_macro::TokenStream`]. It supports exactly the shapes the
//! workspace uses (and the real derive's externally-tagged layout for
//! them):
//!
//! - structs with named fields, including lifetime generics (`Row<'a>`);
//! - unit and tuple structs;
//! - enums with unit, newtype, tuple and struct variants.
//!
//! Container/field attributes (`#[serde(...)]`) are intentionally not
//! supported; the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum declaration.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(generated) => generated
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive produced bad code: {e}"))),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("compile_error! invocation parses")
}

/// One parsed generic parameter, split into declaration and use forms.
struct Generics {
    /// `<'a, T: serde::Serialize>` — parameter list for the impl.
    params: String,
    /// `<'a, T>` — argument list for the self type.
    args: String,
}

struct Parser {
    tokens: Vec<TokenTree>,
    position: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            position: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.position).cloned();
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    /// Skips `#[...]` attributes (doc comments arrive in this form too).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.position += 1; // '#'
            if let Some(TokenTree::Group(_)) = self.peek() {
                self.position += 1; // [...]
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(word)) = self.peek() {
            if word.to_string() == "pub" {
                self.position += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.position += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(word)) => Ok(word.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Parses `<...>` if present, returning declaration and argument forms.
    fn parse_generics(&mut self) -> Result<Generics, String> {
        let is_open = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
        if !is_open {
            return Ok(Generics {
                params: String::new(),
                args: String::new(),
            });
        }
        self.position += 1; // '<'
        let mut depth = 1usize;
        let mut raw: Vec<TokenTree> = Vec::new();
        while depth > 0 {
            let token = self
                .next()
                .ok_or_else(|| "unclosed generic parameter list".to_string())?;
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            raw.push(token);
        }
        // Split parameters on top-level commas.
        let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
        let mut angle = 0usize;
        for token in raw {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => {
                        params.push(Vec::new());
                        continue;
                    }
                    _ => {}
                }
            }
            params
                .last_mut()
                .expect("params starts non-empty")
                .push(token);
        }
        let mut declaration = Vec::new();
        let mut arguments = Vec::new();
        for param in params.into_iter().filter(|p| !p.is_empty()) {
            if matches!(param.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'') {
                // Lifetime parameter: a `'` punct followed by its name.
                // Joining token strings naively would yield `' a`, which
                // does not re-parse, so rebuild the lifetime by hand.
                // Bounds like `'a: 'b` do not occur in this workspace.
                let label = match param.get(1) {
                    Some(TokenTree::Ident(word)) => format!("'{word}"),
                    other => return Err(format!("unsupported lifetime parameter: {other:?}")),
                };
                declaration.push(label.clone());
                arguments.push(label);
            } else {
                // Type parameter: bound it by Serialize, use its bare name.
                let name = match param.first() {
                    Some(TokenTree::Ident(word)) => word.to_string(),
                    other => return Err(format!("unsupported generic parameter: {other:?}")),
                };
                declaration.push(format!("{name}: ::serde::Serialize"));
                arguments.push(name);
            }
        }
        Ok(Generics {
            params: format!("<{}>", declaration.join(", ")),
            args: format!("<{}>", arguments.join(", ")),
        })
    }
}

/// Splits a field/variant body on top-level commas, tracking angle depth
/// so `HashMap<K, V>` stays intact.
fn split_top_level(group: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0usize;
    for token in group {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks
            .last_mut()
            .expect("chunks starts non-empty")
            .push(token);
    }
    chunks.retain(|chunk| !chunk.is_empty());
    chunks
}

/// Extracts the field name from one named-field chunk
/// (`[attrs] [pub] name : Type`).
fn named_field(chunk: &[TokenTree]) -> Result<String, String> {
    let mut index = 0;
    loop {
        match chunk.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                index += 1;
                if matches!(chunk.get(index), Some(TokenTree::Group(_))) {
                    index += 1;
                }
            }
            Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                index += 1;
                if matches!(
                    chunk.get(index),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    index += 1;
                }
            }
            Some(TokenTree::Ident(word)) => return Ok(word.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let mut parser = Parser::new(input);
    parser.skip_attributes();
    parser.skip_visibility();
    let kind = parser.expect_ident()?;
    let name = parser.expect_ident()?;
    let generics = parser.parse_generics()?;
    let header = format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {name}{args} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n",
        params = generics.params,
        args = generics.args,
    );
    let body = match kind.as_str() {
        "struct" => expand_struct(&mut parser, &name)?,
        "enum" => expand_enum(&mut parser, &name)?,
        other => return Err(format!("cannot derive Serialize for `{other}` items")),
    };
    Ok(format!("{header}{body}\n}}\n}}"))
}

fn expand_struct(parser: &mut Parser, name: &str) -> Result<String, String> {
    // Skip a where clause if one ever appears.
    while let Some(token) = parser.peek() {
        match token {
            TokenTree::Group(_) | TokenTree::Punct(_) => break,
            _ => parser.position += 1,
        }
    }
    match parser.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            let fields: Vec<String> = split_top_level(group.stream())
                .iter()
                .map(|chunk| named_field(chunk))
                .collect::<Result<_, _>>()?;
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for field in &fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut __state, \"{field}\", &self.{field})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)");
            Ok(out)
        }
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
            let arity = split_top_level(group.stream()).len();
            if arity == 1 {
                Ok(format!(
                    "::serde::Serializer::serialize_newtype_struct(\
                     __serializer, \"{name}\", &self.0)"
                ))
            } else {
                let mut out = format!(
                    "let mut __state = ::serde::Serializer::serialize_tuple_struct(\
                     __serializer, \"{name}\", {arity})?;\n"
                );
                for index in 0..arity {
                    out.push_str(&format!(
                        "::serde::ser::SerializeTupleStruct::serialize_field(\
                         &mut __state, &self.{index})?;\n"
                    ));
                }
                out.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
                Ok(out)
            }
        }
        // `struct Unit;` — the trailing semicolon may or may not be in
        // the derive input depending on shape.
        _ => Ok(format!(
            "::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")"
        )),
    }
}

fn expand_enum(parser: &mut Parser, name: &str) -> Result<String, String> {
    let body = match parser.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let mut arms = String::new();
    for (index, chunk) in split_top_level(body).into_iter().enumerate() {
        let mut cursor = 0usize;
        // Skip attributes ahead of the variant name.
        while matches!(chunk.get(cursor), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            cursor += 1;
            if matches!(chunk.get(cursor), Some(TokenTree::Group(_))) {
                cursor += 1;
            }
        }
        let variant = match chunk.get(cursor) {
            Some(TokenTree::Ident(word)) => word.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        cursor += 1;
        match chunk.get(cursor) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields: Vec<String> = split_top_level(group.stream())
                    .iter()
                    .map(|c| named_field(c))
                    .collect::<Result<_, _>>()?;
                let bindings = fields.join(", ");
                arms.push_str(&format!(
                    "{name}::{variant} {{ {bindings} }} => {{\n\
                     let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\", {len})?;\n",
                    len = fields.len()
                ));
                for field in &fields {
                    arms.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(\
                         &mut __sv, \"{field}\", {field})?;\n"
                    ));
                }
                arms.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(group.stream()).len();
                let bindings: Vec<String> = (0..arity).map(|i| format!("__f{i}")).collect();
                let pattern = bindings.join(", ");
                if arity == 1 {
                    arms.push_str(&format!(
                        "{name}::{variant}(__f0) => \
                         ::serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {index}u32, \"{variant}\", __f0),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{variant}({pattern}) => {{\n\
                         let mut __sv = ::serde::Serializer::serialize_tuple_variant(\
                         __serializer, \"{name}\", {index}u32, \"{variant}\", {arity})?;\n"
                    ));
                    for binding in &bindings {
                        arms.push_str(&format!(
                            "::serde::ser::SerializeTupleVariant::serialize_field(\
                             &mut __sv, {binding})?;\n"
                        ));
                    }
                    arms.push_str("::serde::ser::SerializeTupleVariant::end(__sv)\n},\n");
                }
            }
            _ => {
                // Unit variant (any `= discriminant` tail is irrelevant to
                // serialization and ignored).
                arms.push_str(&format!(
                    "{name}::{variant} => ::serde::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\"),\n"
                ));
            }
        }
    }
    Ok(format!("match self {{\n{arms}}}"))
}

//! The [`Strategy`] trait and core combinators.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking machinery: a
/// strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<Output, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Output,
    {
        Map { inner: self, map }
    }

    /// Filters generated values, retrying until `keep` accepts one.
    fn prop_filter<F>(self, reason: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            keep,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut ChaCha8Rng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice between several strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        let pick = rng.random_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, Output> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Output,
{
    type Value = Output;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Output {
        (self.map)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    keep: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut ChaCha8Rng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.keep)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter: gave up finding a value ({})", self.reason);
    }
}

macro_rules! range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $index:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    ($(self.$index.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

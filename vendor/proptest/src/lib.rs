//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the subset the workspace's test suites use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` and `boxed`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<bool>()`, the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` and `prop_oneof!`
//! macros, and [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from the real crate, chosen deliberately for this
//! repository:
//!
//! - **Deterministic by construction.** Case generation is seeded from a
//!   stable hash of the test function's name, so a failure reproduces on
//!   every run and every machine — there is no entropy source anywhere in
//!   the workspace's dependency tree.
//! - **No shrinking.** On failure the original generated inputs are
//!   printed in full instead of a minimized counterexample.
//! - `.proptest-regressions` files are not read; every run covers the
//!   configured number of fresh cases.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            __left
        );
    }};
}

/// Discards the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
         $(#[$meta:meta])*
         fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                let mut completed: u32 = 0;
                let mut rejected: u32 = 0;
                while completed < config.cases {
                    // Render inputs while generating: the binding may be a
                    // destructuring pattern and the body may consume it.
                    let mut __rendered_parts: Vec<String> = Vec::new();
                    $(
                        let $arg = {
                            let __value =
                                $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                            __rendered_parts.push(format!(
                                "    {} = {:?}",
                                stringify!($arg),
                                &__value
                            ));
                            __value
                        };
                    )+
                    let rendered = __rendered_parts.join("\n");
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => completed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < 4096,
                                "proptest: too many rejected cases in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs:\n{}",
                                completed + 1,
                                stringify!($name),
                                message,
                                rendered
                            );
                        }
                    }
                }
            }
        )*
    };
}

//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Uniformly selects one of the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select: no options");
    Select(options)
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        self.0[rng.random_range(0..self.0.len())].clone()
    }
}

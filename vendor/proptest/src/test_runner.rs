//! Test-runner configuration and failure signalling.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hash::{Hash, Hasher};

/// Per-test configuration, mirroring the real crate's field of the same
/// name.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; retried without counting.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Builds the deterministic RNG for one property test.
///
/// The seed is a stable (fixed-key SipHash) hash of the test name, so
/// every run of every build generates the same case sequence — failures
/// are reproducible by re-running the named test, no seed file needed.
pub fn rng_for_test(name: &str) -> ChaCha8Rng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    ChaCha8Rng::seed_from_u64(hasher.finish())
}

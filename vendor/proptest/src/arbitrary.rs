//! `any::<T>()`: canonical strategies for simple types.

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> bool {
        rng.random()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut ChaCha8Rng) -> $ty {
                rng.random()
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Acceptable length specifications for [`vec`]: an exact length or a
/// half-open range.
pub trait IntoSizeRange {
    /// Converts into `(min, max_exclusive)`.
    fn into_size_range(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> (usize, usize) {
        assert!(self.start < self.end, "collection::vec: empty size range");
        (self.start, self.end)
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.into_size_range();
    VecStrategy { element, min, max }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Distributions: the standard uniform and uniform ranges.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types which can produce values of type `T` from a bit source.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard uniform distribution: floats in `[0, 1)`, the full value
/// range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, matching the real crate's conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit: every ChaCha output bit is uniform, but the
        // high bit matches how the real crate derives booleans.
        (rng.next_u32() >> 31) == 1
    }
}

macro_rules! standard_uniform_int {
    ($($ty:ty => $via:ident),* $(,)?) => {
        $(impl Distribution<$ty> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$via() as $ty
            }
        })*
    };
}

standard_uniform_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges that can be sampled uniformly, the bound used by
/// [`Rng::random_range`](crate::Rng::random_range).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value from `[0, span)` by rejection, avoiding modulo
/// bias. `span` must be nonzero.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64, minus one: accept values
    // below it and reduce. The expected iteration count is < 2.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! sample_range_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(
                        self.start < self.end,
                        "random_range: empty integer range"
                    );
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(uniform_u64_below(rng, span) as $ty)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "random_range: empty inclusive range");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(uniform_u64_below(rng, span + 1) as $ty)
                }
            }
        )*
    };
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(
                        self.start < self.end,
                        "random_range: empty float range"
                    );
                    let unit: $ty = StandardUniform.sample(rng);
                    let value = self.start + (self.end - self.start) * unit;
                    // Floating-point rounding can land exactly on `end`;
                    // fold that boundary case back into the range.
                    if value < self.end { value } else { self.start }
                }
            }
        )*
    };
}

sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = StandardUniform.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = (0usize..10).sample_single(&mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = (1i32..=10).sample_single(&mut rng);
            assert!((1..=10).contains(&v));
        }
        for _ in 0..1000 {
            let v = (-5i64..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let v = (0.25f64..0.5).sample_single(&mut rng);
            assert!((0.25..0.5).contains(&v));
        }
    }
}

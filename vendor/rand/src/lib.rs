//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate implements the exact API subset the workspace uses — `RngCore`,
//! `SeedableRng` (with the SplitMix64-based `seed_from_u64` convention of
//! `rand_core`), the `Rng` extension trait (`random`, `random_range`,
//! `random_bool`), `seq::SliceRandom::shuffle` and `seq::index::sample` —
//! with no external dependencies.
//!
//! Determinism contract: every generator in the workspace is an explicitly
//! seeded `ChaCha8Rng` (see the `rand_chacha` stand-in). This crate contains
//! **no** entropy source at all: there is no `thread_rng`, no `from_entropy`,
//! and no `OsRng`, which makes the project-wide "all randomness is seeded"
//! invariant checkable by construction.

pub mod distr;
pub mod seq;

pub use distr::{Distribution, StandardUniform};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly like `rand_core` does, so seeds written against the real
    /// crate keep their meaning.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods for generating values from a bit source.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard uniform distribution.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distr::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

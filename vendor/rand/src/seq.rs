//! Sequence utilities: in-place shuffling and distinct index sampling.

use crate::{Rng, RngCore};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Distinct index sampling, mirroring `rand::seq::index`.
pub mod index {
    use crate::{Rng, RngCore};

    /// A set of distinct indices in `[0, length)`.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes the set into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> std::slice::Iter<'_, usize> {
            self.0.iter()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `[0, length)`, in the random
    /// order the partial Fisher–Yates walk produces.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`, matching the real crate.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "sample: amount {amount} exceeds length {length}"
        );
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.random_range(i..length);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        IndexVec(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(5);
        let mut data: Vec<u32> = (0..50).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sampled_indices_are_distinct_and_in_range() {
        let mut rng = Counter(9);
        let picks = sample(&mut rng, 31, 7);
        assert_eq!(picks.len(), 7);
        let mut seen: Vec<usize> = picks.into_iter().collect();
        assert!(seen.iter().all(|&i| i < 31));
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(1);
        let data = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &v = data.choose(&mut rng).expect("non-empty");
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Implements the subset the trace codec uses: big-endian `get_*`/`put_*`
//! accessors via the [`Buf`]/[`BufMut`] traits, a `Vec`-backed [`BytesMut`]
//! builder, and an immutable [`Bytes`] view created by
//! [`BytesMut::freeze`]. No reference counting or zero-copy splitting —
//! the codec only builds and reads contiguous buffers.

use std::ops::Deref;

/// Read access to a cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor past `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `count > self.remaining()`.
    fn advance(&mut self, count: usize);

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copies exactly `dest.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "buffer underflow");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "buffer underflow");
        *self = &self[count..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write access to a growable byte buffer (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

/// A growable byte buffer under construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

/// An immutable byte buffer; dereferences to `&[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(raw: Vec<u8>) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR!");
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-2.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_f64(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32();
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the surface the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — and reports a simple
//! per-iteration median instead of criterion's full statistical analysis.
//! Wall-clock use here is fine: benches are reporting tools, not
//! simulation logic, and this crate sits outside the workspace lint walk.

use std::time::{Duration, Instant};

/// Number of timed samples collected per benchmark.
const SAMPLES: usize = 11;

/// Target wall-clock budget for one sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// How a batched benchmark's setup output is grouped. Only the variants
/// the workspace uses are provided; the distinction does not change
/// behaviour in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; criterion would batch many per allocation.
    SmallInput,
    /// Routine input is large; criterion would batch few per allocation.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `routine` against a fresh [`Bencher`] and prints a one-line
    /// median per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(SAMPLES),
        };
        routine(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let per_sample = calibrate(|| {
            std::hint::black_box(routine());
        });
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        println!("bench {name}: median {median:?} per iteration");
    }
}

/// Picks an iteration count that makes one sample take roughly
/// [`SAMPLE_BUDGET`], so very fast routines still get measurable samples.
fn calibrate<F: FnMut()>(mut routine: F) -> u32 {
    let mut iterations: u32 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_BUDGET || iterations >= 1 << 20 {
            return iterations.max(1);
        }
        iterations = iterations.saturating_mul(2);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

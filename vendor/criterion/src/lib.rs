//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the surface the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — and reports a simple
//! per-iteration median instead of criterion's full statistical analysis.
//! Wall-clock use here is fine: benches are reporting tools, not
//! simulation logic, and this crate sits outside the workspace lint walk.
//!
//! CI hooks (all opt-in, default behaviour unchanged):
//!
//! - non-flag command-line arguments are substring filters, like real
//!   criterion: `cargo bench -p anubis-bench -- cdf scan` runs only
//!   benchmarks whose name contains `cdf` or `scan`;
//! - `ANUBIS_BENCH_QUICK=1` collects fewer, shorter samples — smoke-test
//!   resolution for the perf-regression gate, not publication numbers;
//! - `ANUBIS_BENCH_JSON=<path>` appends one
//!   `{"name":"...","median_ns":N}` line per benchmark, consumed by
//!   `cargo xtask perfgate`.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Number of timed samples collected per benchmark.
const SAMPLES: usize = 11;

/// Number of timed samples in `ANUBIS_BENCH_QUICK` mode.
const QUICK_SAMPLES: usize = 5;

/// Target wall-clock budget for one sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Sample batch budget in `ANUBIS_BENCH_QUICK` mode.
const QUICK_SAMPLE_BUDGET: Duration = Duration::from_millis(5);

/// How a batched benchmark's setup output is grouped. Only the variants
/// the workspace uses are provided; the distinction does not change
/// behaviour in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; criterion would batch many per allocation.
    SmallInput,
    /// Routine input is large; criterion would batch few per allocation.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filters from the command line; empty = run everything.
    filters: Vec<String>,
    /// Where to append JSONL medians (`ANUBIS_BENCH_JSON`), if anywhere.
    json_path: Option<PathBuf>,
    /// Smoke-test resolution (`ANUBIS_BENCH_QUICK`).
    quick: bool,
}

impl Default for Criterion {
    /// Reads the CI hooks: name filters from `std::env::args` (flags like
    /// the `--bench` cargo passes to `harness = false` binaries are
    /// ignored) and the `ANUBIS_BENCH_JSON`/`ANUBIS_BENCH_QUICK`
    /// environment variables.
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|arg| !arg.starts_with('-'))
            .collect();
        let json_path = std::env::var_os("ANUBIS_BENCH_JSON")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let quick =
            std::env::var_os("ANUBIS_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
        Self {
            filters,
            json_path,
            quick,
        }
    }
}

impl Criterion {
    /// Runs `routine` against a fresh [`Bencher`] (unless filtered out)
    /// and prints a one-line median per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|f| name.contains(f.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(SAMPLES),
            quick: self.quick,
        };
        routine(&mut bencher);
        let median = bencher.report(name);
        if let (Some(path), Some(median)) = (&self.json_path, median) {
            append_json_line(path, name, median);
        }
        self
    }
}

/// Appends one `{"name":...,"median_ns":N}` line to `path`; I/O errors
/// are reported on stderr but never fail the bench run itself.
fn append_json_line(path: &PathBuf, name: &str, median: Duration) {
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{}}}\n",
        median.as_nanos()
    );
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(parent);
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("bench {name}: cannot append to {}: {error}", path.display());
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    quick: bool,
}

impl Bencher {
    /// Sample count for this run's resolution.
    fn sample_count(&self) -> usize {
        if self.quick {
            QUICK_SAMPLES
        } else {
            SAMPLES
        }
    }

    /// Per-sample wall-clock budget for this run's resolution.
    fn sample_budget(&self) -> Duration {
        if self.quick {
            QUICK_SAMPLE_BUDGET
        } else {
            SAMPLE_BUDGET
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let per_sample = calibrate(self.sample_budget(), || {
            std::hint::black_box(routine());
        });
        for _ in 0..self.sample_count() {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count() {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Prints the one-line summary; returns the median for JSON output.
    fn report(&mut self, name: &str) -> Option<Duration> {
        if self.samples.is_empty() {
            println!("bench {name}: no samples");
            return None;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        println!("bench {name}: median {median:?} per iteration");
        Some(median)
    }
}

/// Picks an iteration count that makes one sample take roughly `budget`,
/// so very fast routines still get measurable samples.
fn calibrate<F: FnMut()>(budget: Duration, mut routine: F) -> u32 {
    let mut iterations: u32 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iterations {
            routine();
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iterations >= 1 << 20 {
            return iterations.max(1);
        }
        iterations = iterations.saturating_mul(2);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Workspace facade: re-exports the ANUBIS system crate and the experiment
//! harness so the `examples/` and `tests/` at the workspace root have a
//! single dependency surface.

pub use anubis;
pub use anubis_bench;

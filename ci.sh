#!/usr/bin/env sh
# Full CI gate for the workspace. Every step must pass; the same sequence
# runs in .github/workflows/ci.yml (split across jobs there).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (denied warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> invariant lint (anubis-xtask)"
# Stale allowlist entries fail by default now.
cargo run -p anubis-xtask --offline -- lint

echo "==> call-graph analysis (anubis-xtask)"
cargo run -p anubis-xtask --offline -- analyze --json target/analysis.sarif.json

echo "==> lifecycle model checker (anubis-xtask)"
cargo run -p anubis-xtask --offline -- modelcheck --out target/modelcheck-trace.txt

echo "==> perf-regression gate (quick smoke benches vs BENCH_2.json)"
# No `rm` of the results file here: `perfgate` rotates the consumed JSONL
# aside itself after every gate run, so stale measurements cannot leak
# into the next comparison.
ANUBIS_BENCH_QUICK=1 ANUBIS_BENCH_JSON="$(pwd)/target/bench-current.jsonl" \
    cargo bench -p anubis-bench --offline -- \
    cdf_distance one_sided_distance criteria/algorithm2 criteria/incremental \
    selection/algorithm1 selection/celf coxtime/expected_tbni \
    coxtime/incident_probability coxtime/warmstart scan/full json/serialize \
    fleetd/tick fleetd/merge
# The analyzer's own fixpoint engine is a tracked kernel too.
ANUBIS_BENCH_QUICK=1 ANUBIS_BENCH_JSON="$(pwd)/target/bench-current.jsonl" \
    cargo bench -p anubis-xtask --offline
cargo run -p anubis-xtask --offline -- perfgate

echo "==> release build"
cargo build --release --offline

echo "==> fleetd service smoke (byte-determinism across threads and shards)"
ANUBIS_THREADS=1 ./target/release/repro fleetd --nodes 2000 --shards 8 --ticks 50 \
    --jsonl=target/fleetd-smoke-t1.jsonl > target/fleetd-smoke-t1.txt
ANUBIS_THREADS=4 ./target/release/repro fleetd --nodes 2000 --shards 8 --ticks 50 \
    --jsonl=target/fleetd-smoke-t4.jsonl > target/fleetd-smoke-t4.txt
ANUBIS_THREADS=4 ./target/release/repro fleetd --nodes 2000 --shards 1 --ticks 50 \
    --jsonl=target/fleetd-smoke-s1.jsonl > target/fleetd-smoke-s1.txt
cmp target/fleetd-smoke-t1.txt target/fleetd-smoke-t4.txt
cmp target/fleetd-smoke-t1.jsonl target/fleetd-smoke-t4.jsonl
cmp target/fleetd-smoke-t1.txt target/fleetd-smoke-s1.txt
cmp target/fleetd-smoke-t1.jsonl target/fleetd-smoke-s1.jsonl

echo "==> tests"
cargo test -q --workspace --release --offline

echo "==> CI gate passed"

#!/usr/bin/env sh
# Full CI gate for the workspace. Every step must pass; the same sequence
# runs in .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (denied warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> invariant lint (anubis-xtask)"
cargo run -p anubis-xtask --offline -- lint --error-on-unused-allowlist

echo "==> call-graph analysis (anubis-xtask)"
cargo run -p anubis-xtask --offline -- analyze --json target/analysis.sarif.json

echo "==> release build"
cargo build --release --offline

echo "==> tests"
cargo test -q --workspace --release --offline

echo "==> CI gate passed"

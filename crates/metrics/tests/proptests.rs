//! Property-based tests for the statistics substrate invariants.

use anubis_metrics::outlier::{KMeans, KMeansConfig};
use anubis_metrics::{
    cdf_distance, cdf_distance_ecdf, one_sided_distance, pairwise_similarity_matrix,
    pairwise_similarity_matrix_threads, similarity, Direction, Ecdf, EcdfSketch, Sample,
};
use proptest::prelude::*;

/// Strategy: non-empty vectors of plausible benchmark measurements.
fn measurements() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0e6, 1..64)
}

proptest! {
    #[test]
    fn sample_orders_invariants(values in measurements()) {
        let s = Sample::new(values.clone()).unwrap();
        prop_assert_eq!(s.len(), values.len());
        prop_assert!(s.sorted().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.min() <= s.median() && s.median() <= s.max());
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(values in measurements(), probe in 0.0f64..1.0e6) {
        let s = Sample::new(values).unwrap();
        let cdf = Ecdf::new(&s);
        let f = cdf.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(cdf.eval(probe + 1.0) >= f);
        prop_assert_eq!(cdf.eval(s.max()), 1.0);
        prop_assert_eq!(cdf.eval(s.min() - 1.0), 0.0);
    }

    #[test]
    fn distance_is_a_bounded_symmetric_semimetric(a in measurements(), b in measurements()) {
        let sa = Sample::new(a).unwrap();
        let sb = Sample::new(b).unwrap();
        let d_ab = cdf_distance(&sa, &sb);
        let d_ba = cdf_distance(&sb, &sa);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(cdf_distance(&sa, &sa) < 1e-12);
        prop_assert!((similarity(&sa, &sb) - (1.0 - d_ab)).abs() < 1e-12);
    }

    #[test]
    fn one_sided_sides_partition_total(a in measurements(), b in measurements()) {
        let sa = Sample::new(a).unwrap();
        let sb = Sample::new(b).unwrap();
        let total = cdf_distance(&sa, &sb);
        let worse = one_sided_distance(&sa, &sb, Direction::HigherIsBetter);
        let better = one_sided_distance(&sa, &sb, Direction::LowerIsBetter);
        prop_assert!(worse >= 0.0 && better >= 0.0);
        prop_assert!(worse <= total + 1e-9);
        prop_assert!(better <= total + 1e-9);
        prop_assert!((worse + better - total).abs() < 1e-9);
    }

    #[test]
    fn uniform_scaling_preserves_distance(values in measurements(), scale in 0.1f64..100.0) {
        // Scale-invariance: the normalized distance depends only on relative
        // shape, so scaling both samples by the same factor is a no-op.
        let a = Sample::new(values.clone()).unwrap();
        let b = Sample::new(values.iter().rev().copied().collect()).unwrap();
        let scaled_a = Sample::new(values.iter().map(|v| v * scale).collect()).unwrap();
        let scaled_b =
            Sample::new(values.iter().rev().map(|v| v * scale).collect()).unwrap();
        let d = cdf_distance(&a, &b);
        let d_scaled = cdf_distance(&scaled_a, &scaled_b);
        prop_assert!((d - d_scaled).abs() < 1e-9);
    }

    #[test]
    fn prebuilt_ecdf_distance_matches_sample_path(a in measurements(), b in measurements()) {
        // The Ecdf-accepting fast path must be bit-identical to the
        // Sample-accepting entry point, which constructs the same ECDFs.
        let sa = Sample::new(a).unwrap();
        let sb = Sample::new(b).unwrap();
        let via_samples = cdf_distance(&sa, &sb);
        let via_ecdfs = cdf_distance_ecdf(&Ecdf::new(&sa), &Ecdf::new(&sb));
        prop_assert_eq!(via_samples.to_bits(), via_ecdfs.to_bits());
    }

    #[test]
    fn similarity_matrix_is_thread_count_invariant(raw in prop::collection::vec(
        prop::collection::vec(1.0f64..1.0e6, 1..24), 2..10))
    {
        let samples: Vec<Sample> = raw.into_iter()
            .map(|v| Sample::new(v).unwrap())
            .collect();
        let reference = pairwise_similarity_matrix(&samples);
        for threads in [1usize, 2, 8] {
            let matrix = pairwise_similarity_matrix_threads(&samples, threads);
            prop_assert_eq!(&reference, &matrix);
        }
        // Symmetry and unit diagonal hold regardless of scheduling.
        for (i, row) in reference.iter().enumerate() {
            prop_assert_eq!(row[i].to_bits(), 1.0f64.to_bits());
            for (j, &v) in row.iter().enumerate() {
                prop_assert_eq!(v.to_bits(), reference[j][i].to_bits());
            }
        }
    }

    #[test]
    fn kmeans_assigns_every_point(points in prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, 2), 4..32))
    {
        let model = KMeans::fit(&points, KMeansConfig { k: 2, ..Default::default() }).unwrap();
        prop_assert_eq!(model.assignments().len(), points.len());
        prop_assert!(model.assignments().iter().all(|&a| a < 2));
        prop_assert!(model.inertia() >= 0.0);
        let majority = model.majority_cluster();
        prop_assert!(model.members_of(majority).len() * 2 >= points.len());
    }

    // EcdfSketch is observationally equivalent to the batch Ecdf: any
    // interleaving of appends and sub-sketch merges over the same multiset
    // of values answers eval/quantile/breakpoints bit-identically.
    #[test]
    fn sketch_append_is_observationally_equivalent_to_batch(
        values in measurements(),
        probes in prop::collection::vec(0.0f64..1.0e6, 4),
        ps in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let batch = Ecdf::new(&Sample::new(values.clone()).unwrap());
        let mut sketch = EcdfSketch::new();
        sketch.extend(values.iter().copied());
        prop_assert_eq!(sketch.len(), batch.len());
        for &x in probes.iter().chain(values.iter()) {
            prop_assert_eq!(sketch.eval(x).to_bits(), batch.eval(x).to_bits());
        }
        for &p in &ps {
            prop_assert_eq!(sketch.quantile(p).to_bits(), batch.quantile(p).to_bits());
        }
        prop_assert_eq!(sketch.min().to_bits(), batch.min().to_bits());
        prop_assert_eq!(sketch.max().to_bits(), batch.max().to_bits());
        prop_assert_eq!(sketch.breakpoints(), batch.breakpoints());
        prop_assert_eq!(sketch.to_ecdf(), batch);
    }

    #[test]
    fn sketch_merge_is_observationally_equivalent_to_batch(
        shards in prop::collection::vec(measurements(), 1..5),
        probes in prop::collection::vec(0.0f64..1.0e6, 4),
    ) {
        let mut merged = EcdfSketch::new();
        let mut all = Vec::new();
        for shard in &shards {
            let mut s = EcdfSketch::new();
            s.extend(shard.iter().copied());
            merged.merge(&s);
            all.extend_from_slice(shard);
        }
        let batch = Ecdf::new(&Sample::new(all).unwrap());
        prop_assert_eq!(merged.len(), batch.len());
        for &x in &probes {
            prop_assert_eq!(merged.eval(x).to_bits(), batch.eval(x).to_bits());
        }
        for p in [0.0, 0.25, 0.5, 0.95, 1.0] {
            prop_assert_eq!(merged.quantile(p).to_bits(), batch.quantile(p).to_bits());
        }
        prop_assert_eq!(merged.to_ecdf(), batch);
    }

    // The incremental matrix extension reproduces the batch pairwise
    // matrix bit-for-bit at any split point and thread count.
    #[test]
    fn extend_similarity_matrix_matches_batch(
        raw in prop::collection::vec(prop::collection::vec(1.0f64..1.0e3, 1..8), 2..10),
        split_seed in 0usize..100,
        threads in 0usize..4,
    ) {
        let samples: Vec<Sample> = raw.into_iter().map(|v| Sample::new(v).unwrap()).collect();
        let split = split_seed % (samples.len() + 1);
        let mut matrix = pairwise_similarity_matrix(&samples[..split]);
        let mut ecdfs: Vec<Ecdf> = samples[..split].iter().map(Ecdf::new).collect();
        anubis_metrics::extend_similarity_matrix(&mut matrix, &mut ecdfs, &samples, threads);
        prop_assert_eq!(matrix, pairwise_similarity_matrix(&samples));
    }
}

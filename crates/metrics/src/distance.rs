//! CDF-space distances and similarities (paper Eq. 2, 3 and 4).
//!
//! The Validator compares benchmark samples in the space of their empirical
//! CDFs rather than by average metrics. Eq. (2) defines the distance as the
//! relative area between two CDF curves:
//!
//! ```text
//! d(S1, S2) = ∫₀^∞ |F₁(x) − F₂(x)| / max(F₁(x), F₂(x)) dx
//! ```
//!
//! and Eq. (3) the similarity as `1 − d`. The paper notes the distance is
//! "normalized to the [0, 1] range"; since the raw integral carries the units
//! of the metric axis, this implementation normalizes by the largest support
//! point of the merged samples (the upper integration bound with non-zero
//! integrand). This keeps three properties the paper relies on:
//!
//! - `d ∈ [0, 1]`, so similarities from different benchmarks are comparable
//!   against one global threshold α;
//! - for two single-value samples `{a}`, `{b}` with `a < b` the distance is
//!   exactly the relative difference `(b − a)/b`, which is the natural
//!   defect margin for micro-benchmarks that report one number;
//! - for tight time-series distributions the distance scales with the
//!   relative spread, so healthy repetitions land near similarity 1.
//!
//! Eq. (4) is the one-direction variant used for online defect filtering:
//! only performance *worse* than the criteria counts.

use crate::ecdf::Ecdf;
use crate::sample::Sample;

/// Whether larger or smaller metric values indicate better performance.
///
/// Throughput-like metrics (bandwidth, steps/s, GFLOPS) are
/// [`Direction::HigherIsBetter`]; latency-like metrics are
/// [`Direction::LowerIsBetter`]. The paper's Eq. (4) is written for
/// throughput and says to flip the comparison "elsewise".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Direction {
    /// Larger measurements are better (throughput, bandwidth).
    HigherIsBetter,
    /// Smaller measurements are better (latency).
    LowerIsBetter,
}

/// Computes the normalized Eq. (2) distance between two samples.
///
/// Returns a value in `[0, 1]`; 0 means the empirical distributions are
/// identical.
///
/// # Examples
///
/// ```
/// use anubis_metrics::{cdf_distance, Sample};
///
/// let a = Sample::scalar(80.0).unwrap();
/// let b = Sample::scalar(100.0).unwrap();
/// // Two scalars: distance is the relative difference.
/// assert!((cdf_distance(&a, &b) - 0.2).abs() < 1e-12);
/// ```
pub fn cdf_distance(s1: &Sample, s2: &Sample) -> f64 {
    cdf_distance_ecdf(&Ecdf::new(s1), &Ecdf::new(s2))
}

/// [`cdf_distance`] over prebuilt ECDFs — the fast path when the same
/// sample enters many comparisons (pairwise matrices, criteria loops).
pub fn cdf_distance_ecdf(e1: &Ecdf, e2: &Ecdf) -> f64 {
    integrate_ecdf(e1, e2, &mut Vec::new(), |f1, f2| (f1 - f2).abs())
}

/// Computes the Eq. (3) similarity `1 − d(S1, S2)`.
pub fn similarity(s1: &Sample, s2: &Sample) -> f64 {
    1.0 - cdf_distance(s1, s2)
}

/// [`similarity`] over prebuilt ECDFs.
pub fn similarity_ecdf(e1: &Ecdf, e2: &Ecdf) -> f64 {
    1.0 - cdf_distance_ecdf(e1, e2)
}

/// Computes the one-direction Eq. (4) distance of an observation against a
/// criteria sample.
///
/// Only regressions count: for throughput-like metrics, mass where the
/// observed CDF sits *above* the criteria CDF (the observation is shifted
/// toward smaller values); for latency-like metrics the opposite side.
/// `1 − one_sided_distance(..)` is the similarity the Validator compares
/// against the threshold α.
pub fn one_sided_distance(observed: &Sample, criteria: &Sample, direction: Direction) -> f64 {
    one_sided_distance_ecdf(&Ecdf::new(observed), &Ecdf::new(criteria), direction)
}

/// [`one_sided_distance`] over prebuilt ECDFs — the fast path when one
/// criteria distribution screens many observations.
pub fn one_sided_distance_ecdf(observed: &Ecdf, criteria: &Ecdf, direction: Direction) -> f64 {
    let mut grid = Vec::new();
    match direction {
        Direction::HigherIsBetter => {
            integrate_ecdf(observed, criteria, &mut grid, |fo, fc| (fo - fc).max(0.0))
        }
        Direction::LowerIsBetter => {
            integrate_ecdf(observed, criteria, &mut grid, |fo, fc| (fc - fo).max(0.0))
        }
    }
}

/// One-direction similarity, `1 − d₁ₛᵢ𝒹ₑ`.
pub fn one_sided_similarity(observed: &Sample, criteria: &Sample, direction: Direction) -> f64 {
    1.0 - one_sided_distance(observed, criteria, direction)
}

/// Shared integration kernel over the merged step grid of both ECDFs.
///
/// `numerator(f1, f2)` receives the two CDF values on each constant segment;
/// it must be bounded by `max(f1, f2)` so the normalized result stays in
/// `[0, 1]`. The CDF values come from a linear merge walk over the two
/// supports — the running count of values `<= x0` equals what
/// [`Ecdf::eval`]'s binary search returns, so results are bit-identical to
/// evaluating per window, without the `O(log n)` lookup. `grid` is a
/// caller-reusable buffer for the merged breakpoints.
fn integrate_ecdf(
    e1: &Ecdf,
    e2: &Ecdf,
    grid: &mut Vec<f64>,
    numerator: impl Fn(f64, f64) -> f64,
) -> f64 {
    e1.merged_breakpoints_into(e2, grid);
    let upper = *grid.last().expect("samples are non-empty");
    if upper <= 0.0 {
        // All measurements are zero in both samples: identical distributions.
        return 0.0;
    }
    let (s1, s2) = (e1.support(), e2.support());
    let (n1, n2) = (s1.len() as f64, s2.len() as f64);
    let (mut c1, mut c2) = (0usize, 0usize);
    let mut area = 0.0;
    for window in grid.windows(2) {
        let (x0, x1) = (window[0], window[1]);
        // CDFs are right-continuous steps: constant on [x0, x1).
        while c1 < s1.len() && s1[c1] <= x0 {
            c1 += 1;
        }
        while c2 < s2.len() && s2[c2] <= x0 {
            c2 += 1;
        }
        let f1 = c1 as f64 / n1;
        let f2 = c2 as f64 / n2;
        let denom = f1.max(f2);
        if denom > 0.0 {
            area += numerator(f1, f2) / denom * (x1 - x0);
        }
    }
    (area / upper).clamp(0.0, 1.0)
}

/// Sample pairs per parallel task in the pairwise loops. Fixed (never
/// derived from the thread count) so the work decomposition is identical
/// at any parallelism.
const PAIRS_PER_CHUNK: usize = 32;

/// Upper-triangle pairs `(i, j)`, `i < j`, in the row-major order the
/// sequential double loop visits them.
fn upper_triangle_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        for j in i + 1..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// Eq. (3) similarities for a batch of sample pairs, written into a
/// caller-owned buffer. This is the allocation-free kernel at the bottom
/// of both the batch pairwise matrix and the incremental
/// [`extend_similarity_matrix`] path; each pair is an independent
/// [`integrate_ecdf`] evaluation, so results do not depend on which pairs
/// share a batch. `grid` is the reusable merged-breakpoint buffer.
fn similarity_rows_into(
    ecdfs: &[Ecdf],
    pairs: &[(usize, usize)],
    grid: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    out.clear();
    for &(i, j) in pairs {
        let d = integrate_ecdf(&ecdfs[i], &ecdfs[j], grid, |f1, f2| (f1 - f2).abs());
        out.push(1.0 - d);
    }
}

/// Runs [`similarity_rows_into`] over fixed-size pair chunks in parallel,
/// returning `(pair, similarity)` in row-major pair order.
fn similarity_pairs(
    ecdfs: &[Ecdf],
    pairs: &[(usize, usize)],
    threads: usize,
) -> Vec<((usize, usize), f64)> {
    let per_chunk: Vec<Vec<f64>> =
        anubis_parallel::map_chunks(pairs, PAIRS_PER_CHUNK, threads, |_, chunk| {
            let mut grid = Vec::new();
            let mut sims = Vec::with_capacity(chunk.len());
            similarity_rows_into(ecdfs, chunk, &mut grid, &mut sims);
            sims
        });
    pairs
        .iter()
        .copied()
        .zip(per_chunk.into_iter().flatten())
        .collect()
}

/// Per-pair similarities over the upper triangle, computed on prebuilt
/// ECDFs in parallel, returned in row-major pair order.
fn upper_triangle_similarities(samples: &[Sample], threads: usize) -> Vec<((usize, usize), f64)> {
    let ecdfs: Vec<Ecdf> = samples.iter().map(Ecdf::new).collect();
    let pairs = upper_triangle_pairs(samples.len());
    similarity_pairs(&ecdfs, &pairs, threads)
}

/// Extends a cached pairwise similarity matrix in place after new samples
/// were appended — the incremental entry point behind the Validator's
/// criteria cache.
///
/// `matrix` and `ecdfs` hold the cached state for the first
/// `ecdfs.len()` samples; `samples` is the full set (old followed by
/// new). Only the pairs touching a new sample are computed — `O(new ×
/// total)` integrations instead of `O(total²)` — and each entry is the
/// same independent [`integrate_ecdf`] evaluation the batch path runs, so
/// the extended matrix is bit-identical to
/// [`pairwise_similarity_matrix`] over the full set.
pub fn extend_similarity_matrix(
    matrix: &mut Vec<Vec<f64>>,
    ecdfs: &mut Vec<Ecdf>,
    samples: &[Sample],
    threads: usize,
) {
    let old = ecdfs.len();
    let n = samples.len();
    debug_assert_eq!(matrix.len(), old);
    if n <= old {
        return;
    }
    ecdfs.extend(samples[old..].iter().map(Ecdf::new));
    // Row-major over the new upper-triangle entries: every pair with at
    // least one index >= old.
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2 - old.saturating_sub(1) * old / 2);
    for i in 0..n {
        for j in (i + 1).max(old)..n {
            pairs.push((i, j));
        }
    }
    let computed = similarity_pairs(ecdfs, &pairs, threads);
    for row in matrix.iter_mut() {
        row.resize(n, 1.0);
    }
    matrix.resize_with(n, || vec![1.0; n]);
    for ((i, j), s) in computed {
        matrix[i][j] = s;
        matrix[j][i] = s;
    }
}

/// Full pairwise similarity matrix for a set of samples.
///
/// The matrix is symmetric with unit diagonal. Used by the criteria
/// clustering (Algorithm 2) and the repeatability metric. Only the upper
/// triangle is computed (once, in parallel); entries are identical to the
/// sequential pairwise loop at any thread count.
pub fn pairwise_similarity_matrix(samples: &[Sample]) -> Vec<Vec<f64>> {
    pairwise_similarity_matrix_threads(samples, 0)
}

/// [`pairwise_similarity_matrix`] with an explicit worker-thread count
/// (`0` = auto); exposed so tests can pin the parallelism.
pub fn pairwise_similarity_matrix_threads(samples: &[Sample], threads: usize) -> Vec<Vec<f64>> {
    let n = samples.len();
    let mut matrix = vec![vec![1.0; n]; n];
    for ((i, j), s) in upper_triangle_similarities(samples, threads) {
        matrix[i][j] = s;
        matrix[j][i] = s;
    }
    matrix
}

/// The paper's *repeatability* metric: the arithmetic mean of pairwise
/// similarities across `N` different nodes or runs (Section 3.4).
///
/// Returns 1.0 for fewer than two samples (a single run is trivially
/// repeatable). Pairs are computed in parallel and summed in the
/// sequential loop's pair order, so the mean is bit-identical at any
/// thread count.
pub fn mean_pairwise_similarity(samples: &[Sample]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (_, s) in upper_triangle_similarities(samples, 0) {
        total += s;
        count += 1;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(values: &[f64]) -> Sample {
        Sample::new(values.to_vec()).unwrap()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let s = sample(&[1.0, 2.0, 3.0]);
        assert_eq!(cdf_distance(&s, &s), 0.0);
        assert_eq!(similarity(&s, &s), 1.0);
    }

    #[test]
    fn identical_distributions_different_order() {
        let a = sample(&[3.0, 1.0, 2.0]);
        let b = sample(&[2.0, 3.0, 1.0]);
        assert_eq!(cdf_distance(&a, &b), 0.0);
    }

    #[test]
    fn scalar_distance_is_relative_difference() {
        let a = sample(&[80.0]);
        let b = sample(&[100.0]);
        assert!((cdf_distance(&a, &b) - 0.2).abs() < 1e-12);
        // Symmetric.
        assert!((cdf_distance(&b, &a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = sample(&[1.0, 5.0, 9.0]);
        let b = sample(&[2.0, 4.0, 8.0, 10.0]);
        assert!((cdf_distance(&a, &b) - cdf_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn distance_bounded_by_unit_interval() {
        let a = sample(&[0.0001]);
        let b = sample(&[1000.0]);
        let d = cdf_distance(&a, &b);
        assert!(d > 0.999 && d <= 1.0, "near-maximal separation: {d}");
    }

    #[test]
    fn all_zero_samples_are_identical() {
        let a = sample(&[0.0, 0.0]);
        let b = sample(&[0.0]);
        assert_eq!(cdf_distance(&a, &b), 0.0);
    }

    #[test]
    fn one_sided_detects_throughput_regression_only() {
        let criteria = sample(&[100.0, 101.0, 99.0, 100.5]);
        let slow = sample(&[90.0, 91.0, 89.5, 90.2]);
        let fast = sample(&[110.0, 111.0, 109.0, 110.5]);
        let d_slow = one_sided_distance(&slow, &criteria, Direction::HigherIsBetter);
        let d_fast = one_sided_distance(&fast, &criteria, Direction::HigherIsBetter);
        assert!(
            d_slow > 0.05,
            "slow node must register a regression: {d_slow}"
        );
        assert!(
            d_fast < 1e-9,
            "faster-than-criteria must not be a defect: {d_fast}"
        );
    }

    #[test]
    fn one_sided_latency_direction_flips() {
        let criteria = sample(&[10.0, 10.2, 9.8]);
        let slow = sample(&[13.0, 13.1, 12.9]); // higher latency: worse
        let fast = sample(&[8.0, 8.1, 7.9]); // lower latency: better
        let d_slow = one_sided_distance(&slow, &criteria, Direction::LowerIsBetter);
        let d_fast = one_sided_distance(&fast, &criteria, Direction::LowerIsBetter);
        assert!(d_slow > 0.05, "higher latency must register: {d_slow}");
        assert!(d_fast < 1e-9, "lower latency must not register: {d_fast}");
    }

    #[test]
    fn one_sided_never_exceeds_two_sided() {
        let a = sample(&[1.0, 2.0, 3.5, 7.0]);
        let b = sample(&[2.0, 2.5, 3.0]);
        for dir in [Direction::HigherIsBetter, Direction::LowerIsBetter] {
            assert!(one_sided_distance(&a, &b, dir) <= cdf_distance(&a, &b) + 1e-12);
        }
    }

    #[test]
    fn one_sided_sides_sum_to_two_sided() {
        let a = sample(&[1.0, 2.0, 3.5, 7.0]);
        let b = sample(&[2.0, 2.5, 3.0]);
        let lo = one_sided_distance(&a, &b, Direction::HigherIsBetter);
        let hi = one_sided_distance(&a, &b, Direction::LowerIsBetter);
        assert!((lo + hi - cdf_distance(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn tight_noise_yields_high_similarity() {
        // Two runs of the same healthy benchmark: 1% relative noise around 100.
        let a: Vec<f64> = (0..200)
            .map(|i| 100.0 + ((i * 37) % 100) as f64 / 100.0)
            .collect();
        let b: Vec<f64> = (0..200)
            .map(|i| 100.0 + ((i * 53) % 100) as f64 / 100.0)
            .collect();
        let s = similarity(&sample(&a), &sample(&b));
        assert!(s > 0.99, "healthy repetitions must be near-identical: {s}");
    }

    #[test]
    fn clear_regression_yields_low_similarity() {
        let healthy: Vec<f64> = (0..100).map(|i| 100.0 + (i % 10) as f64 / 10.0).collect();
        let defective: Vec<f64> = (0..100).map(|i| 70.0 + (i % 10) as f64 / 10.0).collect();
        let s = similarity(&sample(&healthy), &sample(&defective));
        assert!(
            s < 0.95,
            "30% regression must break the α=0.95 threshold: {s}"
        );
    }

    #[test]
    fn pairwise_matrix_symmetric_unit_diagonal() {
        let samples = vec![sample(&[1.0, 2.0]), sample(&[1.5, 2.5]), sample(&[10.0])];
        let m = pairwise_similarity_matrix(&samples);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn extend_matches_batch_matrix_bitwise() {
        let all: Vec<Sample> = (0..9)
            .map(|i| sample(&[100.0 + i as f64, 101.0 + (i % 3) as f64, 99.5]))
            .collect();
        for split in [0usize, 1, 4, 8, 9] {
            let mut matrix = pairwise_similarity_matrix(&all[..split]);
            let mut ecdfs: Vec<Ecdf> = all[..split].iter().map(Ecdf::new).collect();
            extend_similarity_matrix(&mut matrix, &mut ecdfs, &all, 0);
            assert_eq!(matrix, pairwise_similarity_matrix(&all), "split {split}");
            assert_eq!(ecdfs.len(), all.len());
        }
    }

    #[test]
    fn extend_with_no_new_samples_is_a_no_op() {
        let all: Vec<Sample> = (0..3).map(|i| sample(&[10.0 + i as f64])).collect();
        let mut matrix = pairwise_similarity_matrix(&all);
        let mut ecdfs: Vec<Ecdf> = all.iter().map(Ecdf::new).collect();
        let before = matrix.clone();
        extend_similarity_matrix(&mut matrix, &mut ecdfs, &all, 0);
        assert_eq!(matrix, before);
    }

    #[test]
    fn repeatability_of_single_sample_is_one() {
        assert_eq!(mean_pairwise_similarity(&[sample(&[1.0])]), 1.0);
        assert_eq!(mean_pairwise_similarity(&[]), 1.0);
    }

    #[test]
    fn repeatability_averages_pairs() {
        let samples = vec![sample(&[100.0]), sample(&[100.0]), sample(&[50.0])];
        // Pairs: (0,1)=1.0, (0,2)=0.5, (1,2)=0.5 => mean 2/3.
        let r = mean_pairwise_similarity(&samples);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! Mergeable empirical-CDF sketches.
//!
//! [`Ecdf`] is a batch structure: it sorts the whole sample up front and
//! answers queries against the sorted support. At fleet scale the Validator
//! re-derives criteria as results stream in, and per-shard distributions
//! must combine into fleet-wide criteria without re-sorting the world.
//! [`EcdfSketch`] fills that gap: an append-only ECDF accumulator with
//!
//! - amortized `O(log n)` append (a logarithmic merge structure: sorted
//!   runs whose lengths follow a binary-counter discipline, so an append
//!   cascades through at most `log n` run merges),
//! - `O(n + m)` merge of two sketches by a linear merge walk over their
//!   collapsed runs — no re-sort, and
//! - queries (`eval`, `quantile`, `min`, `max`) that are *observationally
//!   equivalent* to building [`Ecdf`] over the same multiset of values:
//!   they return bit-identical results, because every query reduces to
//!   multiset counts and order statistics, which do not depend on how the
//!   values are partitioned into runs.
//!
//! Run merges compare with [`f64::total_cmp`] — the same comparator
//! [`crate::Sample`] sorts with — so [`EcdfSketch::to_ecdf`] reproduces the
//! batch support byte-for-byte even in the presence of `-0.0`.

use crate::ecdf::Ecdf;
use crate::sample::Sample;

/// An append-only, mergeable empirical-CDF accumulator.
///
/// # Examples
///
/// ```
/// use anubis_metrics::{Ecdf, EcdfSketch, Sample};
///
/// let mut shard_a = EcdfSketch::new();
/// shard_a.append(2.0);
/// shard_a.append(1.0);
/// let mut shard_b = EcdfSketch::new();
/// shard_b.append(4.0);
/// shard_b.append(2.0);
/// shard_a.merge(&shard_b);
///
/// let batch = Ecdf::new(&Sample::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap());
/// assert_eq!(shard_a.eval(2.0), batch.eval(2.0));
/// assert_eq!(shard_a.quantile(0.5), batch.quantile(0.5));
/// assert_eq!(shard_a.to_ecdf(), batch);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EcdfSketch {
    /// Sorted runs. `runs[k]` is either empty or holds exactly `2^k`
    /// values, mirroring the bits of `len` — the classical logarithmic
    /// (binary-counter) merge structure.
    runs: Vec<Vec<f64>>,
    /// Total number of appended values.
    len: usize,
}

impl EcdfSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sketch directly from a validated sample, reusing its
    /// already-sorted support as a single run (`O(n)`).
    pub fn from_sample(sample: &Sample) -> Self {
        Self {
            runs: vec![sample.sorted().to_vec()],
            len: sample.len(),
        }
    }

    /// Number of appended values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no value has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one measurement. Amortized `O(log n)`: the new singleton
    /// run is carried upward, merging with each occupied level, exactly
    /// like incrementing a binary counter.
    pub fn append(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "sketch values must be finite");
        let mut carry = vec![value];
        let mut level = 0;
        loop {
            if level == self.runs.len() {
                self.runs.push(carry);
                break;
            }
            if self.runs[level].is_empty() {
                self.runs[level] = carry;
                break;
            }
            let occupant = std::mem::take(&mut self.runs[level]);
            carry = merge_runs(&occupant, &carry);
            level += 1;
        }
        self.len += 1;
    }

    /// Appends every value of an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.append(v);
        }
    }

    /// Merges another sketch into this one **without re-sorting**: both
    /// sketches collapse their runs smallest-first (geometric run lengths
    /// make that `O(n)` / `O(m)` total) and a single linear merge walk
    /// combines the two collapsed runs — `O(n + m)` overall.
    pub fn merge(&mut self, other: &EcdfSketch) {
        if other.is_empty() {
            return;
        }
        let mine = self.collapsed();
        let theirs = other.collapsed();
        let merged = merge_runs(&mine, &theirs);
        self.len += other.len;
        self.runs.clear();
        self.runs.push(merged);
    }

    /// Merges any number of shard sketches into one fleet sketch, in the
    /// given order. Each part is collapsed once and the collapsed runs
    /// combine by balanced pairwise merging (`O(total · log parts)`), so
    /// merging a 64-shard fleet never re-sorts the world. The result is
    /// multiset-equal to appending every part's values into one sketch —
    /// and therefore (like [`EcdfSketch::merge`]) evaluates and
    /// quantile-queries identically regardless of how the fleet was
    /// partitioned.
    ///
    /// # Examples
    ///
    /// ```
    /// use anubis_metrics::EcdfSketch;
    ///
    /// let mut a = EcdfSketch::new();
    /// a.extend([3.0, 1.0]);
    /// let mut b = EcdfSketch::new();
    /// b.extend([2.0]);
    /// let fleet = EcdfSketch::merged([&a, &b]);
    /// assert_eq!(fleet.len(), 3);
    /// assert_eq!(fleet.quantile(0.5), 2.0);
    /// ```
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a EcdfSketch>) -> EcdfSketch {
        let mut runs: Vec<Vec<f64>> = parts
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(EcdfSketch::collapsed)
            .collect();
        if runs.is_empty() {
            return EcdfSketch::new();
        }
        // Balanced tournament: merge adjacent pairs until one run is left.
        while runs.len() > 1 {
            let mut next: Vec<Vec<f64>> = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.chunks_exact(2);
            for pair in iter.by_ref() {
                next.push(merge_runs(&pair[0], &pair[1]));
            }
            if let [odd] = iter.remainder() {
                next.push(odd.clone());
            }
            runs = next;
        }
        let merged = runs.swap_remove(0);
        let len = merged.len();
        EcdfSketch {
            runs: vec![merged],
            len,
        }
    }

    /// Evaluates `F(x)`, the fraction of values `<= x`. Bit-identical to
    /// [`Ecdf::eval`] on the same multiset: the count of values `<= x` is
    /// the sum of per-run counts regardless of partitioning.
    pub fn eval(&self, x: f64) -> f64 {
        let mut count = 0usize;
        for run in &self.runs {
            count += run.partition_point(|&v| v <= x);
        }
        count as f64 / self.len as f64
    }

    /// The quantile function, bit-identical to [`Ecdf::quantile`] on the
    /// same multiset: both return the `k`-th smallest value for the same
    /// `k`, and order statistics are a multiset property.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.min();
        }
        let k = ((p * self.len as f64).ceil() as usize).clamp(1, self.len);
        self.kth_smallest(k)
    }

    /// Smallest appended value.
    pub fn min(&self) -> f64 {
        let mut best = f64::INFINITY;
        for run in &self.runs {
            if let Some(&first) = run.first() {
                if first.total_cmp(&best).is_lt() {
                    best = first;
                }
            }
        }
        best
    }

    /// Largest appended value.
    pub fn max(&self) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for run in &self.runs {
            if let Some(&last) = run.last() {
                if last.total_cmp(&best).is_gt() {
                    best = last;
                }
            }
        }
        best
    }

    /// The `k`-th smallest value (1-based) in total order, found by a
    /// `k`-way pointer walk over the sorted runs.
    fn kth_smallest(&self, k: usize) -> f64 {
        debug_assert!(k >= 1 && k <= self.len);
        let mut cursors = vec![0usize; self.runs.len()];
        let mut current = f64::NAN;
        for _ in 0..k {
            let mut best: Option<usize> = None;
            for (r, run) in self.runs.iter().enumerate() {
                let Some(&candidate) = run.get(cursors[r]) else {
                    continue;
                };
                let better = match best {
                    None => true,
                    Some(b) => candidate.total_cmp(&self.runs[b][cursors[b]]).is_lt(),
                };
                if better {
                    best = Some(r);
                }
            }
            let Some(r) = best else {
                break;
            };
            current = self.runs[r][cursors[r]];
            cursors[r] += 1;
        }
        current
    }

    /// Collapses all runs into one ascending vector. Run lengths are
    /// geometric, so merging smallest-first costs `O(n)` total.
    fn collapsed(&self) -> Vec<f64> {
        let mut acc: Vec<f64> = Vec::new();
        for run in self.runs.iter().filter(|r| !r.is_empty()) {
            if acc.is_empty() {
                acc.extend_from_slice(run);
            } else {
                acc = merge_runs(&acc, run);
            }
        }
        acc
    }

    /// Converts into a batch [`Ecdf`]. The collapsed runs are exactly the
    /// [`f64::total_cmp`]-sorted support [`Ecdf::new`] would build.
    pub fn to_ecdf(&self) -> Ecdf {
        Ecdf::from_sorted(self.collapsed())
    }

    /// Sorted support points with duplicates removed — the breakpoints of
    /// the step function, identical to [`Ecdf::breakpoints`].
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut points = self.collapsed();
        points.dedup();
        points
    }
}

/// Linear merge of two runs each sorted by [`f64::total_cmp`]; ties take
/// the left side first, which preserves the total order.
fn merge_runs(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].total_cmp(&b[j]).is_le() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(values: &[f64]) -> Sample {
        Sample::new(values.to_vec()).unwrap()
    }

    #[test]
    fn append_matches_batch_ecdf() {
        let values = [5.0, 1.0, 3.0, 3.0, 2.0, 8.0, 0.5];
        let mut sketch = EcdfSketch::new();
        sketch.extend(values.iter().copied());
        let batch = Ecdf::new(&sample(&values));
        assert_eq!(sketch.to_ecdf(), batch);
        for x in [0.0, 0.5, 1.5, 3.0, 8.0, 9.0] {
            assert_eq!(sketch.eval(x), batch.eval(x));
        }
        for p in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(sketch.quantile(p), batch.quantile(p));
        }
        assert_eq!(sketch.min(), batch.min());
        assert_eq!(sketch.max(), batch.max());
        assert_eq!(sketch.breakpoints(), batch.breakpoints());
    }

    #[test]
    fn merge_matches_concatenated_batch() {
        let a = [4.0, 1.0, 7.0];
        let b = [2.0, 2.0, 9.0, 0.25];
        let mut sa = EcdfSketch::new();
        sa.extend(a.iter().copied());
        let mut sb = EcdfSketch::new();
        sb.extend(b.iter().copied());
        sa.merge(&sb);
        let mut all: Vec<f64> = a.to_vec();
        all.extend_from_slice(&b);
        let batch = Ecdf::new(&sample(&all));
        assert_eq!(sa.len(), 7);
        assert_eq!(sa.to_ecdf(), batch);
    }

    #[test]
    fn from_sample_seeds_a_single_run() {
        let s = sample(&[3.0, 1.0, 2.0]);
        let sketch = EcdfSketch::from_sample(&s);
        assert_eq!(sketch.len(), 3);
        assert_eq!(sketch.to_ecdf(), Ecdf::new(&s));
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut empty = EcdfSketch::new();
        let mut other = EcdfSketch::new();
        other.append(1.0);
        empty.merge(&other);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.min(), 1.0);
        let before = empty.clone();
        empty.merge(&EcdfSketch::new());
        assert_eq!(empty, before);
    }

    #[test]
    fn merged_is_partition_invariant() {
        let values: Vec<f64> = (0..97).map(|i| ((i * 37) % 89) as f64 * 0.5).collect();
        let whole = {
            let mut s = EcdfSketch::new();
            s.extend(values.iter().copied());
            s
        };
        for parts in [1usize, 3, 8, 16] {
            let shards: Vec<EcdfSketch> = values
                .chunks(values.len().div_ceil(parts))
                .map(|chunk| {
                    let mut s = EcdfSketch::new();
                    s.extend(chunk.iter().copied());
                    s
                })
                .collect();
            let fleet = EcdfSketch::merged(shards.iter());
            assert_eq!(fleet.len(), whole.len());
            assert_eq!(fleet.to_ecdf(), whole.to_ecdf());
            for p in [0.01, 0.05, 0.5, 0.95, 1.0] {
                assert_eq!(fleet.quantile(p), whole.quantile(p), "{parts} parts, p={p}");
            }
        }
        assert!(EcdfSketch::merged([]).is_empty());
    }

    #[test]
    fn run_lengths_follow_binary_counter() {
        let mut sketch = EcdfSketch::new();
        sketch.extend((0..11).map(|i| i as f64));
        // 11 = 0b1011: runs of size 1, 2 and 8 occupied.
        let lens: Vec<usize> = sketch.runs.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![1, 2, 0, 8]);
    }
}

//! Local Outlier Factor (Breunig et al., SIGMOD 2000).

use crate::error::{MetricsError, Result};
use crate::stats;

/// Local Outlier Factor scores for a point cloud.
///
/// LOF compares the local reachability density of each point to that of its
/// `k` nearest neighbours; scores well above 1 indicate outliers. The paper
/// (Figure 6) uses LOF as a strawman defect filter and shows it mislabels
/// healthy-but-sparse performance points, which motivates the CDF-similarity
/// criteria instead.
#[derive(Debug, Clone)]
pub struct LocalOutlierFactor {
    scores: Vec<f64>,
    k: usize,
}

impl LocalOutlierFactor {
    /// Computes LOF scores with neighbourhood size `k`.
    ///
    /// Requires `k >= 1` and at least `k + 1` points.
    pub fn fit(points: &[Vec<f64>], k: usize) -> Result<Self> {
        if k == 0 {
            return Err(MetricsError::InvalidParameter {
                name: "k",
                message: "neighbourhood size must be positive".into(),
            });
        }
        if points.len() <= k {
            return Err(MetricsError::InsufficientData {
                required: k + 1,
                actual: points.len(),
            });
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(MetricsError::DimensionMismatch {
                    expected: dim,
                    actual: p.len(),
                });
            }
        }
        let n = points.len();

        // Pairwise distances (n is small in validation contexts: one point
        // per node), and each point's neighbour list sorted by distance.
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = stats::euclidean(&points[i], &points[j]);
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        let mut neighbours: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut k_distance = vec![0.0f64; n];
        for i in 0..n {
            let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            order.sort_by(|&a, &b| dist[i][a].total_cmp(&dist[i][b]));
            k_distance[i] = dist[i][order[k - 1]];
            // The k-NN set contains every point within the k-distance
            // (can exceed k under ties).
            let knn: Vec<usize> = order
                .iter()
                .copied()
                .take_while(|&j| dist[i][j] <= k_distance[i])
                .collect();
            neighbours.push(knn);
        }

        // Local reachability density. Duplicated points give zero total
        // reach distance, i.e. infinite density; the LOF ratio handles that
        // below following the original paper's convention.
        let mut lrd = vec![0.0f64; n];
        for i in 0..n {
            let total: f64 = neighbours[i]
                .iter()
                .map(|&o| dist[i][o].max(k_distance[o]))
                .sum();
            lrd[i] = if total == 0.0 {
                f64::INFINITY
            } else {
                neighbours[i].len() as f64 / total
            };
        }

        let mut scores = vec![0.0f64; n];
        for i in 0..n {
            let ratios: Vec<f64> = neighbours[i]
                .iter()
                .map(|&o| {
                    if lrd[i].is_infinite() {
                        // Both infinite => densities equal; finite neighbour
                        // density against infinite own density => ratio 0.
                        if lrd[o].is_infinite() {
                            1.0
                        } else {
                            0.0
                        }
                    } else if lrd[o].is_infinite() {
                        f64::INFINITY
                    } else {
                        lrd[o] / lrd[i]
                    }
                })
                .collect();
            scores[i] = stats::mean(&ratios);
        }
        Ok(Self { scores, k })
    }

    /// LOF score per input point (parallel to input order).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Neighbourhood size the scores were computed with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Indices whose score exceeds `threshold` (1.5 is a common choice).
    pub fn outlier_indices(&self, threshold: f64) -> Vec<usize> {
        self.scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cloud_scores_near_one() {
        let points: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let lof = LocalOutlierFactor::fit(&points, 3).unwrap();
        for (i, &s) in lof.scores().iter().enumerate() {
            assert!(s < 1.5, "grid point {i} must not be an outlier: {s}");
        }
    }

    #[test]
    fn isolated_point_scores_high() {
        let mut points: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
        points.push(vec![50.0]);
        let lof = LocalOutlierFactor::fit(&points, 3).unwrap();
        let outliers = lof.outlier_indices(1.5);
        assert_eq!(outliers, vec![20]);
        assert!(
            lof.scores()[20] > 10.0,
            "isolated point score: {}",
            lof.scores()[20]
        );
    }

    #[test]
    fn sparse_but_healthy_points_are_mislabeled() {
        // The Figure 6 phenomenon: a dense cluster of nominal results plus a
        // handful of equally-healthy results at slightly higher throughput.
        // LOF flags the sparse healthy points because density, not
        // performance direction, drives the score.
        let mut points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![100.0 + (i % 10) as f64 * 0.01])
            .collect();
        points.push(vec![101.2]);
        points.push(vec![101.9]);
        let lof = LocalOutlierFactor::fit(&points, 5).unwrap();
        let outliers = lof.outlier_indices(1.5);
        assert!(
            outliers.contains(&30) || outliers.contains(&31),
            "LOF should mislabel at least one sparse healthy point: {outliers:?}"
        );
    }

    #[test]
    fn duplicate_points_do_not_explode() {
        let mut points = vec![vec![1.0]; 10];
        points.push(vec![5.0]);
        let lof = LocalOutlierFactor::fit(&points, 3).unwrap();
        for &s in &lof.scores()[..10] {
            assert!((s - 1.0).abs() < 1e-9, "duplicates have equal density: {s}");
        }
        assert!(lof.scores()[10] > 1.5 || lof.scores()[10].is_infinite());
    }

    #[test]
    fn parameter_validation() {
        let points = vec![vec![1.0], vec![2.0]];
        assert!(LocalOutlierFactor::fit(&points, 0).is_err());
        assert!(LocalOutlierFactor::fit(&points, 2).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0], vec![3.0]];
        assert!(LocalOutlierFactor::fit(&ragged, 1).is_err());
    }
}

//! Interquartile-range outlier fences.

use crate::error::{MetricsError, Result};
use crate::stats;

/// Tukey-style IQR fences over a set of scalar metrics.
///
/// The paper's Figure 9 baseline uses the *average throughput* of each
/// benchmark sample, computes the lower/upper quartiles `Q1`/`Q3`, and marks
/// values below `Q1 − k·(Q3 − Q1)` (with the classic `k = 1.5`) as defective.
///
/// # Examples
///
/// ```
/// use anubis_metrics::outlier::IqrFences;
///
/// let values = vec![10.0, 10.2, 9.9, 10.1, 10.0, 3.0];
/// let fences = IqrFences::fit(&values, 1.5).unwrap();
/// assert!(fences.is_low_outlier(3.0));
/// assert!(!fences.is_low_outlier(9.9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IqrFences {
    /// Lower quartile of the fitted data.
    pub q1: f64,
    /// Upper quartile of the fitted data.
    pub q3: f64,
    /// Fence multiplier (`1.5` classically).
    pub k: f64,
}

impl IqrFences {
    /// Fits fences on scalar metrics.
    ///
    /// Requires at least four data points so the quartiles are meaningful.
    pub fn fit(values: &[f64], k: f64) -> Result<Self> {
        if values.len() < 4 {
            return Err(MetricsError::InsufficientData {
                required: 4,
                actual: values.len(),
            });
        }
        if !k.is_finite() || k < 0.0 {
            return Err(MetricsError::InvalidParameter {
                name: "k",
                message: format!("fence multiplier {k} must be finite and non-negative"),
            });
        }
        let q1 = stats::quantile(values, 0.25);
        let q3 = stats::quantile(values, 0.75);
        Ok(Self { q1, q3, k })
    }

    /// The interquartile range `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lower fence `Q1 − k·IQR`.
    pub fn lower_fence(&self) -> f64 {
        self.q1 - self.k * self.iqr()
    }

    /// Upper fence `Q3 + k·IQR`.
    pub fn upper_fence(&self) -> f64 {
        self.q3 + self.k * self.iqr()
    }

    /// Whether `value` falls below the lower fence (a throughput defect).
    pub fn is_low_outlier(&self, value: f64) -> bool {
        value < self.lower_fence()
    }

    /// Whether `value` falls outside either fence.
    pub fn is_outlier(&self, value: f64) -> bool {
        value < self.lower_fence() || value > self.upper_fence()
    }

    /// Indices of low outliers in `values`.
    pub fn low_outlier_indices(&self, values: &[f64]) -> Vec<usize> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| self.is_low_outlier(v))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_clear_low_outlier() {
        let values = vec![100.0, 101.0, 99.0, 100.5, 99.5, 60.0];
        let fences = IqrFences::fit(&values, 1.5).unwrap();
        assert!(fences.is_low_outlier(60.0));
        assert!(!fences.is_low_outlier(99.0));
        assert_eq!(fences.low_outlier_indices(&values), vec![5]);
    }

    #[test]
    fn tight_cluster_has_no_outliers() {
        let values = vec![10.0, 10.01, 9.99, 10.0, 10.02, 9.98];
        let fences = IqrFences::fit(&values, 1.5).unwrap();
        assert!(values.iter().all(|&v| !fences.is_outlier(v)));
    }

    #[test]
    fn requires_four_points() {
        assert!(matches!(
            IqrFences::fit(&[1.0, 2.0, 3.0], 1.5),
            Err(MetricsError::InsufficientData {
                required: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn rejects_bad_multiplier() {
        assert!(IqrFences::fit(&[1.0, 2.0, 3.0, 4.0], -1.0).is_err());
        assert!(IqrFences::fit(&[1.0, 2.0, 3.0, 4.0], f64::NAN).is_err());
    }

    #[test]
    fn upper_fence_flags_high_values() {
        let values = vec![10.0, 10.1, 9.9, 10.0, 10.05, 9.95, 50.0];
        let fences = IqrFences::fit(&values, 1.5).unwrap();
        assert!(fences.is_outlier(50.0));
        assert!(
            !fences.is_low_outlier(50.0),
            "50.0 is an upper outlier, not lower"
        );
    }
}

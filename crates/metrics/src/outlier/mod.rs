//! Baseline outlier-detection methods the paper compares against.
//!
//! Section 2.3 (Figure 6) shows why off-the-shelf outlier detection makes a
//! poor defect filter: the Local Outlier Factor marks low-density but healthy
//! points as outliers, and the one-class SVM draws false-positive boundaries
//! inside dense intervals. Section 5.3 (Figure 9) additionally compares the
//! proposed criteria against IQR fences and k-means clustering. All four
//! baselines are implemented here from scratch.

pub mod iqr;
pub mod kmeans;
pub mod lof;
pub mod ocsvm;

pub use iqr::IqrFences;
pub use kmeans::{KMeans, KMeansConfig};
pub use lof::LocalOutlierFactor;
pub use ocsvm::OneClassSvm;

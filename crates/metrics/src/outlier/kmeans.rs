//! Lloyd's k-means clustering with k-means++ seeding.

use crate::error::{MetricsError, Result};
use crate::stats;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters; the paper's Figure 9 baseline uses `k = 2`.
    pub k: usize,
    /// Maximum Lloyd iterations before giving up.
    pub max_iterations: usize,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 200,
            seed: 0,
        }
    }
}

/// A fitted k-means model over fixed-dimension points.
///
/// The paper's Figure 9 baseline clusters benchmark samples with Euclidean
/// distance and `k = 2`, then treats the majority cluster as healthy, using
/// the average of its members as the criteria.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Runs Lloyd's algorithm with k-means++ initialization.
    ///
    /// All points must share a dimension and there must be at least `k`
    /// points.
    pub fn fit(points: &[Vec<f64>], config: KMeansConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(MetricsError::InvalidParameter {
                name: "k",
                message: "cluster count must be positive".into(),
            });
        }
        if points.len() < config.k {
            return Err(MetricsError::InsufficientData {
                required: config.k,
                actual: points.len(),
            });
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(MetricsError::InvalidParameter {
                name: "points",
                message: "points must have at least one dimension".into(),
            });
        }
        for p in points {
            if p.len() != dim {
                return Err(MetricsError::DimensionMismatch {
                    expected: dim,
                    actual: p.len(),
                });
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut centroids = kmeans_plus_plus(points, config.k, &mut rng);
        let mut assignments = vec![0usize; points.len()];

        for _ in 0..config.max_iterations {
            let mut changed = false;
            for (i, point) in points.iter().enumerate() {
                let nearest = nearest_centroid(point, &centroids);
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            // Recompute centroids; empty clusters keep their previous center.
            let mut sums = vec![vec![0.0; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (i, point) in points.iter().enumerate() {
                counts[assignments[i]] += 1;
                for (d, v) in point.iter().enumerate() {
                    sums[assignments[i]][d] += v;
                }
            }
            for c in 0..config.k {
                if counts[c] > 0 {
                    for d in 0..dim {
                        centroids[c][d] = sums[c][d] / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let inertia = points
            .iter()
            .enumerate()
            .map(|(i, p)| stats::squared_euclidean(p, &centroids[assignments[i]]))
            .sum();
        Ok(Self {
            centroids,
            assignments,
            inertia,
        })
    }

    /// Cluster centers.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Per-point cluster assignment, parallel to the input order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances of points to their assigned centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Index of the cluster with the most members (ties broken by lower
    /// index) — the "majority" (healthy) cluster in the Figure 9 baseline.
    pub fn majority_cluster(&self) -> usize {
        let k = self.centroids.len();
        let mut counts = vec![0usize; k];
        for &a in &self.assignments {
            counts[a] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .map(|(i, _)| i)
            .expect("k >= 1")
    }

    /// Indices of the points assigned to `cluster`.
    pub fn members_of(&self, cluster: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == cluster)
            .map(|(i, _)| i)
            .collect()
    }
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_dist = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = stats::squared_euclidean(point, centroid);
        if d < best_dist {
            best = c;
            best_dist = d;
        }
    }
    best
}

/// k-means++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
fn kmeans_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| stats::squared_euclidean(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centers; any choice works.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_points() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![100.0 + i as f64 * 0.1]);
        }
        for i in 0..3 {
            points.push(vec![50.0 + i as f64 * 0.1]);
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blob_points();
        let model = KMeans::fit(&points, KMeansConfig::default()).unwrap();
        let majority = model.majority_cluster();
        let members = model.members_of(majority);
        assert_eq!(members.len(), 10);
        assert!(
            members.iter().all(|&i| i < 10),
            "majority cluster must be the 100-blob"
        );
        // Centroid of the majority cluster sits near 100.45.
        let c = &model.centroids()[majority];
        assert!((c[0] - 100.45).abs() < 0.5, "centroid {c:?}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let points = two_blob_points();
        let a = KMeans::fit(
            &points,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let b = KMeans::fit(
            &points,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(KMeans::fit(&[], KMeansConfig::default()).is_err());
        assert!(KMeans::fit(
            &[vec![1.0]],
            KMeansConfig {
                k: 2,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &[vec![]],
            KMeansConfig {
                k: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            KMeansConfig {
                k: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &[vec![1.0]],
            KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn identical_points_converge() {
        let points = vec![vec![5.0, 5.0]; 6];
        let model = KMeans::fit(&points, KMeansConfig::default()).unwrap();
        assert_eq!(model.inertia(), 0.0);
    }

    #[test]
    fn multidimensional_clustering() {
        let mut points = Vec::new();
        for i in 0..8 {
            points.push(vec![i as f64 * 0.01, 1.0]);
            points.push(vec![i as f64 * 0.01 + 10.0, -1.0]);
        }
        let model = KMeans::fit(&points, KMeansConfig::default()).unwrap();
        // Points alternate between blobs; assignments must alternate too.
        let a = model.assignments();
        for i in (0..16).step_by(2) {
            assert_eq!(a[i], a[0]);
            assert_eq!(a[i + 1], a[1]);
        }
        assert_ne!(a[0], a[1]);
    }
}

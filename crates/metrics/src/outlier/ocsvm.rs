//! One-class support vector machine (Schölkopf et al., 2001).

use crate::error::{MetricsError, Result};
use crate::stats;

/// ν-parameterized one-class SVM with an RBF kernel.
///
/// Solves the standard dual
///
/// ```text
/// min_α  ½ Σᵢⱼ αᵢαⱼ K(xᵢ, xⱼ)   s.t.  0 ≤ αᵢ ≤ 1/(νn),  Σᵢ αᵢ = 1
/// ```
///
/// with an SMO-style most-violating-pair solver, and classifies points by
/// the sign of `f(x) = Σᵢ αᵢ K(xᵢ, x) − ρ`. The paper's Figure 6 uses this
/// method as a strawman: with dense data inside an interval it draws
/// boundaries that flag healthy points.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    support: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    gamma: f64,
    rho: f64,
}

impl OneClassSvm {
    /// Trains on `points` with contamination fraction `nu` in `(0, 1]` and
    /// RBF bandwidth `gamma > 0`.
    pub fn fit(points: &[Vec<f64>], nu: f64, gamma: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&nu) || nu == 0.0 {
            return Err(MetricsError::InvalidParameter {
                name: "nu",
                message: format!("nu {nu} must be in (0, 1]"),
            });
        }
        if !gamma.is_finite() || gamma <= 0.0 {
            return Err(MetricsError::InvalidParameter {
                name: "gamma",
                message: format!("gamma {gamma} must be positive"),
            });
        }
        let n = points.len();
        if n < 2 {
            return Err(MetricsError::InsufficientData {
                required: 2,
                actual: n,
            });
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(MetricsError::DimensionMismatch {
                    expected: dim,
                    actual: p.len(),
                });
            }
        }

        let upper = 1.0 / (nu * n as f64);
        let kernel = |a: &[f64], b: &[f64]| (-gamma * stats::squared_euclidean(a, b)).exp();
        let mut gram = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i..n {
                let k = kernel(&points[i], &points[j]);
                gram[i][j] = k;
                gram[j][i] = k;
            }
        }

        // Feasible start: uniform weights (respects the box since 1/n <= upper).
        let mut alphas = vec![1.0 / n as f64; n];
        // Gradient of the objective: g_i = Σ_j α_j K_ij.
        let mut grad: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| alphas[j] * gram[i][j]).sum())
            .collect();

        let tolerance = 1e-8;
        let max_iterations = 50 * n.max(100);
        for _ in 0..max_iterations {
            // Most-violating pair: increase mass where the gradient is
            // smallest (i, needs headroom) and decrease where it is largest
            // (j, needs mass).
            let mut i_best: Option<usize> = None;
            let mut j_best: Option<usize> = None;
            for idx in 0..n {
                if alphas[idx] < upper - 1e-15 && i_best.is_none_or(|b| grad[idx] < grad[b]) {
                    i_best = Some(idx);
                }
                if alphas[idx] > 1e-15 && j_best.is_none_or(|b| grad[idx] > grad[b]) {
                    j_best = Some(idx);
                }
            }
            let (Some(i), Some(j)) = (i_best, j_best) else {
                break;
            };
            if i == j || grad[j] - grad[i] < tolerance {
                break;
            }
            // Transfer δ of weight from j to i; quadratic line search.
            let curvature = gram[i][i] + gram[j][j] - 2.0 * gram[i][j];
            let mut delta = if curvature > 1e-12 {
                (grad[j] - grad[i]) / curvature
            } else {
                f64::INFINITY
            };
            delta = delta.min(upper - alphas[i]).min(alphas[j]);
            if delta <= 0.0 {
                break;
            }
            alphas[i] += delta;
            alphas[j] -= delta;
            for idx in 0..n {
                grad[idx] += delta * (gram[idx][i] - gram[idx][j]);
            }
        }

        // ρ from margin support vectors (0 < α < upper); fall back to all
        // support vectors when none sit strictly inside the box.
        let margin: Vec<usize> = (0..n)
            .filter(|&i| alphas[i] > 1e-12 && alphas[i] < upper - 1e-12)
            .collect();
        let reference: Vec<usize> = if margin.is_empty() {
            (0..n).filter(|&i| alphas[i] > 1e-12).collect()
        } else {
            margin
        };
        let rho = reference.iter().map(|&i| grad[i]).sum::<f64>() / reference.len() as f64;

        let (support, alphas): (Vec<Vec<f64>>, Vec<f64>) = points
            .iter()
            .zip(&alphas)
            .filter(|(_, &a)| a > 1e-12)
            .map(|(p, &a)| (p.clone(), a))
            .unzip();
        Ok(Self {
            support,
            alphas,
            gamma,
            rho,
        })
    }

    /// Signed decision value `f(x)`; negative values are outliers.
    pub fn decision(&self, point: &[f64]) -> f64 {
        let k: f64 = self
            .support
            .iter()
            .zip(&self.alphas)
            .map(|(sv, &a)| a * (-self.gamma * stats::squared_euclidean(sv, point)).exp())
            .sum();
        k - self.rho
    }

    /// Whether `point` is classified as an outlier.
    pub fn is_outlier(&self, point: &[f64]) -> bool {
        self.decision(point) < 0.0
    }

    /// Number of support vectors retained after training.
    pub fn support_vector_count(&self) -> usize {
        self.support.len()
    }

    /// Offset ρ of the decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Vec<Vec<f64>> {
        let mut points: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![10.0 + (i % 8) as f64 * 0.05])
            .collect();
        points.push(vec![3.0]);
        points
    }

    #[test]
    fn detects_far_outlier() {
        let points = cluster_with_outlier();
        let model = OneClassSvm::fit(&points, 0.05, 0.5).unwrap();
        assert!(
            model.is_outlier(&[3.0]),
            "decision: {}",
            model.decision(&[3.0])
        );
        assert!(
            !model.is_outlier(&[10.2]),
            "decision: {}",
            model.decision(&[10.2])
        );
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        // With nu = 0.25 roughly a quarter of the training mass may sit
        // outside; the dense core must stay inside regardless.
        let points: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 10) as f64 * 0.01]).collect();
        let model = OneClassSvm::fit(&points, 0.25, 1.0).unwrap();
        // Margin support vectors sit numerically on the boundary; count a
        // point as a training error only when it is strictly inside the
        // outlier region.
        let errors = points.iter().filter(|p| model.decision(p) < -1e-6).count();
        assert!(
            errors <= 10,
            "ν bounds the training-error fraction: {errors}/40"
        );
    }

    #[test]
    fn dense_interval_yields_false_positives_at_edges() {
        // Figure 6's complaint: data dense in an interval makes the RBF
        // boundary hug the dense middle, flagging healthy extremes.
        let mut points: Vec<Vec<f64>> = Vec::new();
        for i in 0..50 {
            points.push(vec![100.0 + (i % 5) as f64 * 0.02]);
        }
        points.push(vec![101.5]);
        points.push(vec![102.0]);
        let model = OneClassSvm::fit(&points, 0.1, 2.0).unwrap();
        assert!(
            model.is_outlier(&[101.5]) || model.is_outlier(&[102.0]),
            "sparse healthy points at the high end get flagged"
        );
    }

    #[test]
    fn parameter_validation() {
        let points = vec![vec![1.0], vec![2.0]];
        assert!(OneClassSvm::fit(&points, 0.0, 1.0).is_err());
        assert!(OneClassSvm::fit(&points, 1.5, 1.0).is_err());
        assert!(OneClassSvm::fit(&points, 0.5, 0.0).is_err());
        assert!(OneClassSvm::fit(&[vec![1.0]], 0.5, 1.0).is_err());
        assert!(OneClassSvm::fit(&[vec![1.0], vec![1.0, 2.0]], 0.5, 1.0).is_err());
    }

    #[test]
    fn decision_is_continuous_in_input() {
        let points = cluster_with_outlier();
        let model = OneClassSvm::fit(&points, 0.05, 0.5).unwrap();
        let d1 = model.decision(&[10.0]);
        let d2 = model.decision(&[10.001]);
        assert!((d1 - d2).abs() < 1e-3);
    }
}

//! Empirical cumulative distribution functions.

use crate::sample::Sample;

/// Empirical CDF of a sample.
///
/// The CDF is the right-continuous step function
/// `F(x) = |{ v in sample : v <= x }| / n`. The paper's criteria and defect
/// filtering (Section 3.4) operate entirely in this distribution space
/// instead of on average metrics, which is what gives the criteria their
/// clear-cut margins.
///
/// # Examples
///
/// ```
/// use anubis_metrics::{Ecdf, Sample};
///
/// let sample = Sample::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
/// let cdf = Ecdf::new(&sample);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of `sample`.
    pub fn new(sample: &Sample) -> Self {
        Self {
            sorted: sample.sorted().to_vec(),
        }
    }

    /// Builds an ECDF from an already-sorted support. The caller (the
    /// [`crate::EcdfSketch`] collapse path) guarantees `sorted` is ascending
    /// in [`f64::total_cmp`] order — the same order [`Sample`] sorts with.
    pub(crate) fn from_sorted(sorted: Vec<f64>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()));
        Self { sorted }
    }

    /// Number of underlying measurements.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no support points (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x)`, the fraction of measurements `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of values <= x because the
        // predicate `v <= x` is monotone over the sorted slice.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The quantile function (generalized inverse CDF) for `p` in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Smallest support point.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest support point.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted support points (with duplicates), i.e. the underlying
    /// measurements.
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// Sorted support points with duplicates removed, i.e. the breakpoints
    /// of the step function.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut points = Vec::new();
        self.breakpoints_into(&mut points);
        points
    }

    /// [`Ecdf::breakpoints`] writing into a caller-owned buffer, so hot
    /// integration loops reuse one allocation across calls.
    pub fn breakpoints_into(&self, points: &mut Vec<f64>) {
        points.clear();
        points.extend_from_slice(&self.sorted);
        points.dedup();
    }

    /// Merges the breakpoints of two ECDFs into one ascending, deduplicated
    /// grid — the integration grid for the CDF-space distances.
    pub fn merged_breakpoints(&self, other: &Ecdf) -> Vec<f64> {
        let mut merged = Vec::new();
        self.merged_breakpoints_into(other, &mut merged);
        merged
    }

    /// [`Ecdf::merged_breakpoints`] writing into a caller-owned buffer, so
    /// the Eq. (2) integration path reuses one grid allocation per pair.
    pub fn merged_breakpoints_into(&self, other: &Ecdf, merged: &mut Vec<f64>) {
        merged.clear();
        merged.reserve(self.sorted.len() + other.sorted.len());
        let (a, b) = (&self.sorted, &other.sorted);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x <= y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!("loop condition guarantees one side remains"),
            };
            if merged.last() != Some(&next) {
                merged.push(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;

    fn ecdf(values: &[f64]) -> Ecdf {
        Ecdf::new(&Sample::new(values.to_vec()).unwrap())
    }

    #[test]
    fn step_function_semantics() {
        let cdf = ecdf(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.5), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.999), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let cdf = ecdf(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.26), 20.0);
        assert_eq!(cdf.quantile(0.5), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
    }

    #[test]
    fn breakpoints_dedup() {
        let cdf = ecdf(&[2.0, 1.0, 2.0, 3.0]);
        assert_eq!(cdf.breakpoints(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn merged_breakpoints_are_sorted_and_unique() {
        let a = ecdf(&[1.0, 3.0, 5.0]);
        let b = ecdf(&[2.0, 3.0, 6.0]);
        assert_eq!(a.merged_breakpoints(&b), vec![1.0, 2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn merged_breakpoints_with_self() {
        let a = ecdf(&[1.0, 2.0]);
        assert_eq!(a.merged_breakpoints(&a), vec![1.0, 2.0]);
    }

    #[test]
    fn scalar_sample_cdf() {
        let cdf = ecdf(&[7.0]);
        assert_eq!(cdf.eval(6.9), 0.0);
        assert_eq!(cdf.eval(7.0), 1.0);
        assert_eq!(cdf.min(), 7.0);
        assert_eq!(cdf.max(), 7.0);
    }
}

//! Classical seasonal decomposition by moving averages.
//!
//! Appendix B of the paper searches for warmup/measurement steps by first
//! computing the cycle period of a benchmark's step-throughput series "using
//! classical seasonal decomposition by moving averages" (the
//! `statsmodels.seasonal_decompose` approach) and then comparing cycles for
//! self-similarity. This module provides that substrate: period detection by
//! autocorrelation and the additive trend/seasonal/residual split.

use crate::error::{MetricsError, Result};
use crate::stats;

/// Result of an additive seasonal decomposition `value = trend + seasonal +
/// residual`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalDecomposition {
    /// Centered-moving-average trend; `None` at the edges where the window
    /// does not fit.
    pub trend: Vec<Option<f64>>,
    /// Zero-mean seasonal component, one value per input position.
    pub seasonal: Vec<f64>,
    /// Residual `value − trend − seasonal`; `None` where the trend is.
    pub residual: Vec<Option<f64>>,
    /// Period used for the decomposition.
    pub period: usize,
}

impl SeasonalDecomposition {
    /// Strength of seasonality in `[0, 1]`: `1 − Var(residual) /
    /// Var(seasonal + residual)` (Hyndman's FS statistic), 0 when
    /// undefined.
    pub fn seasonal_strength(&self) -> f64 {
        let mut resid = Vec::new();
        let mut detrended = Vec::new();
        for (i, r) in self.residual.iter().enumerate() {
            if let Some(r) = r {
                resid.push(*r);
                detrended.push(*r + self.seasonal[i]);
            }
        }
        let var_detrended = stats::variance(&detrended);
        if var_detrended == 0.0 {
            return 0.0;
        }
        (1.0 - stats::variance(&resid) / var_detrended).clamp(0.0, 1.0)
    }
}

/// Detects the dominant cycle period of a series by autocorrelation.
///
/// Scans lags `2..=max_period` and returns the lag with the highest
/// autocorrelation that is also a local maximum and exceeds
/// `min_correlation`. Returns `None` when no credible period exists (the
/// series is aperiodic noise or a flat line).
pub fn detect_period(values: &[f64], max_period: usize, min_correlation: f64) -> Option<usize> {
    if values.len() < 6 {
        return None;
    }
    let max_period = max_period.min(values.len() / 2);
    if max_period < 2 {
        return None;
    }
    let acf: Vec<f64> = (0..=max_period)
        .map(|lag| stats::autocorrelation(values, lag))
        .collect();
    let mut best: Option<(usize, f64)> = None;
    for lag in 2..=max_period {
        let left = acf[lag - 1];
        let right = if lag < max_period {
            acf[lag + 1]
        } else {
            f64::NEG_INFINITY
        };
        let is_local_max = acf[lag] >= left && acf[lag] >= right;
        if is_local_max && acf[lag] >= min_correlation {
            match best {
                Some((_, b)) if acf[lag] <= b => {}
                _ => best = Some((lag, acf[lag])),
            }
        }
    }
    best.map(|(lag, _)| lag)
}

/// Additive seasonal decomposition with a known period.
///
/// Requires at least two full periods of data and `period >= 2`.
pub fn decompose(values: &[f64], period: usize) -> Result<SeasonalDecomposition> {
    if period < 2 {
        return Err(MetricsError::InvalidParameter {
            name: "period",
            message: format!("period {period} must be at least 2"),
        });
    }
    if values.len() < 2 * period {
        return Err(MetricsError::InsufficientData {
            required: 2 * period,
            actual: values.len(),
        });
    }
    let trend = stats::centered_moving_average(values, period);

    // Phase-wise means of the detrended series.
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_count = vec![0usize; period];
    for (i, t) in trend.iter().enumerate() {
        if let Some(t) = t {
            phase_sum[i % period] += values[i] - t;
            phase_count[i % period] += 1;
        }
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Center the seasonal component so it carries no level.
    let grand = stats::mean(&phase_mean);
    for m in &mut phase_mean {
        *m -= grand;
    }

    let seasonal: Vec<f64> = (0..values.len()).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<Option<f64>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| trend[i].map(|t| v - t - seasonal[i]))
        .collect();
    Ok(SeasonalDecomposition {
        trend,
        seasonal,
        residual,
        period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_series(n: usize, period: usize, amplitude: f64, level: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                level + amplitude * (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn detects_sine_period() {
        let series = periodic_series(240, 12, 5.0, 100.0);
        assert_eq!(detect_period(&series, 40, 0.3), Some(12));
    }

    #[test]
    fn detects_sawtooth_period() {
        let series: Vec<f64> = (0..300).map(|i| 100.0 + (i % 7) as f64).collect();
        assert_eq!(detect_period(&series, 30, 0.3), Some(7));
    }

    #[test]
    fn no_period_in_flat_or_short_series() {
        assert_eq!(detect_period(&[5.0; 100], 20, 0.3), None);
        assert_eq!(detect_period(&[1.0, 2.0, 3.0], 20, 0.3), None);
    }

    #[test]
    fn no_period_in_trend_only_series() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // A pure trend has slowly decaying ACF with no local max above lag 2;
        // accept either None or a large-lag artefact, but never a small
        // confident period.
        if let Some(p) = detect_period(&series, 20, 0.9) {
            assert!(p >= 2);
        }
    }

    #[test]
    fn decompose_recovers_components() {
        let period = 10;
        let series = periodic_series(200, period, 3.0, 50.0);
        let d = decompose(&series, period).unwrap();
        assert_eq!(d.period, period);
        // Trend should hover near the level wherever defined.
        for t in d.trend.iter().flatten() {
            assert!((t - 50.0).abs() < 0.5, "trend {t}");
        }
        // Seasonal amplitude should be close to the sine amplitude.
        let max_seasonal = d.seasonal.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            (max_seasonal - 3.0).abs() < 0.5,
            "seasonal max {max_seasonal}"
        );
        // Residuals should be small.
        for r in d.residual.iter().flatten() {
            assert!(r.abs() < 0.75, "residual {r}");
        }
        assert!(d.seasonal_strength() > 0.9);
    }

    #[test]
    fn decompose_validates_inputs() {
        assert!(decompose(&[1.0; 10], 1).is_err());
        assert!(decompose(&[1.0; 10], 6).is_err());
    }

    #[test]
    fn seasonal_component_is_zero_mean() {
        let series = periodic_series(120, 8, 2.0, 10.0);
        let d = decompose(&series, 8).unwrap();
        let mean: f64 = d.seasonal[..8].iter().sum::<f64>() / 8.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn noise_has_low_seasonal_strength() {
        // Deterministic pseudo-noise with no period.
        let series: Vec<f64> = (0..200)
            .map(|i| {
                let x = (i as f64 * 12.9898).sin() * 43758.5453;
                100.0 + (x - x.floor())
            })
            .collect();
        let d = decompose(&series, 10).unwrap();
        assert!(
            d.seasonal_strength() < 0.5,
            "strength {}",
            d.seasonal_strength()
        );
    }
}

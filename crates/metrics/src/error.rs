//! Error types shared by the statistics substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MetricsError>;

/// Errors raised by the statistics substrate.
///
/// Every fallible entry point in this crate returns [`MetricsError`] instead
/// of panicking, so callers (the Validator, the Selector, the simulators) can
/// surface malformed measurements as validation failures rather than crashes.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// A sample with zero measurements was supplied where at least one value
    /// is required.
    EmptySample,
    /// A measurement was NaN or infinite.
    NonFinite {
        /// Position of the offending measurement in its input.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A measurement was negative where only non-negative metrics (latency,
    /// throughput, bandwidth) are meaningful.
    NegativeValue {
        /// Position of the offending measurement in its input.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An algorithm needs at least `required` data points but only `actual`
    /// were supplied.
    InsufficientData {
        /// Minimum number of data points the algorithm needs.
        required: usize,
        /// Number of data points actually supplied.
        actual: usize,
    },
    /// Input vectors that must share a dimension did not.
    DimensionMismatch {
        /// Dimension the first input established.
        expected: usize,
        /// Dimension of the mismatching input.
        actual: usize,
    },
    /// A tuning parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Why the supplied value is invalid.
        message: String,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Which algorithm gave up.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySample => write!(f, "sample contains no measurements"),
            Self::NonFinite { index, value } => {
                write!(f, "non-finite measurement {value} at index {index}")
            }
            Self::NegativeValue { index, value } => {
                write!(f, "negative measurement {value} at index {index}")
            }
            Self::InsufficientData { required, actual } => {
                write!(f, "need at least {required} data points, got {actual}")
            }
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Self::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} did not converge within {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(MetricsError, &str)> = vec![
            (MetricsError::EmptySample, "no measurements"),
            (
                MetricsError::NonFinite {
                    index: 3,
                    value: f64::NAN,
                },
                "index 3",
            ),
            (
                MetricsError::NegativeValue {
                    index: 1,
                    value: -2.0,
                },
                "-2",
            ),
            (
                MetricsError::InsufficientData {
                    required: 4,
                    actual: 1,
                },
                "at least 4",
            ),
            (
                MetricsError::DimensionMismatch {
                    expected: 2,
                    actual: 5,
                },
                "expected 2",
            ),
            (
                MetricsError::InvalidParameter {
                    name: "k",
                    message: "must be > 0".into(),
                },
                "`k`",
            ),
            (
                MetricsError::NoConvergence {
                    algorithm: "kmeans",
                    iterations: 10,
                },
                "kmeans",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&MetricsError::EmptySample);
    }
}

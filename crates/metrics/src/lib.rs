//! Statistics substrate for the ANUBIS proactive-validation system.
//!
//! This crate provides the mathematical core that the rest of the workspace
//! builds on:
//!
//! - [`Sample`]: a validated container for benchmark measurements (a single
//!   value from a micro-benchmark, or a step-throughput time series from an
//!   end-to-end benchmark).
//! - [`Ecdf`]: the empirical cumulative distribution function of a sample.
//! - [`EcdfSketch`]: an append-only, mergeable ECDF accumulator for
//!   incremental criteria refreshes (amortized `O(log n)` append,
//!   `O(n + m)` merge without re-sorting).
//! - [`distance`]: the paper's Eq. (2) CDF-space distance, Eq. (3)
//!   similarity, and Eq. (4) one-sided distance used for online defect
//!   filtering.
//! - [`outlier`]: the baseline outlier-detection methods the paper compares
//!   against (IQR fences, k-means, Local Outlier Factor, one-class SVM).
//! - [`seasonal`]: classical seasonal decomposition by moving averages and
//!   period detection, the substrate for Appendix B's benchmark-parameter
//!   search.
//! - [`stats`]: descriptive statistics shared by everything above.
//!
//! All algorithms are deterministic given a seed and implemented in safe
//! Rust.

pub mod distance;
pub mod ecdf;
pub mod error;
pub mod json;
pub mod outlier;
pub mod sample;
pub mod seasonal;
pub mod sketch;
pub mod stats;

pub use distance::{
    cdf_distance, cdf_distance_ecdf, extend_similarity_matrix, mean_pairwise_similarity,
    one_sided_distance, one_sided_distance_ecdf, one_sided_similarity, pairwise_similarity_matrix,
    pairwise_similarity_matrix_threads, similarity, similarity_ecdf, Direction,
};
pub use ecdf::Ecdf;
pub use error::{MetricsError, Result};
pub use sample::Sample;
pub use sketch::EcdfSketch;

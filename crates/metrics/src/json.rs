//! Minimal JSON serialization over `serde`.
//!
//! The production SuperBench emits benchmark results and traces as
//! JSON/JSON-lines for downstream analysis. The sanctioned dependency set
//! includes `serde` but not `serde_json`, so this module implements a
//! small, self-contained `serde::Serializer` that renders any `Serialize`
//! value to compact JSON. It supports the full serde data model except
//! non-string map keys (rejected with an error, as JSON requires string
//! keys); non-finite floats serialize as `null` (matching `serde_json`).

use serde::ser::{self, Serialize};
use std::fmt::{self, Write as _};

/// Error raised during JSON serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(message: T) -> Self {
        Self(message.to_string())
    }
}

/// Serializes any `Serialize` value to a compact JSON string.
///
/// # Examples
///
/// ```
/// use anubis_metrics::json::to_json;
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Row<'a> { name: &'a str, value: f64 }
///
/// let text = to_json(&Row { name: "GPU GEMM", value: 298.5 }).unwrap();
/// assert_eq!(text, r#"{"name":"GPU GEMM","value":298.5}"#);
/// ```
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    to_json_into(value, &mut out)?;
    Ok(out)
}

/// Serializes any `Serialize` value as compact JSON *appended* to `out`.
///
/// This is the allocation-free entry point for hot serialization loops:
/// the caller owns (and typically pools, via `anubis-arena`) the output
/// buffer, and the serializer itself performs no heap allocation — floats
/// and integers render through `fmt::Write` directly into `out`. On error
/// `out` may hold a partial rendering; callers that batch rows should
/// truncate back to their last known-good length.
pub fn to_json_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), JsonError> {
    value.serialize(Serializer { out })
}

fn push_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

struct Serializer<'a> {
    out: &'a mut String,
}

/// Shared state for sequence-like compounds.
pub struct SeqSerializer<'a> {
    out: &'a mut String,
    first: bool,
    close: &'static str,
}

/// Shared state for map/struct compounds.
pub struct MapSerializer<'a> {
    out: &'a mut String,
    first: bool,
    close: &'static str,
}

impl SeqSerializer<'_> {
    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(Serializer { out: self.out })
    }

    fn finish(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl MapSerializer<'_> {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_escaped(self.out, key);
        self.out.push(':');
    }

    fn finish(self) -> Result<(), JsonError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

macro_rules! serialize_integer {
    ($($method:ident: $ty:ty),*) => {
        $(fn $method(self, v: $ty) -> Result<(), JsonError> {
            let _ = write!(self.out, "{v}");
            Ok(())
        })*
    };
}

impl<'a> ser::Serializer for Serializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = SeqSerializer<'a>;
    type SerializeTuple = SeqSerializer<'a>;
    type SerializeTupleStruct = SeqSerializer<'a>;
    type SerializeTupleVariant = SeqSerializer<'a>;
    type SerializeMap = MapSerializer<'a>;
    type SerializeStruct = MapSerializer<'a>;
    type SerializeStructVariant = MapSerializer<'a>;

    serialize_integer!(
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
    );

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        push_f64(self.out, f64::from(v));
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        push_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        push_escaped(self.out, v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        push_escaped(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for byte in v {
            ser::SerializeSeq::serialize_element(&mut seq, byte)?;
        }
        ser::SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        push_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push(':');
        value.serialize(Serializer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        self.out.push('[');
        Ok(SeqSerializer {
            out: self.out,
            first: true,
            close: "]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push_str(":[");
        Ok(SeqSerializer {
            out: self.out,
            first: true,
            close: "]}",
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        self.out.push('{');
        Ok(MapSerializer {
            out: self.out,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        self.out.push('{');
        Ok(MapSerializer {
            out: self.out,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        self.out.push('{');
        push_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(MapSerializer {
            out: self.out,
            first: true,
            close: "}}",
        })
    }
}

impl ser::SerializeSeq for SeqSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.element(value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTuple for SeqSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.element(value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for SeqSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.element(value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for SeqSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.element(value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

/// Serializes a map key: JSON requires strings, so only string-like keys
/// are accepted.
struct KeySerializer<'a> {
    out: &'a mut String,
}

impl<'a> ser::Serializer for KeySerializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = ser::Impossible<(), JsonError>;
    type SerializeTuple = ser::Impossible<(), JsonError>;
    type SerializeTupleStruct = ser::Impossible<(), JsonError>;
    type SerializeTupleVariant = ser::Impossible<(), JsonError>;
    type SerializeMap = ser::Impossible<(), JsonError>;
    type SerializeStruct = ser::Impossible<(), JsonError>;
    type SerializeStructVariant = ser::Impossible<(), JsonError>;

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        push_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        push_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        push_escaped(self.out, v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }

    fn serialize_bool(self, _v: bool) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "\"{v}\"");
        Ok(())
    }
    fn serialize_f32(self, _v: f32) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_f64(self, _v: f64) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, _value: &T) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        Err(ser::Error::custom("map keys must be strings"))
    }
}

impl ser::SerializeMap for MapSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        key.serialize(KeySerializer { out: self.out })?;
        self.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(Serializer { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeStruct for MapSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.key(key);
        value.serialize(Serializer { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for MapSerializer<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.key(key);
        value.serialize(Serializer { out: self.out })
    }
    fn end(self) -> Result<(), JsonError> {
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Tuple(u32, u32),
        Struct { a: bool },
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&true).unwrap(), "true");
        assert_eq!(to_json(&42i32).unwrap(), "42");
        assert_eq!(to_json(&-7i64).unwrap(), "-7");
        assert_eq!(to_json(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_json(&f64::NAN).unwrap(), "null");
        assert_eq!(to_json("hi").unwrap(), "\"hi\"");
        assert_eq!(to_json(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(to_json(&Some(3u8)).unwrap(), "3");
        assert_eq!(to_json(&()).unwrap(), "null");
    }

    #[test]
    fn to_json_into_appends_to_the_caller_buffer() {
        let mut out = String::from("row: ");
        to_json_into(&vec![1u8, 2], &mut out).unwrap();
        assert_eq!(out, "row: [1,2]");
        // A recycled (cleared) buffer renders the same bytes as to_json.
        out.clear();
        to_json_into(&(42u64, "x\ny"), &mut out).unwrap();
        assert_eq!(out, to_json(&(42u64, "x\ny")).unwrap());
    }

    #[test]
    fn char_map_keys_are_escaped() {
        struct CharKeyed;
        impl Serialize for CharKeyed {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeMap;
                let mut m = s.serialize_map(Some(1))?;
                m.serialize_key(&'"')?;
                m.serialize_value(&1u8)?;
                m.end()
            }
        }
        assert_eq!(to_json(&CharKeyed).unwrap(), r#"{"\"":1}"#);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_json("a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(to_json("\u{0001}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn sequences_and_maps() {
        assert_eq!(to_json(&vec![1, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_json(&(1, "x")).unwrap(), "[1,\"x\"]");
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 1.0f64);
        assert_eq!(to_json(&map).unwrap(), "{\"k\":1}");
        let mut int_keys = BTreeMap::new();
        int_keys.insert(7u32, "v");
        assert_eq!(to_json(&int_keys).unwrap(), "{\"7\":\"v\"}");
    }

    #[test]
    fn enums() {
        assert_eq!(to_json(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_json(&Kind::Newtype(5)).unwrap(), "{\"Newtype\":5}");
        assert_eq!(to_json(&Kind::Tuple(1, 2)).unwrap(), "{\"Tuple\":[1,2]}");
        assert_eq!(
            to_json(&Kind::Struct { a: false }).unwrap(),
            "{\"Struct\":{\"a\":false}}"
        );
    }

    #[test]
    fn nested_structures() {
        #[derive(Serialize)]
        struct Inner {
            values: Vec<f64>,
        }
        #[derive(Serialize)]
        struct Outer {
            name: String,
            inner: Inner,
            tags: Option<Vec<String>>,
        }
        let outer = Outer {
            name: "node-01".into(),
            inner: Inner {
                values: vec![1.5, 2.0],
            },
            tags: Some(vec!["a".into()]),
        };
        assert_eq!(
            to_json(&outer).unwrap(),
            r#"{"name":"node-01","inner":{"values":[1.5,2]},"tags":["a"]}"#
        );
    }

    #[test]
    fn float_keys_are_rejected() {
        let mut map = std::collections::HashMap::new();
        map.insert(1.5f64.to_bits(), 1u8); // u64 keys fine
        assert!(to_json(&map).is_ok());
        // A map with an actual float key type fails.
        struct FloatKeyed;
        impl Serialize for FloatKeyed {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeMap;
                let mut m = s.serialize_map(Some(1))?;
                m.serialize_key(&1.5f64)?;
                m.serialize_value(&1u8)?;
                m.end()
            }
        }
        assert!(to_json(&FloatKeyed).is_err());
    }
}

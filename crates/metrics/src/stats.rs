//! Descriptive statistics shared across the workspace.
//!
//! These helpers operate on raw slices so the simulators can use them without
//! constructing a [`crate::Sample`]. All functions are total: they return 0
//! (or an empty vector) for degenerate inputs rather than panicking, except
//! where documented.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Quantile of an **ascending-sorted** slice with linear interpolation.
///
/// `q` is clamped to `[0, 1]`. Returns 0 for an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let frac = pos - lower as f64;
        sorted[lower] * (1.0 - frac) + sorted[upper] * frac
    }
}

/// Quantile of an arbitrary-order slice (sorts a copy).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// Median of an arbitrary-order slice.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Centered moving average with the given window.
///
/// Positions where the full window does not fit yield `None`, mirroring the
/// classical seasonal-decomposition convention. Even windows use the
/// standard 2×w centered average.
pub fn centered_moving_average(values: &[f64], window: usize) -> Vec<Option<f64>> {
    let n = values.len();
    let mut out = vec![None; n];
    if window == 0 || window > n {
        return out;
    }
    if window % 2 == 1 {
        let half = window / 2;
        for i in half..n - half {
            let slice = &values[i - half..=i + half];
            out[i] = Some(mean(slice));
        }
    } else {
        // Even window: average of two staggered windows (classic 2xW MA).
        let half = window / 2;
        for i in half..n.saturating_sub(half) {
            let first = mean(&values[i - half..i + half]);
            let second = mean(&values[i - half + 1..=i + half]);
            out[i] = Some(0.5 * (first + second));
        }
    }
    out
}

/// Lag-`k` sample autocorrelation; 0 when undefined.
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    let n = values.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let m = mean(values);
    let denom: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (values[i] - m) * (values[i + lag] - m))
        .sum();
    num / denom
}

/// Pearson correlation between two equal-length slices; 0 when undefined.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        let (xa, xb) = (a[i] - ma, b[i] - mb);
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da.sqrt() * db.sqrt())
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices differ in length; callers in this workspace always
/// compare same-dimension vectors.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector dimensions must match");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Resamples a series to `target_len` points by linear interpolation over
/// the index axis, used to compare series of different lengths in vector
/// space (the k-means baseline).
pub fn resample_linear(values: &[f64], target_len: usize) -> Vec<f64> {
    if values.is_empty() || target_len == 0 {
        return Vec::new();
    }
    if values.len() == 1 {
        return vec![values[0]; target_len];
    }
    if target_len == 1 {
        return vec![mean(values)];
    }
    let scale = (values.len() - 1) as f64 / (target_len - 1) as f64;
    (0..target_len)
        .map(|i| {
            let pos = i as f64 * scale;
            let lower = pos.floor() as usize;
            let upper = (lower + 1).min(values.len() - 1);
            let frac = pos - lower as f64;
            values[lower] * (1.0 - frac) + values[upper] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!(
            (variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 4.571428571428571).abs() < 1e-12
        );
    }

    #[test]
    fn quantiles() {
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[1.0, 3.0], 0.5), 2.0);
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.0), 1.0);
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 1.0), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn moving_average_odd_window() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ma = centered_moving_average(&values, 3);
        assert_eq!(ma[0], None);
        assert_eq!(ma[1], Some(2.0));
        assert_eq!(ma[2], Some(3.0));
        assert_eq!(ma[3], Some(4.0));
        assert_eq!(ma[4], None);
    }

    #[test]
    fn moving_average_even_window() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ma = centered_moving_average(&values, 4);
        // Classic 2x4 MA: position 2 averages windows [0..4) and [1..5).
        let expected = 0.5 * ((1.0 + 2.0 + 3.0 + 4.0) / 4.0 + (2.0 + 3.0 + 4.0 + 5.0) / 4.0);
        assert_eq!(ma[2], Some(expected));
        assert_eq!(ma[0], None);
    }

    #[test]
    fn moving_average_degenerate_windows() {
        assert!(centered_moving_average(&[1.0, 2.0], 0)
            .iter()
            .all(Option::is_none));
        assert!(centered_moving_average(&[1.0, 2.0], 5)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        let n = 200;
        let period = 10usize;
        let values: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let at_period = autocorrelation(&values, period);
        let off_period = autocorrelation(&values, period / 2);
        assert!(
            at_period > 0.9,
            "autocorrelation at period should be high: {at_period}"
        );
        assert!(
            off_period < 0.0,
            "half-period autocorrelation should be negative: {off_period}"
        );
    }

    #[test]
    fn autocorrelation_degenerate() {
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn pearson_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0]), 0.0);
    }

    #[test]
    fn euclidean_distances() {
        assert_eq!(squared_euclidean(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
    }

    #[test]
    fn resample_shapes() {
        assert_eq!(resample_linear(&[1.0, 2.0, 3.0], 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(resample_linear(&[1.0, 3.0], 3), vec![1.0, 2.0, 3.0]);
        assert_eq!(resample_linear(&[5.0], 4), vec![5.0; 4]);
        assert_eq!(resample_linear(&[], 4), Vec::<f64>::new());
        assert_eq!(resample_linear(&[1.0, 2.0], 1), vec![1.5]);
    }
}

//! Benchmark measurement samples.

use crate::error::{MetricsError, Result};
use crate::stats;

/// A validated set of benchmark measurements.
///
/// A `Sample` is the unit the Validator reasons about: either a single value
/// from a micro-benchmark, or a series of per-step performance numbers
/// recorded by an end-to-end benchmark.  Construction validates that every
/// measurement is finite and non-negative (latency, throughput and bandwidth
/// metrics are all non-negative), which lets every downstream algorithm
/// assume well-formed data.
///
/// The measurement order is preserved in [`Sample::values`] (needed by the
/// seasonal decomposition in Appendix B) while a sorted copy is cached for
/// the CDF-space algorithms.
///
/// # Examples
///
/// ```
/// use anubis_metrics::Sample;
///
/// let sample = Sample::new(vec![10.0, 12.0, 11.0]).unwrap();
/// assert_eq!(sample.len(), 3);
/// assert_eq!(sample.min(), 10.0);
/// assert_eq!(sample.max(), 12.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    values: Vec<f64>,
    sorted: Vec<f64>,
}

impl Sample {
    /// Creates a sample from measurements in observation order.
    ///
    /// Returns [`MetricsError::EmptySample`] for empty input,
    /// [`MetricsError::NonFinite`] / [`MetricsError::NegativeValue`] when a
    /// measurement is malformed.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(MetricsError::EmptySample);
        }
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(MetricsError::NonFinite { index, value });
            }
            if value < 0.0 {
                return Err(MetricsError::NegativeValue { index, value });
            }
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        Ok(Self { values, sorted })
    }

    /// Creates a single-measurement sample, the shape produced by most
    /// micro-benchmarks.
    pub fn scalar(value: f64) -> Result<Self> {
        Self::new(vec![value])
    }

    /// Measurements in original observation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Measurements in ascending order.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty (never true for a constructed `Sample`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest measurement.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest measurement.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Sample standard deviation (n-1 denominator; 0 for singletons).
    pub fn std_dev(&self) -> f64 {
        stats::std_dev(&self.values)
    }

    /// Median measurement.
    pub fn median(&self) -> f64 {
        stats::quantile_sorted(&self.sorted, 0.5)
    }

    /// Quantile with linear interpolation; `q` must be in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(MetricsError::InvalidParameter {
                name: "q",
                message: format!("quantile {q} outside [0, 1]"),
            });
        }
        Ok(stats::quantile_sorted(&self.sorted, q))
    }

    /// Coefficient of variation (`std_dev / mean`); 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.std_dev() / mean
        }
    }

    /// Returns the sub-sample covering `[start, end)` of the observation
    /// order, as used when trimming warmup steps.
    pub fn slice(&self, start: usize, end: usize) -> Result<Self> {
        if start >= end || end > self.values.len() {
            return Err(MetricsError::InvalidParameter {
                name: "range",
                message: format!(
                    "slice [{start}, {end}) invalid for sample of length {}",
                    self.values.len()
                ),
            });
        }
        Self::new(self.values[start..end].to_vec())
    }
}

impl serde::Serialize for Sample {
    /// Serializes as the plain measurement array (observation order) —
    /// the shape external tooling expects for benchmark results.
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        self.values.serialize(serializer)
    }
}

impl TryFrom<Vec<f64>> for Sample {
    type Error = MetricsError;

    fn try_from(values: Vec<f64>) -> Result<Self> {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Sample::new(vec![]), Err(MetricsError::EmptySample));
    }

    #[test]
    fn rejects_nan_and_infinite() {
        assert!(matches!(
            Sample::new(vec![1.0, f64::NAN]),
            Err(MetricsError::NonFinite { index: 1, .. })
        ));
        assert!(matches!(
            Sample::new(vec![f64::INFINITY]),
            Err(MetricsError::NonFinite { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_negative() {
        assert!(matches!(
            Sample::new(vec![3.0, -0.5]),
            Err(MetricsError::NegativeValue { index: 1, .. })
        ));
    }

    #[test]
    fn preserves_observation_order_and_sorts() {
        let s = Sample::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.values(), &[3.0, 1.0, 2.0]);
        assert_eq!(s.sorted(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_sample() {
        let s = Sample::scalar(42.0).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn descriptive_statistics() {
        let s = Sample::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.median() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Sample::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(1.0).unwrap(), 4.0);
        assert!((s.quantile(0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(s.quantile(1.5).is_err());
    }

    #[test]
    fn slice_trims_warmup() {
        let s = Sample::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let trimmed = s.slice(1, 3).unwrap();
        assert_eq!(trimmed.values(), &[20.0, 30.0]);
        assert!(s.slice(3, 3).is_err());
        assert!(s.slice(0, 5).is_err());
    }

    #[test]
    fn serializes_as_value_array() {
        let s = Sample::new(vec![3.0, 1.0, 2.5]).unwrap();
        assert_eq!(crate::json::to_json(&s).unwrap(), "[3,1,2.5]");
    }

    #[test]
    fn coefficient_of_variation_handles_zero_mean() {
        let s = Sample::new(vec![0.0, 0.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }
}

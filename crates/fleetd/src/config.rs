//! Configuration of the fleetd control plane.

use anubis_traces::{AllocationConfig, IncidentStreamConfig};

/// All knobs of a fleetd run. Every field is deterministic input: two
/// runs with equal configs produce byte-identical summaries and tick
/// traces at any `threads` value and any shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetdConfig {
    /// Fleet size in nodes.
    pub nodes: u32,
    /// Worker shard count; shard `s` owns a contiguous node range (see
    /// `anubis_traces::shard_ranges`). Results never depend on it.
    pub shards: u32,
    /// Ticks to run.
    pub ticks: u32,
    /// Virtual hours per tick.
    pub tick_hours: f64,
    /// Fleet seed; every stream (per-node incidents, per-node benchmark
    /// noise, job arrivals) derives from it.
    pub seed: u64,
    /// Worker threads for the shard phase (`0` = `ANUBIS_THREADS` /
    /// hardware default). Results never depend on it.
    pub threads: usize,

    /// Mean time to a fresh node's first incident, in hours. The default
    /// is stress-compressed relative to the paper's 719.4 h so a
    /// 500-tick service run exercises the whole lifecycle loop.
    pub base_mtbi_hours: f64,
    /// Hazard growth per accumulated incident.
    pub wear_factor: f64,
    /// Accumulated-incident count beyond which the hazard stops growing.
    pub wear_cap: u32,
    /// Log-scale spread of per-node frailty (lemon nodes).
    pub frailty_sigma: f64,

    /// Risk horizon the per-shard Selector loop scores against, in
    /// hours.
    pub horizon_hours: f64,
    /// Incident probability over the horizon above which a healthy node
    /// is flagged suspect.
    pub risk_threshold: f64,
    /// Ticks a node is exempt from re-flagging after passing validation
    /// or returning from repair.
    pub cooldown_ticks: u32,
    /// Global cap on validations started per tick (`0` = auto:
    /// `max(8, nodes / 64)`).
    pub validations_per_tick: u32,

    /// Nominal benchmark score of an undamaged node.
    pub base_score: f64,
    /// Relative measurement noise of one benchmark run.
    pub measurement_sigma: f64,
    /// Probability an incident leaves permanent hidden degradation.
    pub damage_probability: f64,
    /// Smallest degradation fraction an incident can leave.
    pub damage_min: f64,
    /// Largest degradation fraction an incident can leave.
    pub damage_max: f64,

    /// Shard-sketch merge / criteria-refresh period, in ticks.
    pub merge_every_ticks: u32,
    /// Defect criteria quantile: a validation score below this quantile
    /// of the merged fleet distribution confirms a defect.
    pub defect_quantile: f64,
    /// Fleet samples required before criteria are applied (build-out
    /// phase passes everything).
    pub min_criteria_samples: usize,

    /// Ticks a quarantined node spends in repair.
    pub repair_ticks: u32,
    /// Target fraction of fleet capacity consumed by jobs.
    pub target_utilization: f64,
    /// Pending-job queue cap; arrivals beyond it are dropped (counted).
    pub max_pending_jobs: usize,
}

impl Default for FleetdConfig {
    fn default() -> Self {
        Self {
            nodes: 2000,
            shards: 8,
            ticks: 50,
            tick_hours: 1.0,
            seed: 42,
            threads: 0,
            base_mtbi_hours: 150.0,
            wear_factor: 1.3,
            wear_cap: 12,
            frailty_sigma: 0.8,
            horizon_hours: 24.0,
            risk_threshold: 0.25,
            cooldown_ticks: 24,
            validations_per_tick: 0,
            base_score: 100.0,
            measurement_sigma: 0.03,
            damage_probability: 0.35,
            damage_min: 0.05,
            damage_max: 0.25,
            merge_every_ticks: 10,
            defect_quantile: 0.05,
            min_criteria_samples: 64,
            repair_ticks: 12,
            target_utilization: 0.9,
            max_pending_jobs: 100_000,
        }
    }
}

impl FleetdConfig {
    /// The resolved validations-per-tick cap.
    pub fn validation_cap(&self) -> u32 {
        if self.validations_per_tick == 0 {
            (self.nodes / 64).max(8)
        } else {
            self.validations_per_tick
        }
    }

    /// The per-node incident-stream parameters.
    pub fn incident_stream(&self) -> IncidentStreamConfig {
        IncidentStreamConfig {
            base_mtbi_hours: self.base_mtbi_hours,
            wear_factor: self.wear_factor,
            wear_cap: self.wear_cap,
            frailty_sigma: self.frailty_sigma,
            seed: self.seed,
        }
    }

    /// The coordinator-side job-arrival parameters: Poisson arrivals
    /// sized so steady-state demand is `target_utilization` of fleet
    /// capacity under the default size/duration mix.
    pub fn allocation(&self) -> AllocationConfig {
        let mut cfg = AllocationConfig::stressed(self.nodes.max(1));
        // Mean job ≈ 3.89 nodes × ~34 h under the stressed mix; retarget
        // the arrival rate at the requested utilization.
        let node_hours_per_job = 3.89 * 34.0;
        let capacity_per_hour = f64::from(self.nodes.max(1));
        cfg.mean_interarrival_hours =
            node_hours_per_job / (self.target_utilization.max(1e-3) * capacity_per_hour);
        cfg.seed = self.seed ^ 0x5eed_a110_c000_0001;
        cfg
    }
}

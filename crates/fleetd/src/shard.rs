//! Per-shard validation workers.
//!
//! A [`ShardWorker`] owns everything about its contiguous node range
//! that the coordinator does not need for decisions: the streaming
//! incident source, per-node status covariates, hidden degradation, the
//! per-node benchmark-noise RNGs, and the shard's [`EcdfSketch`] of
//! validation scores. Each tick the worker runs the Validator/Selector
//! loop over its range — ingest incidents, score incident risk against
//! the horizon, execute the validations the coordinator scheduled — and
//! emits *proposals* ([`anubis_lifecycle::LifecycleEvent`]s per node)
//! instead of mutating lifecycle state itself: the coordinator owns the
//! [`anubis_lifecycle::LifecycleTable`] and applies proposals in fixed
//! shard order. That split (workers own data movement, the primary owns
//! decisions) is what keeps the whole service byte-reproducible.
//!
//! [`ShardWorker::tick`] is registered **arena-clean** with the A008
//! pass: its per-tick scratch comes from the shard's `anubis-arena` pool
//! and its persistent output buffers, never from direct allocation.

use crate::config::FleetdConfig;
use anubis_arena::Arena;
use anubis_hwsim::NoiseModel;
use anubis_lifecycle::{LifecycleEvent, NodeState};
use anubis_metrics::EcdfSketch;
use anubis_selector::NodeStatus;
use anubis_traces::{node_stream_seed, IncidentEvent, ShardIncidentSource};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// What one shard observed and proposes for one tick. The coordinator
/// reads it after the parallel shard phase; buffers persist across ticks
/// so the steady-state loop allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct ShardReport {
    /// Proposed lifecycle events, in ascending node order (at most one
    /// risk/verdict proposal per node, incidents first).
    pub proposals: Vec<(u32, LifecycleEvent)>,
    /// Incidents ingested this tick.
    pub incidents: usize,
    /// Benchmark samples appended to the shard sketch this tick.
    pub samples: usize,
}

impl ShardReport {
    /// Clears the report for the next tick, keeping buffer capacity.
    fn reset(&mut self) {
        self.proposals.clear();
        self.incidents = 0;
        self.samples = 0;
    }
}

/// One shard's worker state (see the module docs).
#[derive(Debug)]
pub struct ShardWorker {
    lo: u32,
    hi: u32,
    incidents: ShardIncidentSource,
    statuses: Vec<NodeStatus>,
    degradation: Vec<f64>,
    noise_rngs: Vec<ChaCha8Rng>,
    cooldown_until: Vec<u32>,
    sketch: EcdfSketch,
    noise: NoiseModel,
    events_pool: Arena<Vec<IncidentEvent>>,
    report: ShardReport,
    // Copied risk-model parameters (the shard never sees the full config
    // after construction).
    base_mtbi_hours: f64,
    wear_factor: f64,
    wear_cap: u32,
    damage_probability: f64,
    damage_min: f64,
    damage_max: f64,
    base_score: f64,
}

impl Clone for ShardWorker {
    /// Clones the full worker state with a *fresh* (empty) scratch pool —
    /// pooled buffers are reusable capacity, not state, so the clone is
    /// behaviorally identical.
    fn clone(&self) -> Self {
        Self {
            lo: self.lo,
            hi: self.hi,
            incidents: self.incidents.clone(),
            statuses: self.statuses.clone(),
            degradation: self.degradation.clone(),
            noise_rngs: self.noise_rngs.clone(),
            cooldown_until: self.cooldown_until.clone(),
            sketch: self.sketch.clone(),
            noise: self.noise,
            events_pool: Arena::new(),
            report: self.report.clone(),
            base_mtbi_hours: self.base_mtbi_hours,
            wear_factor: self.wear_factor,
            wear_cap: self.wear_cap,
            damage_probability: self.damage_probability,
            damage_min: self.damage_min,
            damage_max: self.damage_max,
            base_score: self.base_score,
        }
    }
}

/// Immutable per-tick inputs broadcast to every shard.
#[derive(Debug, Clone, Copy)]
pub struct TickContext {
    /// Tick index.
    pub tick: u32,
    /// Window start, virtual hours.
    pub t0: f64,
    /// Window end, virtual hours (events with `start_hour < t1` are
    /// ingested this tick).
    pub t1: f64,
    /// Risk horizon in hours.
    pub horizon_hours: f64,
    /// Incident probability over the horizon that flags a node suspect.
    pub risk_threshold: f64,
    /// Current fleet defect criteria (score floor), `None` during
    /// build-out.
    pub criteria_threshold: Option<f64>,
    /// Re-flag exemption after a passed validation or repair, in ticks.
    pub cooldown_ticks: u32,
}

impl ShardWorker {
    /// Creates the worker for one contiguous node range.
    pub fn new(config: &FleetdConfig, range: Range<u32>) -> Self {
        let stream = config.incident_stream();
        let n = range.len();
        let mut noise_rngs = Vec::with_capacity(n);
        for node in range.clone() {
            noise_rngs.push(ChaCha8Rng::seed_from_u64(node_stream_seed(
                config.seed,
                node,
                1,
            )));
        }
        Self {
            lo: range.start,
            hi: range.end,
            incidents: ShardIncidentSource::new(&stream, range),
            statuses: vec![NodeStatus::fresh(); n],
            degradation: vec![0.0; n],
            noise_rngs,
            cooldown_until: vec![0; n],
            sketch: EcdfSketch::new(),
            noise: NoiseModel::new(config.measurement_sigma),
            events_pool: Arena::new(),
            report: ShardReport::default(),
            base_mtbi_hours: config.base_mtbi_hours.max(1e-9),
            wear_factor: config.wear_factor,
            wear_cap: config.wear_cap,
            damage_probability: config.damage_probability,
            damage_min: config.damage_min,
            damage_max: config.damage_max,
            base_score: config.base_score,
        }
    }

    /// The node range this shard owns.
    pub fn range(&self) -> Range<u32> {
        self.lo..self.hi
    }

    /// Last tick's report.
    pub fn report(&self) -> &ShardReport {
        &self.report
    }

    /// The shard's cumulative validation-score sketch.
    pub fn sketch(&self) -> &EcdfSketch {
        &self.sketch
    }

    /// A node's current hidden degradation (test/diagnostic surface).
    pub fn degradation_of(&self, node: u32) -> f64 {
        node.checked_sub(self.lo)
            .and_then(|i| self.degradation.get(i as usize))
            .copied()
            .unwrap_or(0.0)
    }

    /// The observable incident probability of a node over `horizon`
    /// hours, from its recorded status covariates (the per-shard Selector
    /// scoring rule: wear-accelerated exponential hazard).
    fn risk(&self, index: usize, horizon: f64) -> f64 {
        let k = self.statuses[index].incident_count.min(self.wear_cap);
        let rate = self.wear_factor.powi(k as i32) / self.base_mtbi_hours;
        1.0 - (-rate * horizon).exp()
    }

    /// Runs one tick of the shard loop. `states` is the global lifecycle
    /// snapshot (indexed by node), `repaired` the globally-sorted list of
    /// nodes whose repair completed at the start of this tick.
    ///
    /// Registered arena-clean (A008): per-tick scratch comes from the
    /// shard's pool, outputs go to persistent buffers.
    pub fn tick(&mut self, ctx: &TickContext, states: &[NodeState], repaired: &[u32]) {
        self.report.reset();
        let first = repaired.partition_point(|&n| n < self.lo);
        let last = repaired.partition_point(|&n| n < self.hi);
        for &node in &repaired[first..last] {
            let i = (node - self.lo) as usize;
            self.degradation[i] = 0.0;
            self.statuses[i] = NodeStatus::fresh();
            self.cooldown_until[i] = ctx.tick.saturating_add(ctx.cooldown_ticks);
            self.incidents.reset_wear(node);
        }

        let mut events = self.events_pool.scope();
        for node in self.lo..self.hi {
            let i = (node - self.lo) as usize;
            events.clear();
            self.incidents.poll_node(node, ctx.t1, &mut events);
            let state = states[node as usize];
            for event in &*events {
                self.statuses[i].record_incident(event.category);
                if self.noise_rngs[i].random::<f64>() < self.damage_probability {
                    let damage = self.noise_rngs[i].random_range(self.damage_min..self.damage_max);
                    self.degradation[i] = (self.degradation[i] + damage).min(0.9);
                }
            }
            self.report.incidents += events.len();
            if state.in_service() {
                self.statuses[i].advance(ctx.t1 - ctx.t0);
            }
            // An incident under stress (serving a job or mid-validation)
            // confirms the defect outright.
            if !events.is_empty() && (state.is_busy() || state.is_validating()) {
                self.report
                    .proposals
                    .push((node, LifecycleEvent::IncidentObserved));
                continue;
            }
            if state.is_validating() {
                // Run the scheduled benchmark: nominal score shaved by
                // hidden degradation, under measurement noise.
                let factor = self.noise.factor(&mut self.noise_rngs[i]);
                let score = self.base_score * (1.0 - self.degradation[i]) * factor;
                self.sketch.append(score);
                self.report.samples += 1;
                let defective = ctx
                    .criteria_threshold
                    .is_some_and(|threshold| score < threshold);
                if defective {
                    self.report
                        .proposals
                        .push((node, LifecycleEvent::DefectConfirmed));
                } else {
                    self.cooldown_until[i] = ctx.tick.saturating_add(ctx.cooldown_ticks);
                    self.report
                        .proposals
                        .push((node, LifecycleEvent::ValidationPassed));
                }
                continue;
            }
            if state.is_healthy()
                && ctx.tick >= self.cooldown_until[i]
                && self.risk(i, ctx.horizon_hours) > ctx.risk_threshold
            {
                self.report
                    .proposals
                    .push((node, LifecycleEvent::RiskCrossed));
            }
        }
        anubis_obs::counter!("fleetd.shard.incidents", self.report.incidents as i64);
        anubis_obs::counter!("fleetd.shard.samples", self.report.samples as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_lifecycle::LifecycleTable;

    fn worker(nodes: u32) -> (FleetdConfig, ShardWorker) {
        let config = FleetdConfig {
            nodes,
            base_mtbi_hours: 30.0,
            ..FleetdConfig::default()
        };
        let shard = ShardWorker::new(&config, 0..nodes);
        (config, shard)
    }

    fn ctx(tick: u32, hours: f64) -> TickContext {
        TickContext {
            tick,
            t0: f64::from(tick) * hours,
            t1: f64::from(tick + 1) * hours,
            horizon_hours: 24.0,
            risk_threshold: 0.25,
            criteria_threshold: None,
            cooldown_ticks: 4,
        }
    }

    #[test]
    fn incidents_accumulate_and_risk_flags_suspects() {
        let (_, mut shard) = worker(32);
        let table = LifecycleTable::new(32);
        let mut incidents = 0;
        let mut flagged = 0;
        for t in 0..60 {
            shard.tick(&ctx(t, 4.0), table.states(), &[]);
            incidents += shard.report().incidents;
            flagged += shard
                .report()
                .proposals
                .iter()
                .filter(|(_, e)| *e == LifecycleEvent::RiskCrossed)
                .count();
        }
        assert!(incidents > 0, "stressed MTBI must produce incidents");
        assert!(
            flagged > 0,
            "accumulated wear must cross the risk threshold"
        );
    }

    #[test]
    fn validating_nodes_produce_samples_and_verdicts() {
        let (_, mut shard) = worker(8);
        let mut table = LifecycleTable::new(8);
        for node in 0..8 {
            assert!(table.apply_if_legal(node, LifecycleEvent::RiskCrossed));
            assert!(table.apply_if_legal(node, LifecycleEvent::ValidationStarted));
        }
        let context = TickContext {
            criteria_threshold: Some(0.0), // everything passes
            ..ctx(0, 1.0)
        };
        shard.tick(&context, table.states(), &[]);
        let verdicts = shard
            .report()
            .proposals
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    LifecycleEvent::ValidationPassed
                        | LifecycleEvent::DefectConfirmed
                        | LifecycleEvent::IncidentObserved
                )
            })
            .count();
        assert_eq!(verdicts, 8, "every validating node must get a verdict");
        assert_eq!(
            shard.report().samples
                + shard
                    .report()
                    .proposals
                    .iter()
                    .filter(|(_, e)| *e == LifecycleEvent::IncidentObserved)
                    .count(),
            8,
            "every non-incident validation must append a sample"
        );
        assert!(!shard.sketch().is_empty());
    }

    #[test]
    fn repair_directive_rejuvenates_the_node() {
        let (_, mut shard) = worker(4);
        let table = LifecycleTable::new(4);
        // Accumulate wear.
        for t in 0..40 {
            shard.tick(&ctx(t, 6.0), table.states(), &[]);
        }
        let worn: u32 = shard.statuses.iter().map(|s| s.incident_count).sum();
        assert!(worn > 0, "40 stressed ticks must produce incidents");
        // Zero-width window: the repair directive applies, no new events.
        let context = TickContext {
            t1: 240.0,
            ..ctx(40, 6.0)
        };
        shard.tick(&context, table.states(), &[1]);
        assert_eq!(shard.degradation_of(1), 0.0);
        assert_eq!(
            shard.statuses[1].incident_count, 0,
            "repair must reset the status covariates"
        );
    }
}

//! anubis-fleetd — the sharded continuous-validation control plane
//! (ROADMAP item: service layer over the Validator/Selector loop).
//!
//! SuperBench's production deployment is not a one-shot benchmark run but
//! a *service*: a coordinator watches the fleet's incident and allocation
//! streams, keeps a per-node lifecycle machine, decides which nodes to
//! pull for validation under a budget, and folds every shard's benchmark
//! scores into fleet-wide defect criteria. This crate reproduces that
//! control plane on the workspace's deterministic substrate:
//!
//! - [`FleetdConfig`] — every knob of a run; the full output is a pure
//!   function of it.
//! - [`ShardWorker`] ([`shard`]) — owns a contiguous node range's data:
//!   streaming incidents ([`anubis_traces::ShardIncidentSource`]), status
//!   covariates, hidden degradation, benchmark noise, and the shard
//!   [`anubis_metrics::EcdfSketch`]. Emits lifecycle *proposals*; never
//!   mutates decision state. Its `tick` is A008 arena-clean.
//! - [`Coordinator`] ([`coordinator`]) — owns the decisions: the
//!   [`anubis_lifecycle::LifecycleTable`], job placement, validation
//!   budget, repair pipeline, and criteria refresh via
//!   [`anubis_metrics::EcdfSketch::merged`]. Shards run in parallel on
//!   `anubis-parallel`; their proposals are applied in fixed shard order,
//!   so summaries and JSONL traces are byte-identical across
//!   `ANUBIS_THREADS` *and* across shard counts.
//!
//! ```
//! use anubis_fleetd::{Coordinator, FleetdConfig};
//!
//! let cfg = FleetdConfig {
//!     nodes: 64,
//!     shards: 4,
//!     ..FleetdConfig::default()
//! };
//! let mut fleet = Coordinator::new(cfg);
//! let summary = fleet.run(10, |_tick| {});
//! assert_eq!(summary.ticks, 10);
//! assert_eq!(summary.final_counts.total(), 64);
//! ```

pub mod config;
pub mod coordinator;
pub mod shard;

pub use config::FleetdConfig;
pub use coordinator::{Coordinator, FleetSummary, TickSummary};
pub use shard::{ShardReport, ShardWorker, TickContext};

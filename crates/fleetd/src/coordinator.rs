//! The fleetd coordinator: the decision-making primary of the service.
//!
//! The coordinator owns everything a decision depends on — the
//! [`LifecycleTable`], job placement, the validation budget, the repair
//! pipeline, and the fleet-wide defect criteria — while the
//! [`ShardWorker`]s own the data movement (incident ingestion, status
//! covariates, benchmark execution). One [`Coordinator::step`] is a
//! virtual-time tick:
//!
//! 1. finish repairs that came due and return those nodes to service,
//! 2. complete jobs whose duration elapsed,
//! 3. ingest job arrivals and place the pending queue FIFO onto healthy
//!    nodes (ascending node order),
//! 4. run every shard's [`ShardWorker::tick`] on the deterministic
//!    executor (this is the only parallel phase),
//! 5. apply shard proposals **in fixed shard order** — quarantines kill
//!    the victim's job and enqueue a repair,
//! 6. start validations on suspect nodes, ascending, up to the per-tick
//!    budget, and
//! 7. periodically merge the shard sketches
//!    ([`anubis_metrics::EcdfSketch::merged`]) and refresh the defect
//!    criteria from the merged quantile.
//!
//! Because shard ranges are contiguous and ascending, "shard order" in
//! step 5 equals global node order — which is why the service's output is
//! byte-identical for any shard count and any `ANUBIS_THREADS`.

use crate::config::FleetdConfig;
use crate::shard::{ShardWorker, TickContext};
use anubis_lifecycle::{LifecycleEvent, LifecycleTable, StateCounts};
use anubis_metrics::EcdfSketch;
use anubis_parallel::map_chunks_mut;
use anubis_traces::{shard_ranges, AllocationStream, JobArrival};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Sentinel for "node serves no job" in the node→job map.
const NO_JOB: u32 = u32::MAX;

/// An active (or finished) customer job.
#[derive(Debug, Clone)]
struct Job {
    /// Nodes the job occupies, ascending.
    nodes: Vec<u32>,
    /// Cleared when the job completes or is killed by a quarantine.
    alive: bool,
}

/// One tick's observable outcome, in both the live summary and the JSONL
/// trace. All fields are deterministic functions of the config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSummary {
    /// Tick index.
    pub tick: u32,
    /// Virtual hour at the end of the tick window.
    pub hour: f64,
    /// Incidents ingested across all shards.
    pub incidents: usize,
    /// Validation benchmark samples appended across all shards.
    pub samples: usize,
    /// Lifecycle proposals emitted by the shards.
    pub proposals: usize,
    /// Validations started by the coordinator this tick.
    pub validations_started: u32,
    /// Nodes confirmed defective by a benchmark verdict this tick.
    pub defects_confirmed: usize,
    /// Nodes quarantined by an under-stress incident this tick.
    pub incident_quarantines: usize,
    /// Repairs completed (nodes returned to service) this tick.
    pub repairs_completed: usize,
    /// Jobs placed this tick.
    pub jobs_started: usize,
    /// Jobs that ran to completion this tick.
    pub jobs_completed: usize,
    /// Jobs killed because a member node was quarantined this tick.
    pub jobs_killed: usize,
    /// Arrivals dropped at the pending-queue cap this tick.
    pub jobs_dropped: usize,
    /// Jobs awaiting placement after this tick.
    pub pending_jobs: usize,
    /// Lifecycle census after this tick.
    pub counts: StateCounts,
    /// Defect criteria in force during this tick (`None` in build-out).
    pub criteria_threshold: Option<f64>,
}

impl TickSummary {
    /// Appends this tick as one JSONL line (including the trailing
    /// newline). Field order and float formatting are fixed, so traces
    /// byte-compare across thread and shard counts.
    pub fn write_jsonl(&self, out: &mut String) {
        let c = &self.counts;
        let _ = write!(
            out,
            "{{\"tick\":{},\"hour\":{:.3},\"incidents\":{},\"samples\":{},\"proposals\":{},\
             \"validations_started\":{},\"defects_confirmed\":{},\"incident_quarantines\":{},\
             \"repairs_completed\":{},\"jobs_started\":{},\"jobs_completed\":{},\
             \"jobs_killed\":{},\"jobs_dropped\":{},\"pending_jobs\":{},\
             \"healthy\":{},\"busy\":{},\"suspect\":{},\"validating\":{},\
             \"quarantined\":{},\"repaired\":{},\"criteria\":",
            self.tick,
            self.hour,
            self.incidents,
            self.samples,
            self.proposals,
            self.validations_started,
            self.defects_confirmed,
            self.incident_quarantines,
            self.repairs_completed,
            self.jobs_started,
            self.jobs_completed,
            self.jobs_killed,
            self.jobs_dropped,
            self.pending_jobs,
            c.healthy,
            c.busy,
            c.suspect,
            c.validating,
            c.quarantined,
            c.repaired,
        );
        match self.criteria_threshold {
            Some(t) => {
                let _ = write!(out, "{t:.6}");
            }
            None => out.push_str("null"),
        }
        out.push_str("}\n");
    }
}

/// Whole-run totals, reported once at the end.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetSummary {
    /// Ticks executed.
    pub ticks: u32,
    /// Fleet size.
    pub nodes: u32,
    /// Shard count (affects nothing but the parallel decomposition).
    pub shards: u32,
    /// Total incidents ingested.
    pub incidents: u64,
    /// Total validation benchmark samples.
    pub samples: u64,
    /// Total validations started.
    pub validations: u64,
    /// Defects confirmed by benchmark verdicts.
    pub defects_confirmed: u64,
    /// Quarantines triggered by under-stress incidents.
    pub incident_quarantines: u64,
    /// Repairs completed.
    pub repairs: u64,
    /// Jobs placed.
    pub jobs_started: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Jobs killed by quarantines.
    pub jobs_killed: u64,
    /// Arrivals dropped at the pending-queue cap.
    pub jobs_dropped: u64,
    /// Final lifecycle census.
    pub final_counts: StateCounts,
    /// Defect criteria in force at the end (`None` if never established).
    pub criteria_threshold: Option<f64>,
}

impl FleetSummary {
    /// Renders the deterministic end-of-run summary block (stable line
    /// order). Deliberately omits everything that is *not* part of the
    /// determinism contract: the shard count, the thread count, and any
    /// wall-clock timing — those belong on stderr. The block is therefore
    /// byte-identical across `ANUBIS_THREADS` *and* shard counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let c = &self.final_counts;
        let _ = writeln!(out, "fleetd summary");
        let _ = writeln!(out, "  fleet: {} nodes, {} ticks", self.nodes, self.ticks);
        let _ = writeln!(
            out,
            "  events: {} incidents, {} benchmark samples",
            self.incidents, self.samples
        );
        let _ = writeln!(
            out,
            "  validation: {} started, {} defects, {} incident quarantines, {} repairs",
            self.validations, self.defects_confirmed, self.incident_quarantines, self.repairs
        );
        let _ = writeln!(
            out,
            "  jobs: {} started, {} completed, {} killed, {} dropped",
            self.jobs_started, self.jobs_completed, self.jobs_killed, self.jobs_dropped
        );
        let _ = writeln!(
            out,
            "  final: {} healthy, {} busy, {} suspect, {} validating, {} quarantined, {} repaired",
            c.healthy, c.busy, c.suspect, c.validating, c.quarantined, c.repaired
        );
        match self.criteria_threshold {
            Some(t) => {
                let _ = writeln!(out, "  criteria: score >= {t:.6}");
            }
            None => {
                let _ = writeln!(out, "  criteria: (build-out)");
            }
        }
        out
    }
}

/// The sharded continuous-validation service (see the module docs).
/// Cloning forks the whole service state (benchmark setups use this to
/// re-run a warmed fleet from a snapshot).
#[derive(Debug, Clone)]
pub struct Coordinator {
    cfg: FleetdConfig,
    table: LifecycleTable,
    shards: Vec<ShardWorker>,
    alloc: AllocationStream,
    pending: VecDeque<JobArrival>,
    jobs: Vec<Job>,
    job_of: Vec<u32>,
    due: BTreeMap<u32, Vec<u32>>,
    repair_queue: VecDeque<(u32, u32)>,
    criteria_threshold: Option<f64>,
    tick: u32,
    totals: FleetSummary,
    // Persistent scratch (steady state allocates only for new jobs).
    repaired_now: Vec<u32>,
    arrivals: Vec<JobArrival>,
    free: Vec<u32>,
}

impl Coordinator {
    /// Builds the service: one lifecycle table, `shards` workers over
    /// contiguous node ranges, and the arrival stream.
    pub fn new(cfg: FleetdConfig) -> Self {
        let ranges = shard_ranges(cfg.nodes, cfg.shards);
        let shards: Vec<ShardWorker> = ranges
            .into_iter()
            .map(|r| ShardWorker::new(&cfg, r))
            .collect();
        let alloc = AllocationStream::new(&cfg.allocation());
        Self {
            table: LifecycleTable::new(cfg.nodes as usize),
            shards,
            alloc,
            pending: VecDeque::new(),
            jobs: Vec::new(),
            job_of: vec![NO_JOB; cfg.nodes as usize],
            due: BTreeMap::new(),
            repair_queue: VecDeque::new(),
            criteria_threshold: None,
            tick: 0,
            totals: FleetSummary {
                nodes: cfg.nodes,
                shards: cfg.shards.clamp(1, cfg.nodes.max(1)),
                ..FleetSummary::default()
            },
            repaired_now: Vec::new(),
            arrivals: Vec::new(),
            free: Vec::new(),
            cfg,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &FleetdConfig {
        &self.cfg
    }

    /// The lifecycle table (decision state).
    pub fn table(&self) -> &LifecycleTable {
        &self.table
    }

    /// Mutable lifecycle table access, e.g. to enable the transition
    /// journal before a run.
    pub fn table_mut(&mut self) -> &mut LifecycleTable {
        &mut self.table
    }

    /// The shard workers, in shard (= node) order.
    pub fn shards(&self) -> &[ShardWorker] {
        &self.shards
    }

    /// The defect criteria currently in force.
    pub fn criteria_threshold(&self) -> Option<f64> {
        self.criteria_threshold
    }

    /// Ticks executed so far.
    pub fn tick_index(&self) -> u32 {
        self.tick
    }

    /// Executes one tick and returns its summary.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self) -> TickSummary {
        let tick = self.tick;
        let t0 = f64::from(tick) * self.cfg.tick_hours;
        let t1 = f64::from(tick + 1) * self.cfg.tick_hours;
        anubis_obs::set_time(t0);
        let _span = anubis_obs::span!("fleetd.tick");

        // 1. Repairs that came due: Quarantined -> Repaired -> Healthy,
        // and tell the shards to rejuvenate the hardware.
        self.repaired_now.clear();
        let mut repairs_completed = 0usize;
        while let Some(&(ready, node)) = self.repair_queue.front() {
            if ready > tick {
                break;
            }
            self.repair_queue.pop_front();
            if self
                .table
                .apply_if_legal(node as usize, LifecycleEvent::RepairCompleted)
                && self
                    .table
                    .apply_if_legal(node as usize, LifecycleEvent::ReturnedToService)
            {
                self.repaired_now.push(node);
                repairs_completed += 1;
            }
        }
        self.repaired_now.sort_unstable();

        // 2. Jobs whose duration elapsed.
        let mut jobs_completed = 0usize;
        if let Some(due_jobs) = self.due.remove(&tick) {
            for job_id in due_jobs {
                let job = &mut self.jobs[job_id as usize];
                if !job.alive {
                    continue;
                }
                job.alive = false;
                jobs_completed += 1;
                for i in 0..self.jobs[job_id as usize].nodes.len() {
                    let node = self.jobs[job_id as usize].nodes[i];
                    if self.job_of[node as usize] == job_id {
                        self.table
                            .apply_if_legal(node as usize, LifecycleEvent::JobCompleted);
                        self.job_of[node as usize] = NO_JOB;
                    }
                }
            }
        }

        // 3. Arrivals and FIFO placement onto healthy nodes.
        self.arrivals.clear();
        self.alloc.poll(t1, &mut self.arrivals);
        let mut jobs_dropped = 0usize;
        for arrival in self.arrivals.drain(..) {
            if self.pending.len() >= self.cfg.max_pending_jobs {
                jobs_dropped += 1;
            } else {
                self.pending.push_back(arrival);
            }
        }
        self.free.clear();
        for (node, state) in self.table.states().iter().enumerate() {
            if state.is_healthy() {
                self.free.push(node as u32);
            }
        }
        let mut jobs_started = 0usize;
        let mut next_free = 0usize;
        while let Some(front) = self.pending.front() {
            let want = front.nodes as usize;
            if want == 0 {
                self.pending.pop_front();
                continue;
            }
            if next_free + want > self.free.len() {
                break; // head-of-line blocks until capacity frees up
            }
            let arrival = match self.pending.pop_front() {
                Some(a) => a,
                None => break,
            };
            let job_id = self.jobs.len() as u32;
            let members = &self.free[next_free..next_free + want];
            for &node in members {
                self.table
                    .apply_if_legal(node as usize, LifecycleEvent::JobAssigned);
                self.job_of[node as usize] = job_id;
            }
            self.jobs.push(Job {
                nodes: members.to_vec(),
                alive: true,
            });
            let duration_ticks =
                ((arrival.duration_hours / self.cfg.tick_hours).ceil() as u32).max(1);
            self.due
                .entry(tick + duration_ticks)
                .or_default()
                .push(job_id);
            next_free += want;
            jobs_started += 1;
        }

        // 4. The parallel shard phase (the only one). The snapshot the
        // shards see includes this tick's placements and repairs.
        let ctx = TickContext {
            tick,
            t0,
            t1,
            horizon_hours: self.cfg.horizon_hours,
            risk_threshold: self.cfg.risk_threshold,
            criteria_threshold: self.criteria_threshold,
            cooldown_ticks: self.cfg.cooldown_ticks,
        };
        let states = self.table.states();
        let repaired = self.repaired_now.as_slice();
        map_chunks_mut(&mut self.shards, 1, self.cfg.threads, |_, chunk| {
            for shard in chunk {
                shard.tick(&ctx, states, repaired);
            }
        });

        // 5. Apply proposals in fixed shard order (= global node order).
        let mut incidents = 0usize;
        let mut samples = 0usize;
        let mut proposals = 0usize;
        let mut defects_confirmed = 0usize;
        let mut incident_quarantines = 0usize;
        let mut jobs_killed = 0usize;
        for shard_id in 0..self.shards.len() {
            let report = self.shards[shard_id].report();
            incidents += report.incidents;
            samples += report.samples;
            proposals += report.proposals.len();
            for i in 0..self.shards[shard_id].report().proposals.len() {
                let (node, event) = self.shards[shard_id].report().proposals[i];
                if !self.table.apply_if_legal(node as usize, event) {
                    continue;
                }
                match event {
                    LifecycleEvent::IncidentObserved => {
                        incident_quarantines += 1;
                        if self.kill_job_of(node) {
                            jobs_killed += 1;
                        }
                        self.repair_queue
                            .push_back((tick + self.cfg.repair_ticks, node));
                    }
                    LifecycleEvent::DefectConfirmed => {
                        defects_confirmed += 1;
                        self.repair_queue
                            .push_back((tick + self.cfg.repair_ticks, node));
                    }
                    _ => {}
                }
            }
        }

        // 6. Start validations on suspects, ascending, up to the budget.
        // `ValidationStarted` is only legal from suspect, so attempting
        // it *is* the suspect check.
        let cap = self.cfg.validation_cap();
        let mut validations_started = 0u32;
        for node in 0..self.cfg.nodes {
            if validations_started >= cap {
                break;
            }
            if self
                .table
                .apply_if_legal(node as usize, LifecycleEvent::ValidationStarted)
            {
                validations_started += 1;
            }
        }

        // 7. Periodic criteria refresh from the merged fleet sketch.
        if (tick + 1).is_multiple_of(self.cfg.merge_every_ticks.max(1)) {
            let _merge = anubis_obs::span!("fleetd.merge");
            let merged = EcdfSketch::merged(self.shards.iter().map(ShardWorker::sketch));
            if merged.len() >= self.cfg.min_criteria_samples {
                self.criteria_threshold = Some(merged.quantile(self.cfg.defect_quantile));
            }
        }

        let counts = self.table.counts();
        anubis_obs::set_time(t1); // the open tick span covers [t0, t1]
        anubis_obs::counter!("fleetd.incidents", incidents as i64);
        anubis_obs::counter!("fleetd.samples", samples as i64);
        anubis_obs::counter!("fleetd.validations", i64::from(validations_started));
        anubis_obs::counter!(
            "fleetd.quarantines",
            (defects_confirmed + incident_quarantines) as i64
        );

        self.tick += 1;
        self.totals.ticks = self.tick;
        self.totals.incidents += incidents as u64;
        self.totals.samples += samples as u64;
        self.totals.validations += u64::from(validations_started);
        self.totals.defects_confirmed += defects_confirmed as u64;
        self.totals.incident_quarantines += incident_quarantines as u64;
        self.totals.repairs += repairs_completed as u64;
        self.totals.jobs_started += jobs_started as u64;
        self.totals.jobs_completed += jobs_completed as u64;
        self.totals.jobs_killed += jobs_killed as u64;
        self.totals.jobs_dropped += jobs_dropped as u64;
        self.totals.final_counts = counts;
        self.totals.criteria_threshold = self.criteria_threshold;

        TickSummary {
            tick,
            hour: t1,
            incidents,
            samples,
            proposals,
            validations_started,
            defects_confirmed,
            incident_quarantines,
            repairs_completed,
            jobs_started,
            jobs_completed,
            jobs_killed,
            jobs_dropped,
            pending_jobs: self.pending.len(),
            counts,
            criteria_threshold: self.criteria_threshold,
        }
    }

    /// Kills the job occupying `node` (the node itself was just
    /// quarantined): surviving members return to healthy, the job's due
    /// entry is left to lapse. Returns whether a live job was killed.
    fn kill_job_of(&mut self, node: u32) -> bool {
        let job_id = self.job_of[node as usize];
        self.job_of[node as usize] = NO_JOB;
        if job_id == NO_JOB {
            return false;
        }
        let job = &mut self.jobs[job_id as usize];
        if !job.alive {
            return false;
        }
        job.alive = false;
        for i in 0..self.jobs[job_id as usize].nodes.len() {
            let member = self.jobs[job_id as usize].nodes[i];
            if member != node && self.job_of[member as usize] == job_id {
                self.table
                    .apply_if_legal(member as usize, LifecycleEvent::JobCompleted);
                self.job_of[member as usize] = NO_JOB;
            }
        }
        true
    }

    /// Runs `ticks` ticks, invoking `on_tick` after each, and returns the
    /// run totals.
    pub fn run(&mut self, ticks: u32, mut on_tick: impl FnMut(&TickSummary)) -> FleetSummary {
        for _ in 0..ticks {
            let summary = self.step();
            on_tick(&summary);
        }
        self.totals
    }

    /// The run totals so far.
    pub fn totals(&self) -> FleetSummary {
        self.totals
    }
}

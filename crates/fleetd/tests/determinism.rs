//! The fleetd determinism contract: the service's observable output —
//! end-of-run summary and per-tick JSONL — is a pure function of the
//! config, independent of both the shard count and the executor's
//! thread count.

use anubis_fleetd::{Coordinator, FleetdConfig};

/// Runs the service and returns `(summary text, tick JSONL)`.
fn run(nodes: u32, shards: u32, ticks: u32, threads: usize, seed: u64) -> (String, String) {
    let cfg = FleetdConfig {
        nodes,
        shards,
        ticks,
        threads,
        seed,
        ..FleetdConfig::default()
    };
    let mut fleet = Coordinator::new(cfg);
    let mut jsonl = String::new();
    let summary = fleet.run(ticks, |tick| tick.write_jsonl(&mut jsonl));
    (summary.render(), jsonl)
}

#[test]
fn output_is_identical_across_shard_counts() {
    let baseline = run(600, 1, 40, 1, 42);
    for shards in [4u32, 16] {
        let other = run(600, shards, 40, 1, 42);
        assert_eq!(
            baseline.0, other.0,
            "summary must not depend on the shard count (S={shards})"
        );
        assert_eq!(
            baseline.1, other.1,
            "tick JSONL must not depend on the shard count (S={shards})"
        );
    }
}

#[test]
fn output_is_identical_across_thread_counts() {
    let serial = run(600, 8, 40, 1, 42);
    let parallel = run(600, 8, 40, 8, 42);
    assert_eq!(serial.0, parallel.0, "summary must not depend on threads");
    assert_eq!(
        serial.1, parallel.1,
        "tick JSONL must not depend on threads"
    );
}

#[test]
fn shard_and_thread_variation_combined() {
    // The CI smoke in one test: vary both axes at once and across seeds.
    for seed in [7u64, 2026] {
        let a = run(300, 1, 30, 1, seed);
        let b = run(300, 16, 30, 8, seed);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    // Guard against the trivial way to "pass" the identity tests.
    let a = run(300, 4, 30, 1, 1);
    let b = run(300, 4, 30, 1, 2);
    assert_ne!(a.1, b.1, "distinct seeds must yield distinct histories");
}

#[test]
fn run_is_live_and_conserves_nodes() {
    let cfg = FleetdConfig {
        nodes: 500,
        shards: 4,
        ticks: 120,
        threads: 1,
        ..FleetdConfig::default()
    };
    let mut fleet = Coordinator::new(cfg);
    let mut max_pending = 0usize;
    let summary = fleet.run(120, |tick| {
        assert_eq!(tick.counts.total(), 500, "nodes never appear or vanish");
        max_pending = max_pending.max(tick.pending_jobs);
    });
    assert!(summary.incidents > 0, "stressed fleet must see incidents");
    assert!(summary.validations > 0, "validation loop must run");
    assert!(summary.repairs > 0, "repair pipeline must cycle");
    assert!(summary.jobs_started > 0, "placement must happen");
    assert!(
        summary.final_counts.in_service() > 0,
        "service must not quarantine the whole fleet"
    );
}

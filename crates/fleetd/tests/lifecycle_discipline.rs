//! Lifecycle discipline of the coordinator: every state change the
//! service makes goes through `anubis_lifecycle::transition` — verified
//! by replaying the table's transition journal against the bare
//! transition function over randomized service configurations.

use anubis_fleetd::{Coordinator, FleetdConfig};
use anubis_lifecycle::transition;
use proptest::prelude::*;

/// Runs the service with the journal on and returns the coordinator.
fn run_journaled(cfg: FleetdConfig) -> Coordinator {
    let ticks = cfg.ticks;
    let mut fleet = Coordinator::new(cfg);
    fleet.table_mut().enable_journal();
    fleet.run(ticks, |_| {});
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary fleet shapes, every journaled transition is exactly
    /// a legal `transition(from, event)` step, and consecutive records of
    /// one node chain (each `from` equals the node's previous `to`).
    #[test]
    fn every_observed_transition_is_legal(
        nodes in 50u32..300,
        shards in 1u32..9,
        ticks in 10u32..50,
        seed in 0u64..1000,
    ) {
        let fleet = run_journaled(FleetdConfig {
            nodes,
            shards,
            ticks,
            threads: 1,
            seed,
            ..FleetdConfig::default()
        });
        let journal = fleet.table().journal();
        let mut last: Vec<Option<anubis_lifecycle::NodeState>> =
            vec![None; nodes as usize];
        for record in journal {
            prop_assert_eq!(
                transition(record.from, record.event),
                Ok(record.to),
                "journaled step must be a legal transition: node {} {:?} --{:?}--> {:?}",
                record.node, record.from, record.event, record.to
            );
            if let Some(prev) = last[record.node as usize] {
                prop_assert_eq!(
                    prev, record.from,
                    "node {}'s journal must chain", record.node
                );
            }
            last[record.node as usize] = Some(record.to);
        }
        // The journal replays to the final table state.
        for (node, state) in fleet.table().states().iter().enumerate() {
            if let Some(final_state) = last[node] {
                prop_assert_eq!(final_state, *state);
            } else {
                prop_assert!(state.is_healthy(), "untouched nodes stay healthy");
            }
        }
    }
}

#[test]
fn journal_is_nontrivial_under_stress() {
    // A deterministic config known to exercise the whole machine, so the
    // property above is not vacuously true on an empty journal.
    let fleet = run_journaled(FleetdConfig {
        nodes: 400,
        shards: 4,
        ticks: 120,
        threads: 1,
        ..FleetdConfig::default()
    });
    let journal = fleet.table().journal();
    assert!(
        journal.len() > 1000,
        "120 stressed ticks should journal thousands of transitions, got {}",
        journal.len()
    );
    use anubis_lifecycle::LifecycleEvent as E;
    for event in [
        E::RiskCrossed,
        E::JobAssigned,
        E::JobCompleted,
        E::ValidationStarted,
        E::ValidationPassed,
        E::IncidentObserved,
        E::RepairCompleted,
        E::ReturnedToService,
    ] {
        assert!(
            journal.iter().any(|r| r.event == event),
            "the run should exercise {event:?}"
        );
    }
}

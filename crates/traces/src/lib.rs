//! Synthetic, statistically-calibrated traces.
//!
//! The paper's evaluation consumes three production datasets none of which
//! are public: a 4-month node-incident trace from ~1k on-premise GPU
//! nodes, the same clusters' allocation-request trace, and a 3k-VM
//! build-out benchmark dataset. This crate generates synthetic equivalents
//! calibrated to every statistic the paper reports:
//!
//! - [`incident`]: per-node incident processes with *accumulating wear*
//!   (each partially-repaired incident raises the hazard), reproducing
//!   Figure 4's decaying inter-incident times, Figure 1's source mix and
//!   Figure 2's ticket-duration distribution, plus extraction of
//!   status/TBNI survival samples for Table 3;
//! - [`allocation`]: Poisson job arrivals with realistic size/duration
//!   mixes for the Figure 8 / Table 4 cluster simulation;
//! - [`dataset`]: the build-out fleet with defect injection rates
//!   calibrated to Table 6.

pub mod allocation;
pub mod codec;
pub mod dataset;
pub mod incident;
pub mod stream;

pub use allocation::{generate_allocation_trace, AllocationConfig, AllocationRequest};
pub use codec::{
    allocation_trace_to_jsonl, decode_incident_trace, encode_incident_trace,
    incident_trace_to_jsonl, CodecError,
};
pub use dataset::{generate_buildout_fleet, BuildoutConfig};
pub use incident::{
    generate_incident_trace, job_time_to_failure_from, sample_fault_for_category, IncidentEvent,
    IncidentTrace, IncidentTraceConfig, SourceMix, TicketDurationModel,
};
pub use stream::{
    node_stream_seed, shard_ranges, AllocationStream, IncidentStreamConfig, JobArrival,
    ShardIncidentSource,
};

//! Streaming, shard-partitionable event sources for the fleetd service.
//!
//! The batch generators in [`crate::incident`] and [`crate::allocation`]
//! materialize a whole trace up front from one sequential RNG — fine for
//! a one-shot `repro` pass, unusable for a long-running control plane
//! over 100k+ nodes, and (worse) *partition-dependent*: splitting the
//! node range across shards would change which draws each node sees.
//!
//! This module fixes both properties:
//!
//! - [`ShardIncidentSource`] generates each node's incident process from
//!   a **per-node RNG stream** seeded by `mix(seed, node)`. A node's
//!   event sequence is therefore a pure function of `(seed, node)` —
//!   independent of how the fleet is partitioned into shards and of how
//!   the polling windows are chosen. That invariance is what lets
//!   `anubis-fleetd` promise byte-identical output across shard counts.
//! - [`AllocationStream`] is the coordinator-side job-arrival stream:
//!   one global Poisson process pulled tick by tick instead of a
//!   materialized trace.
//! - [`shard_ranges`] is the canonical contiguous partitioner: shard `s`
//!   owns a contiguous node range, ranges ascend with `s`, and sizes
//!   differ by at most one. Concatenating per-shard results in shard
//!   order therefore yields global node order.

use crate::allocation::AllocationConfig;
use crate::incident::{IncidentEvent, SourceMix, TicketDurationModel};
use anubis_hwsim::noise::{exponential, log_normal};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Splits `0..nodes` into `shards` contiguous ranges in ascending order;
/// sizes differ by at most one (the first `nodes % shards` ranges get the
/// extra node). `shards` is clamped to `1..=nodes.max(1)`.
pub fn shard_ranges(nodes: u32, shards: u32) -> Vec<Range<u32>> {
    let shards = shards.clamp(1, nodes.max(1));
    let base = nodes / shards;
    let extra = nodes % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut lo = 0u32;
    for s in 0..shards {
        let len = base + u32::from(s < extra);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// SplitMix64 finalizer: decorrelates per-node seeds derived from one
/// fleet seed so adjacent nodes get unrelated ChaCha streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The seed of a node's private RNG stream. `stream` distinguishes
/// independent streams on the same node (incident process, benchmark
/// noise, …).
pub fn node_stream_seed(seed: u64, node: u32, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(u64::from(node).wrapping_add(stream << 32)))
}

/// Configuration of the streaming incident source — the statistical
/// knobs of [`crate::IncidentTraceConfig`] minus the batch-only fields,
/// plus a hazard cap so long-running services reach a bounded steady
/// state instead of a wear singularity.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentStreamConfig {
    /// Mean time to a fresh node's first incident, in hours.
    pub base_mtbi_hours: f64,
    /// Hazard growth per accumulated incident (partial repair leaves
    /// wear behind).
    pub wear_factor: f64,
    /// Accumulated-incident count beyond which the hazard stops growing.
    pub wear_cap: u32,
    /// Log-scale spread of per-node frailty (lemon nodes).
    pub frailty_sigma: f64,
    /// Fleet seed; per-node streams derive from it via
    /// [`node_stream_seed`].
    pub seed: u64,
}

impl Default for IncidentStreamConfig {
    fn default() -> Self {
        Self {
            base_mtbi_hours: 719.4,
            wear_factor: (719.4f64 / 151.7).powf(1.0 / 19.0),
            wear_cap: 12,
            frailty_sigma: 0.5,
            seed: 42,
        }
    }
}

/// One node's private incident-process state.
#[derive(Debug, Clone)]
struct NodeStream {
    /// The node's private RNG; every draw for this node comes from here.
    rng: ChaCha8Rng,
    /// Per-node frailty multiplier (lemon nodes fail more).
    frailty: f64,
    /// Absolute hour of the next incident.
    next_hour: f64,
    /// Accumulated incidents since the last full repair.
    wear: u32,
}

/// Streaming incident source for one contiguous shard of the fleet.
///
/// Each node's inter-incident gaps are exponential with hazard
/// `frailty × γ^min(k, cap) / base_mtbi` after `k` incidents, mirroring
/// the batch generator's accumulating-wear model (Section 2.2 of the
/// paper), but drawn from the node's own RNG stream so the sequence is
/// partition- and window-invariant.
#[derive(Debug, Clone)]
pub struct ShardIncidentSource {
    config: IncidentStreamConfig,
    range: Range<u32>,
    streams: Vec<NodeStream>,
    mix: SourceMix,
    tickets: TicketDurationModel,
}

impl ShardIncidentSource {
    /// Creates the source for the nodes in `range` (typically one entry
    /// of [`shard_ranges`]).
    pub fn new(config: &IncidentStreamConfig, range: Range<u32>) -> Self {
        let mut streams = Vec::with_capacity(range.len());
        for node in range.clone() {
            let mut rng = ChaCha8Rng::seed_from_u64(node_stream_seed(config.seed, node, 0));
            let frailty = log_normal(&mut rng, 0.0, config.frailty_sigma);
            let rate = frailty / config.base_mtbi_hours.max(1e-9);
            let next_hour = exponential(&mut rng, rate);
            streams.push(NodeStream {
                rng,
                frailty,
                next_hour,
                wear: 0,
            });
        }
        Self {
            config: config.clone(),
            range,
            streams,
            mix: SourceMix::azure_like(),
            tickets: TicketDurationModel::figure2(),
        }
    }

    /// The node range this source owns.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Current hazard rate of a node (incidents per hour).
    fn rate(&self, stream: &NodeStream) -> f64 {
        let k = stream.wear.min(self.config.wear_cap);
        stream.frailty * self.config.wear_factor.powi(k as i32)
            / self.config.base_mtbi_hours.max(1e-9)
    }

    /// Appends every incident of `node` with `start_hour < until_hour`
    /// to `out`, advancing the node's stream. Events arrive in start-hour
    /// order; repeated polling with growing windows never re-emits.
    pub fn poll_node(&mut self, node: u32, until_hour: f64, out: &mut Vec<IncidentEvent>) {
        let Some(index) = node
            .checked_sub(self.range.start)
            .map(|i| i as usize)
            .filter(|&i| i < self.streams.len())
        else {
            return;
        };
        while self.streams[index].next_hour < until_hour {
            let start_hour = self.streams[index].next_hour;
            let stream = &mut self.streams[index];
            let ticket_hours = self.tickets.sample(&mut stream.rng);
            let category = self.mix.sample(&mut stream.rng);
            out.push(IncidentEvent {
                node,
                start_hour,
                ticket_hours,
                category,
            });
            stream.wear = stream.wear.saturating_add(1);
            let rate = self.rate(&self.streams[index]);
            let stream = &mut self.streams[index];
            let gap = exponential(&mut stream.rng, rate);
            stream.next_hour = start_hour + gap;
        }
    }

    /// Resets a node's accumulated wear after a full repair: subsequent
    /// gaps are drawn at the fresh-node hazard again. The already-sampled
    /// next incident time is kept (the draw happened under the old
    /// hazard), so the reset never re-randomizes the past.
    pub fn reset_wear(&mut self, node: u32) {
        if let Some(index) = node
            .checked_sub(self.range.start)
            .map(|i| i as usize)
            .filter(|&i| i < self.streams.len())
        {
            self.streams[index].wear = 0;
        }
    }
}

/// Streaming Poisson job-arrival source (the coordinator-side twin of
/// [`crate::generate_allocation_trace`]): arrivals are pulled tick by
/// tick from one global RNG instead of materialized up front, and the
/// trace never ends.
#[derive(Debug, Clone)]
pub struct AllocationStream {
    config: AllocationConfig,
    rng: ChaCha8Rng,
    next_hour: f64,
}

/// One streamed job arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobArrival {
    /// Submission time in hours.
    pub submit_hour: f64,
    /// Requested node count.
    pub nodes: u32,
    /// Requested duration in hours.
    pub duration_hours: f64,
}

impl AllocationStream {
    /// Creates the stream; `config.duration_hours` is ignored (the
    /// stream is unbounded).
    pub fn new(config: &AllocationConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let rate = 1.0 / config.mean_interarrival_hours.max(1e-9);
        let next_hour = exponential(&mut rng, rate);
        Self {
            config: config.clone(),
            rng,
            next_hour,
        }
    }

    /// Appends every arrival with `submit_hour < until_hour` to `out`,
    /// advancing the stream.
    pub fn poll(&mut self, until_hour: f64, out: &mut Vec<JobArrival>) {
        let rate = 1.0 / self.config.mean_interarrival_hours.max(1e-9);
        while self.next_hour < until_hour {
            let submit_hour = self.next_hour;
            let nodes = sample_size(&self.config.size_mix, &mut self.rng);
            let duration_hours = log_normal(
                &mut self.rng,
                self.config.duration_mu,
                self.config.duration_sigma,
            )
            .clamp(0.5, 168.0);
            out.push(JobArrival {
                submit_hour,
                nodes,
                duration_hours,
            });
            self.next_hour = submit_hour + exponential(&mut self.rng, rate);
        }
    }
}

/// Samples a job size proportionally to the mix weights.
fn sample_size(mix: &[(u32, f64)], rng: &mut ChaCha8Rng) -> u32 {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut target = rng.random_range(0.0..total);
    for &(size, weight) in mix {
        if target < weight {
            return size;
        }
        target -= weight;
    }
    mix.last().map_or(1, |&(s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_ascend() {
        for (nodes, shards) in [(10u32, 3u32), (100, 16), (5, 8), (1, 1), (7, 7)] {
            let ranges = shard_ranges(nodes, shards);
            let mut expect = 0u32;
            for r in &ranges {
                assert_eq!(r.start, expect, "ranges must be contiguous and ascending");
                assert!(r.end >= r.start);
                assert!(r.len() as u32 <= nodes / shards.min(nodes.max(1)) + 1);
                expect = r.end;
            }
            assert_eq!(expect, nodes, "ranges must cover every node");
        }
    }

    fn collect_events(
        config: &IncidentStreamConfig,
        shards: u32,
        nodes: u32,
    ) -> Vec<IncidentEvent> {
        let mut all = Vec::new();
        for range in shard_ranges(nodes, shards) {
            let mut source = ShardIncidentSource::new(config, range.clone());
            for node in range {
                source.poll_node(node, 2000.0, &mut all);
            }
        }
        all
    }

    #[test]
    fn incident_stream_is_partition_invariant() {
        let config = IncidentStreamConfig {
            base_mtbi_hours: 120.0,
            ..Default::default()
        };
        let one = collect_events(&config, 1, 64);
        let four = collect_events(&config, 4, 64);
        let sixteen = collect_events(&config, 16, 64);
        assert!(!one.is_empty());
        assert_eq!(one, four, "1 vs 4 shards must generate identical events");
        assert_eq!(
            one, sixteen,
            "1 vs 16 shards must generate identical events"
        );
    }

    #[test]
    fn incident_stream_is_window_invariant() {
        let config = IncidentStreamConfig {
            base_mtbi_hours: 80.0,
            ..Default::default()
        };
        let mut whole = Vec::new();
        let mut source = ShardIncidentSource::new(&config, 0..8);
        for node in 0..8 {
            source.poll_node(node, 1000.0, &mut whole);
        }

        let mut stepped = Vec::new();
        let mut source = ShardIncidentSource::new(&config, 0..8);
        for window in 0..100 {
            let until = f64::from(window + 1) * 10.0;
            for node in 0..8 {
                source.poll_node(node, until, &mut stepped);
            }
        }
        // Same multiset, different interleaving: compare per node.
        for node in 0..8u32 {
            let a: Vec<&IncidentEvent> = whole.iter().filter(|e| e.node == node).collect();
            let b: Vec<&IncidentEvent> = stepped.iter().filter(|e| e.node == node).collect();
            assert_eq!(a, b, "windowing must not change node {node}'s events");
        }
    }

    #[test]
    fn reset_wear_lowers_the_hazard_back() {
        let config = IncidentStreamConfig {
            base_mtbi_hours: 50.0,
            wear_factor: 2.0,
            ..Default::default()
        };
        let mut source = ShardIncidentSource::new(&config, 0..1);
        let mut events = Vec::new();
        source.poll_node(0, 500.0, &mut events);
        let worn_rate = source.rate(&source.streams[0]);
        source.reset_wear(0);
        let fresh_rate = source.rate(&source.streams[0]);
        if !events.is_empty() {
            assert!(fresh_rate < worn_rate, "reset must drop the hazard");
        }
        assert_eq!(source.streams[0].wear, 0);
    }

    #[test]
    fn allocation_stream_is_window_invariant() {
        let config = AllocationConfig::stressed(256);
        let mut whole = Vec::new();
        AllocationStream::new(&config).poll(300.0, &mut whole);
        let mut stepped = Vec::new();
        let mut stream = AllocationStream::new(&config);
        for window in 0..300 {
            stream.poll(f64::from(window + 1), &mut stepped);
        }
        assert!(!whole.is_empty());
        assert_eq!(whole, stepped);
    }
}

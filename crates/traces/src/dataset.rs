//! The cluster build-out fleet (the Table 6 benchmark dataset).

use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the build-out fleet generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildoutConfig {
    /// Number of VMs (the paper's dataset: 3k+ A100 VMs).
    pub vms: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BuildoutConfig {
    fn default() -> Self {
        Self {
            vms: 3000,
            seed: 2024,
        }
    }
}

/// Per-fault injection rates calibrated so the full benchmark set filters
/// roughly the Table 6 defect shares (IB HCA loopback ≈ 6%, H2D/D2H ≈ 2%,
/// CPU latency ≈ 1.3%, …, ≈ 10.4% of nodes defective overall).
///
/// Each row is `(probability, sampler)`; faults are drawn independently
/// per node, so a node can carry several defects — as real build-outs do.
fn injection_table(rng: &mut ChaCha8Rng) -> Vec<(f64, FaultKind)> {
    vec![
        (
            0.050,
            FaultKind::HcaDegraded {
                severity: rng.random_range(0.12..0.4),
            },
        ),
        (
            0.012,
            FaultKind::IbLinkBer {
                severity: rng.random_range(0.15..0.4),
            },
        ),
        (
            0.018,
            FaultKind::PcieDowngrade {
                severity: rng.random_range(0.25..0.5),
            },
        ),
        (
            0.013,
            FaultKind::CpuMemoryLatency {
                severity: rng.random_range(0.12..0.35),
            },
        ),
        (
            0.002,
            FaultKind::GpuComputeDegraded {
                severity: rng.random_range(0.1..0.3),
            },
        ),
        (
            0.003,
            FaultKind::ThermalThrottle {
                severity: rng.random_range(0.1..0.25),
            },
        ),
        (
            0.006,
            FaultKind::GpuMemoryBandwidthDegraded {
                severity: rng.random_range(0.1..0.3),
            },
        ),
        (
            0.006,
            FaultKind::RowRemapErrors {
                correctable_errors: rng.random_range(11..40),
            },
        ),
        (
            0.004,
            FaultKind::NvLinkLanesDown {
                lanes: rng.random_range(26..60),
            },
        ),
        (
            0.0035,
            FaultKind::OverlapInterference {
                severity: rng.random_range(0.12..0.3),
            },
        ),
        (
            0.004,
            FaultKind::KernelLaunchOverhead {
                severity: rng.random_range(0.3..0.6),
            },
        ),
        (
            0.003,
            FaultKind::DiskSlow {
                severity: rng.random_range(0.2..0.5),
            },
        ),
    ]
}

/// Generates the build-out fleet: mostly healthy A100 VMs with defects
/// injected at the calibrated rates.
pub fn generate_buildout_fleet(config: &BuildoutConfig) -> Vec<NodeSim> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    (0..config.vms)
        .map(|i| {
            let mut node = NodeSim::new(
                NodeId(i),
                NodeSpec::a100_8x(),
                config.seed ^ (u64::from(i).wrapping_mul(0x9e37_79b9)),
            );
            for (probability, fault) in injection_table(&mut rng) {
                if rng.random::<f64>() < probability {
                    node.inject_fault(fault);
                }
            }
            node
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_size_and_determinism() {
        let config = BuildoutConfig { vms: 200, seed: 1 };
        let a = generate_buildout_fleet(&config);
        let b = generate_buildout_fleet(&config);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id(), y.id());
            assert_eq!(x.active_faults(), y.active_faults());
        }
    }

    #[test]
    fn defect_fraction_matches_deployment() {
        let fleet = generate_buildout_fleet(&BuildoutConfig { vms: 4000, seed: 3 });
        let defective = fleet.iter().filter(|n| n.has_detectable_defect()).count() as f64;
        let fraction = defective / fleet.len() as f64;
        // The paper filters 10.36% of nodes; calibration tolerance ±3pp
        // (row-remap regressions are probabilistic).
        assert!(
            (0.07..=0.14).contains(&fraction),
            "defective fraction {fraction}"
        );
    }

    #[test]
    fn hca_faults_dominate() {
        let fleet = generate_buildout_fleet(&BuildoutConfig { vms: 4000, seed: 5 });
        let hca = fleet
            .iter()
            .filter(|n| {
                n.active_faults()
                    .iter()
                    .any(|f| matches!(f, FaultKind::HcaDegraded { .. }))
            })
            .count() as f64
            / fleet.len() as f64;
        assert!((0.03..=0.07).contains(&hca), "HCA share {hca}");
    }

    #[test]
    fn most_nodes_are_healthy() {
        let fleet = generate_buildout_fleet(&BuildoutConfig { vms: 1000, seed: 7 });
        let healthy = fleet
            .iter()
            .filter(|n| !n.has_detectable_defect() && n.active_faults().is_empty())
            .count();
        assert!(healthy > 800, "healthy nodes: {healthy}");
    }
}

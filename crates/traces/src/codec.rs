//! Trace export and compact binary encoding.
//!
//! The production system archives traces for offline model training; this
//! module provides two interchange formats:
//!
//! - **JSON lines** (via the workspace's serde-based JSON writer): one
//!   event per line, grep/pandas-friendly;
//! - **binary** (via `bytes`): a compact length-prefixed encoding with a
//!   magic header and version byte, round-trippable without serde.

use crate::allocation::AllocationRequest;
use crate::incident::{IncidentEvent, IncidentTrace, IncidentTraceConfig};
use anubis_hwsim::fault::IncidentCategory;
use anubis_metrics::json::{to_json, JsonError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes opening every binary trace.
const MAGIC: &[u8; 4] = b"ANBT";
/// Current binary format version.
const VERSION: u8 = 1;

/// Errors from decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the declared payload.
    Truncated,
    /// An incident category index was out of range.
    BadCategory(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not an ANUBIS binary trace (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            Self::Truncated => write!(f, "trace buffer truncated"),
            Self::BadCategory(c) => write!(f, "invalid incident category index {c}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Renders an incident trace as JSON lines (one event per line).
pub fn incident_trace_to_jsonl(trace: &IncidentTrace) -> Result<String, JsonError> {
    let mut out = String::new();
    for event in &trace.events {
        out.push_str(&to_json(event)?);
        out.push('\n');
    }
    Ok(out)
}

/// Renders an allocation trace as JSON lines.
pub fn allocation_trace_to_jsonl(trace: &[AllocationRequest]) -> Result<String, JsonError> {
    let mut out = String::new();
    for request in trace {
        out.push_str(&to_json(request)?);
        out.push('\n');
    }
    Ok(out)
}

/// Encodes an incident trace into the compact binary format.
pub fn encode_incident_trace(trace: &IncidentTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.events.len() * 21);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32(trace.config.nodes);
    buf.put_f64(trace.config.duration_hours);
    buf.put_u64(trace.config.seed);
    buf.put_f64(trace.config.base_mtbi_hours);
    buf.put_f64(trace.config.wear_factor);
    buf.put_f64(trace.config.frailty_sigma);
    buf.put_u32(trace.events.len() as u32);
    for event in &trace.events {
        buf.put_u32(event.node);
        buf.put_f64(event.start_hour);
        buf.put_f64(event.ticket_hours);
        buf.put_u8(event.category.index() as u8);
    }
    buf.freeze()
}

/// Decodes a binary incident trace.
pub fn decode_incident_trace(mut buf: &[u8]) -> Result<IncidentTrace, CodecError> {
    if buf.remaining() < 5 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    if buf.remaining() < 4 + 8 + 8 + 8 + 8 + 8 + 4 {
        return Err(CodecError::Truncated);
    }
    let config = IncidentTraceConfig {
        nodes: buf.get_u32(),
        duration_hours: buf.get_f64(),
        seed: buf.get_u64(),
        base_mtbi_hours: buf.get_f64(),
        wear_factor: buf.get_f64(),
        frailty_sigma: buf.get_f64(),
    };
    let count = buf.get_u32() as usize;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 + 8 + 8 + 1 {
            return Err(CodecError::Truncated);
        }
        let node = buf.get_u32();
        let start_hour = buf.get_f64();
        let ticket_hours = buf.get_f64();
        let index = buf.get_u8();
        let category = *IncidentCategory::ALL
            .get(index as usize)
            .ok_or(CodecError::BadCategory(index))?;
        events.push(IncidentEvent {
            node,
            start_hour,
            ticket_hours,
            category,
        });
    }
    Ok(IncidentTrace { events, config })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::generate_incident_trace;
    use proptest::prelude::*;

    fn small_trace() -> IncidentTrace {
        generate_incident_trace(&IncidentTraceConfig {
            nodes: 60,
            ..IncidentTraceConfig::default()
        })
    }

    #[test]
    fn jsonl_has_one_event_per_line() {
        let trace = small_trace();
        let jsonl = incident_trace_to_jsonl(&trace).unwrap();
        assert_eq!(jsonl.lines().count(), trace.events.len());
        let first = jsonl.lines().next().unwrap();
        assert!(first.starts_with("{\"node\":"), "{first}");
        assert!(first.contains("\"category\":"));
    }

    #[test]
    fn allocation_jsonl_shape() {
        use crate::allocation::{generate_allocation_trace, AllocationConfig};
        let trace = generate_allocation_trace(&AllocationConfig::stressed(32));
        let jsonl = allocation_trace_to_jsonl(&trace).unwrap();
        assert_eq!(jsonl.lines().count(), trace.len());
        assert!(jsonl.lines().next().unwrap().contains("\"submit_hour\":"));
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let trace = small_trace();
        let encoded = encode_incident_trace(&trace);
        let decoded = decode_incident_trace(&encoded).unwrap();
        assert_eq!(decoded.config, trace.config);
        assert_eq!(decoded.events, trace.events);
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert_eq!(
            decode_incident_trace(b"").unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(
            decode_incident_trace(b"XXXX\x01rest").unwrap_err(),
            CodecError::BadMagic
        );
        let trace = small_trace();
        let mut encoded = encode_incident_trace(&trace).to_vec();
        encoded[4] = 99;
        assert_eq!(
            decode_incident_trace(&encoded).unwrap_err(),
            CodecError::BadVersion(99)
        );
        let encoded = encode_incident_trace(&trace);
        assert_eq!(
            decode_incident_trace(&encoded[..encoded.len() - 3]).unwrap_err(),
            CodecError::Truncated
        );
    }

    proptest! {
        #[test]
        fn roundtrip_any_seed(nodes in 1u32..40, seed in 0u64..1000) {
            let trace = generate_incident_trace(&IncidentTraceConfig {
                nodes,
                seed,
                ..IncidentTraceConfig::default()
            });
            let decoded = decode_incident_trace(&encode_incident_trace(&trace)).unwrap();
            prop_assert_eq!(decoded.events, trace.events);
            prop_assert_eq!(decoded.config, trace.config);
        }
    }
}

//! Synthetic node-incident traces.

use anubis_hwsim::fault::{FaultKind, IncidentCategory};
use anubis_hwsim::noise::{exponential, log_normal};
use anubis_selector::{NodeStatus, SurvivalSample};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Incident-source mix (the Figure 1 breakdown).
///
/// Weights are calibrated to the paper's description: more than 8
/// components appear, GPUs and InfiniBand links dominate.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceMix {
    weights: Vec<(IncidentCategory, f64)>,
}

impl SourceMix {
    /// The Azure-like default mix.
    pub fn azure_like() -> Self {
        Self {
            weights: vec![
                (IncidentCategory::GpuCompute, 0.22),
                (IncidentCategory::GpuMemory, 0.15),
                (IncidentCategory::IbLink, 0.21),
                (IncidentCategory::Nic, 0.08),
                (IncidentCategory::NvLink, 0.06),
                (IncidentCategory::Pcie, 0.05),
                (IncidentCategory::CpuMemory, 0.07),
                (IncidentCategory::Disk, 0.04),
                (IncidentCategory::Software, 0.12),
            ],
        }
    }

    /// The category/weight pairs.
    pub fn weights(&self) -> &[(IncidentCategory, f64)] {
        &self.weights
    }

    /// Samples a category proportionally to weight.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> IncidentCategory {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut target = rng.random_range(0.0..total);
        for &(category, weight) in &self.weights {
            if target < weight {
                return category;
            }
            target -= weight;
        }
        self.weights.last().expect("mix non-empty").0
    }
}

/// Samples a concrete fault realization for an incident category, used by
/// the cluster simulator to turn trace incidents into hardware state.
pub fn sample_fault_for_category(category: IncidentCategory, rng: &mut ChaCha8Rng) -> FaultKind {
    match category {
        IncidentCategory::GpuCompute => {
            if rng.random::<f64>() < 0.5 {
                FaultKind::GpuComputeDegraded {
                    severity: rng.random_range(0.1..0.4),
                }
            } else {
                FaultKind::ThermalThrottle {
                    severity: rng.random_range(0.1..0.3),
                }
            }
        }
        IncidentCategory::GpuMemory => {
            if rng.random::<f64>() < 0.6 {
                FaultKind::RowRemapErrors {
                    correctable_errors: rng.random_range(1..30),
                }
            } else {
                FaultKind::GpuMemoryBandwidthDegraded {
                    severity: rng.random_range(0.1..0.3),
                }
            }
        }
        IncidentCategory::NvLink => FaultKind::NvLinkLanesDown {
            lanes: rng.random_range(4..40),
        },
        IncidentCategory::IbLink => FaultKind::IbLinkBer {
            severity: rng.random_range(0.15..0.5),
        },
        IncidentCategory::Nic => FaultKind::HcaDegraded {
            severity: rng.random_range(0.15..0.5),
        },
        IncidentCategory::Pcie => FaultKind::PcieDowngrade {
            severity: rng.random_range(0.3..0.5),
        },
        IncidentCategory::CpuMemory => FaultKind::CpuMemoryLatency {
            severity: rng.random_range(0.15..0.4),
        },
        IncidentCategory::Disk => FaultKind::DiskSlow {
            severity: rng.random_range(0.2..0.6),
        },
        IncidentCategory::Software => {
            if rng.random::<f64>() < 0.5 {
                FaultKind::OverlapInterference {
                    severity: rng.random_range(0.15..0.35),
                }
            } else {
                FaultKind::KernelLaunchOverhead {
                    severity: rng.random_range(0.3..0.6),
                }
            }
        }
    }
}

/// Ticket (troubleshooting) duration model calibrated to Figure 2:
/// log-normal with 38.1% of tickets above 1 day and 10.3% above 2 weeks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TicketDurationModel {
    mu: f64,
    sigma: f64,
    cap_hours: f64,
}

impl TicketDurationModel {
    /// The Figure 2 calibration.
    pub fn figure2() -> Self {
        // Solving the two-quantile system: P(X > 24h) = 0.381 and
        // P(X > 336h) = 0.103 under ln X ~ N(mu, sigma²).
        Self {
            mu: 2.3482,
            sigma: 2.7418,
            cap_hours: 600.0,
        }
    }

    /// Samples one ticket duration in hours.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        log_normal(rng, self.mu, self.sigma).min(self.cap_hours)
    }

    /// Analytic exceedance probability `P(X > hours)` (ignoring the cap).
    pub fn exceedance(&self, hours: f64) -> f64 {
        if hours <= 0.0 {
            return 1.0;
        }
        let z = (hours.ln() - self.mu) / self.sigma;
        0.5 * erfc_approx(z / std::f64::consts::SQRT_2)
    }
}

/// Abramowitz–Stegun complementary error function approximation (4.5e-4
/// absolute accuracy), enough for trace calibration checks.
fn erfc_approx(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc_approx(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// One incident in the trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct IncidentEvent {
    /// Node index.
    pub node: u32,
    /// Hour the incident started.
    pub start_hour: f64,
    /// Troubleshooting duration in hours.
    pub ticket_hours: f64,
    /// Source category.
    pub category: IncidentCategory,
}

/// Configuration of the incident-trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentTraceConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Trace length in hours (the paper's trace: 4 months ≈ 2,880 h;
    /// accuracy capping uses 2,400 h).
    pub duration_hours: f64,
    /// Mean time to the *first* incident of a fresh node (Figure 4's
    /// 719.4 h).
    pub base_mtbi_hours: f64,
    /// Hazard growth per accumulated incident (Figure 4: the 20th gap
    /// shrinks to 151.7 h ⇒ γ ≈ 1.085).
    pub wear_factor: f64,
    /// Log-scale spread of per-node frailty (lemon nodes).
    pub frailty_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IncidentTraceConfig {
    fn default() -> Self {
        Self {
            nodes: 1000,
            duration_hours: 2880.0,
            base_mtbi_hours: 719.4,
            wear_factor: (719.4f64 / 151.7).powf(1.0 / 19.0),
            frailty_sigma: 0.5,
            seed: 42,
        }
    }
}

/// A generated incident trace.
#[derive(Debug, Clone)]
pub struct IncidentTrace {
    /// All incidents, sorted by start hour.
    pub events: Vec<IncidentEvent>,
    /// The generator configuration.
    pub config: IncidentTraceConfig,
}

/// Generates the trace: each node's inter-incident gaps are exponential
/// with hazard `frailty × γ^k / base_mtbi` after `k` incidents —
/// redundancy is only partially restored by troubleshooting, so wear
/// accumulates (Section 2.2).
pub fn generate_incident_trace(config: &IncidentTraceConfig) -> IncidentTrace {
    let mix = SourceMix::azure_like();
    let tickets = TicketDurationModel::figure2();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut events = Vec::new();
    for node in 0..config.nodes {
        let frailty = log_normal(&mut rng, 0.0, config.frailty_sigma);
        let mut clock = 0.0f64;
        let mut incidents = 0u32;
        loop {
            let rate = frailty * config.wear_factor.powi(incidents as i32) / config.base_mtbi_hours;
            let gap = exponential(&mut rng, rate);
            clock += gap;
            if clock >= config.duration_hours {
                break;
            }
            let ticket_hours = tickets.sample(&mut rng);
            events.push(IncidentEvent {
                node,
                start_hour: clock,
                ticket_hours,
                category: mix.sample(&mut rng),
            });
            incidents += 1;
            // The node is down while troubleshooting runs.
            clock += ticket_hours;
        }
    }
    events.sort_by(|a, b| a.start_hour.total_cmp(&b.start_hour));
    IncidentTrace {
        events,
        config: config.clone(),
    }
}

impl IncidentTrace {
    /// Incidents of one node, sorted by start hour.
    pub fn events_of(&self, node: u32) -> Vec<&IncidentEvent> {
        self.events.iter().filter(|e| e.node == node).collect()
    }

    /// All nodes' incidents bucketed in one pass over the trace —
    /// `buckets[n]` holds node `n`'s events in start-hour order, exactly
    /// the list [`IncidentTrace::events_of`] would filter out, without
    /// the per-node full scan (which made every whole-trace statistic
    /// quadratic).
    pub fn events_by_node(&self) -> Vec<Vec<&IncidentEvent>> {
        let mut buckets: Vec<Vec<&IncidentEvent>> = vec![Vec::new(); self.config.nodes as usize];
        for e in &self.events {
            if let Some(bucket) = buckets.get_mut(e.node as usize) {
                bucket.push(e);
            }
        }
        buckets
    }

    /// Figure 1: fraction of incidents per source category.
    pub fn source_histogram(&self) -> Vec<(IncidentCategory, f64)> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.category).or_insert(0usize) += 1;
        }
        let total = self.events.len().max(1) as f64;
        let mut hist: Vec<(IncidentCategory, f64)> = counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total))
            .collect();
        hist.sort_by(|a, b| b.1.total_cmp(&a.1));
        hist
    }

    /// Figure 4 (left): mean gap between the i-th and (i+1)-th incident
    /// across nodes that reached that index. Returns `(index, mean
    /// hours, nodes)` rows for indices with at least `min_nodes` nodes.
    pub fn mean_gap_by_incident_index(&self, min_nodes: usize) -> Vec<(usize, f64, usize)> {
        let mut sums: Vec<(f64, usize)> = Vec::new();
        // Node-major, per-node time order: the same accumulation sequence
        // as the per-node filter scans, at O(N + E) instead of O(N × E).
        for events in self.events_by_node() {
            let mut prev_end = 0.0f64;
            for (i, e) in events.iter().enumerate() {
                let gap = e.start_hour - prev_end;
                if sums.len() <= i {
                    sums.resize(i + 1, (0.0, 0));
                }
                sums[i].0 += gap;
                sums[i].1 += 1;
                prev_end = e.start_hour + e.ticket_hours;
            }
        }
        sums.into_iter()
            .enumerate()
            .filter(|(_, (_, n))| *n >= min_nodes)
            .map(|(i, (sum, n))| (i + 1, sum / n as f64, n))
            .collect()
    }

    /// Figure 4 (right): expected time to failure of a gang-scheduled job
    /// over `job_nodes` nodes whose members all have `incident_index`
    /// incidents, assuming a constant per-node rate of `1 / mean gap`.
    pub fn job_time_to_failure(&self, incident_index: usize, job_nodes: usize) -> Option<f64> {
        job_time_to_failure_from(
            &self.mean_gap_by_incident_index(1),
            incident_index,
            job_nodes,
        )
    }

    /// Extracts survival samples (the Table 3 dataset): node status
    /// snapshots taken at every incident resolution and on a periodic
    /// grid, each labelled with the time to the node's next incident
    /// (censored at trace end).
    pub fn survival_samples(&self, grid_hours: f64) -> Vec<SurvivalSample> {
        let mut samples = Vec::new();
        for events in self.events_by_node() {
            let mut snapshots: Vec<f64> = Vec::new();
            let mut t = grid_hours;
            while t < self.config.duration_hours {
                snapshots.push(t);
                t += grid_hours;
            }
            snapshots.extend(events.iter().map(|e| e.start_hour + e.ticket_hours));
            snapshots.sort_by(f64::total_cmp);

            // Snapshots ascend, so the status prefix (all events strictly
            // before the snapshot) only ever grows: extend a running base
            // status once per event instead of replaying the node's whole
            // history per snapshot. The advance/record call sequence —
            // and therefore every accumulated float — is exactly the
            // per-snapshot replay's.
            let mut base = NodeStatus::fresh();
            let mut last_event_end = 0.0f64;
            let mut next_idx = 0usize;
            for &snap in &snapshots {
                if snap >= self.config.duration_hours {
                    continue;
                }
                while let Some(e) = events.get(next_idx) {
                    if e.start_hour >= snap {
                        break;
                    }
                    base.advance(e.start_hour - last_event_end);
                    base.record_incident(e.category);
                    last_event_end = e.start_hour + e.ticket_hours;
                    next_idx += 1;
                }
                // Status at the snapshot.
                let mut status = base;
                if snap > last_event_end {
                    status.advance(snap - last_event_end);
                }
                // Time to next incident.
                let (duration, event) = match events.get(next_idx) {
                    Some(e) => (e.start_hour - snap, true),
                    None => (self.config.duration_hours - snap, false),
                };
                if duration <= 0.0 {
                    continue;
                }
                samples.push(SurvivalSample {
                    status,
                    duration,
                    event,
                });
            }
        }
        samples
    }
}

/// Looks up the Figure 4 (right) expected time to failure in a
/// precomputed gap table (one row per incident index from
/// [`IncidentTrace::mean_gap_by_incident_index`]), so callers plotting
/// many job sizes reuse one table instead of recomputing the whole-trace
/// statistic per point.
pub fn job_time_to_failure_from(
    gaps: &[(usize, f64, usize)],
    incident_index: usize,
    job_nodes: usize,
) -> Option<f64> {
    let (_, mean_gap, _) = gaps.iter().find(|(i, _, _)| *i == incident_index)?;
    Some(mean_gap / job_nodes.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> IncidentTrace {
        generate_incident_trace(&IncidentTraceConfig {
            nodes: 200,
            ..IncidentTraceConfig::default()
        })
    }

    #[test]
    fn trace_is_sorted_and_in_range() {
        let trace = small_trace();
        assert!(!trace.events.is_empty());
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].start_hour <= w[1].start_hour));
        assert!(trace
            .events
            .iter()
            .all(|e| e.start_hour < 2880.0 && e.start_hour >= 0.0));
        assert!(trace.events.iter().all(|e| e.ticket_hours > 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events[0], b.events[0]);
    }

    #[test]
    fn source_mix_matches_figure1_weights() {
        let trace = generate_incident_trace(&IncidentTraceConfig {
            nodes: 1000,
            ..IncidentTraceConfig::default()
        });
        let hist = trace.source_histogram();
        let gpu = hist
            .iter()
            .find(|(c, _)| *c == IncidentCategory::GpuCompute)
            .map(|(_, f)| *f)
            .unwrap();
        assert!((gpu - 0.22).abs() < 0.03, "GPU share {gpu}");
        let total: f64 = hist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_gaps_shrink_with_incident_index() {
        let trace = generate_incident_trace(&IncidentTraceConfig {
            nodes: 2000,
            ..IncidentTraceConfig::default()
        });
        let gaps = trace.mean_gap_by_incident_index(30);
        assert!(gaps.len() >= 5, "need several indices: {}", gaps.len());
        let first = gaps[0].1;
        let later = gaps[gaps.len() - 1].1;
        assert!(
            later < first * 0.7,
            "wear visible: first {first:.1}h vs later {later:.1}h"
        );
    }

    #[test]
    fn bucketed_events_match_per_node_filters() {
        let trace = small_trace();
        let buckets = trace.events_by_node();
        assert_eq!(buckets.len(), trace.config.nodes as usize);
        for node in 0..trace.config.nodes {
            assert_eq!(buckets[node as usize], trace.events_of(node), "node {node}");
        }
    }

    #[test]
    fn gap_table_lookup_matches_direct_computation() {
        let trace = small_trace();
        let gaps = trace.mean_gap_by_incident_index(1);
        for index in [1usize, 2, 5] {
            for job_nodes in [1usize, 8, 1024] {
                assert_eq!(
                    job_time_to_failure_from(&gaps, index, job_nodes),
                    trace.job_time_to_failure(index, job_nodes)
                );
            }
        }
        assert_eq!(job_time_to_failure_from(&gaps, 100_000, 4), None);
    }

    #[test]
    fn job_scale_shrinks_time_to_failure() {
        let trace = small_trace();
        let single = trace.job_time_to_failure(1, 1).unwrap();
        let large = trace.job_time_to_failure(1, 16).unwrap();
        assert!((single / large - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ticket_distribution_matches_figure2() {
        let model = TicketDurationModel::figure2();
        // Analytic calibration checks.
        assert!((model.exceedance(24.0) - 0.381).abs() < 0.01);
        assert!((model.exceedance(336.0) - 0.103).abs() < 0.01);
        // Empirical check.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        let over_day = draws.iter().filter(|&&d| d > 24.0).count() as f64 / n as f64;
        let over_2w = draws.iter().filter(|&&d| d > 336.0).count() as f64 / n as f64;
        assert!((over_day - 0.381).abs() < 0.02, "1-day tail {over_day}");
        assert!((over_2w - 0.103).abs() < 0.02, "2-week tail {over_2w}");
    }

    #[test]
    fn survival_samples_have_valid_shapes() {
        let trace = small_trace();
        let samples = trace.survival_samples(64.0);
        assert!(samples.len() > 5_000, "sample volume: {}", samples.len());
        for s in &samples {
            assert!(s.duration > 0.0);
            assert!(s.status.uptime_hours >= 0.0);
        }
        // Censored and uncensored samples both exist.
        assert!(samples.iter().any(|s| s.event));
        assert!(samples.iter().any(|s| !s.event));
    }

    #[test]
    fn survival_statuses_track_history() {
        let trace = small_trace();
        let samples = trace.survival_samples(64.0);
        // At least some snapshots see prior incidents.
        assert!(samples.iter().any(|s| s.status.incident_count > 0));
        // Status incident counts never exceed the node's trace events.
        for s in samples.iter().take(500) {
            assert!(s.status.incident_count <= trace.events.len() as u32);
        }
    }

    #[test]
    fn fault_sampler_matches_category() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for category in IncidentCategory::ALL {
            for _ in 0..20 {
                let fault = sample_fault_for_category(category, &mut rng);
                assert_eq!(fault.category(), category, "{fault:?}");
            }
        }
    }
}

//! Synthetic node-allocation (job) request traces.

use anubis_hwsim::noise::{exponential, log_normal};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One GPU-job allocation request.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct AllocationRequest {
    /// Submission time in hours from trace start.
    pub submit_hour: f64,
    /// Requested node count.
    pub nodes: u32,
    /// Requested duration in hours.
    pub duration_hours: f64,
}

/// Configuration of the allocation-trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationConfig {
    /// Trace length in hours.
    pub duration_hours: f64,
    /// Mean inter-arrival time in hours (Poisson arrivals).
    pub mean_interarrival_hours: f64,
    /// Weighted node-count buckets (size, weight).
    pub size_mix: Vec<(u32, f64)>,
    /// Log-normal duration parameters (median `exp(mu)` hours).
    pub duration_mu: f64,
    /// Log-normal duration sigma.
    pub duration_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AllocationConfig {
    /// A stressed-replay profile for a cluster of roughly `cluster_nodes`
    /// nodes over 30 days: arrivals sized to keep the cluster saturated
    /// (the paper's simulation schedules jobs best-effort from FIFO
    /// queues).
    pub fn stressed(cluster_nodes: u32) -> Self {
        // Aim for demand ≈ 1.3× capacity: mean job = ~4.4 nodes × ~36 h
        // (training jobs run long relative to validation).
        let node_hours_per_job = 4.4 * 36.0;
        let capacity_per_hour = f64::from(cluster_nodes);
        let mean_interarrival_hours = node_hours_per_job / (1.3 * capacity_per_hour);
        Self {
            duration_hours: 720.0,
            mean_interarrival_hours,
            size_mix: vec![(1, 0.35), (2, 0.25), (4, 0.2), (8, 0.12), (16, 0.08)],
            duration_mu: 3.4, // median ≈ 30 h
            duration_sigma: 0.6,
            seed: 17,
        }
    }
}

/// Generates the Poisson allocation trace.
pub fn generate_allocation_trace(config: &AllocationConfig) -> Vec<AllocationRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut requests = Vec::new();
    let mut clock = 0.0f64;
    let rate = 1.0 / config.mean_interarrival_hours.max(1e-9);
    loop {
        clock += exponential(&mut rng, rate);
        if clock >= config.duration_hours {
            break;
        }
        let nodes = sample_size(&config.size_mix, &mut rng);
        let duration_hours =
            log_normal(&mut rng, config.duration_mu, config.duration_sigma).clamp(0.5, 168.0);
        requests.push(AllocationRequest {
            submit_hour: clock,
            nodes,
            duration_hours,
        });
    }
    requests
}

fn sample_size(mix: &[(u32, f64)], rng: &mut ChaCha8Rng) -> u32 {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut target = rng.random_range(0.0..total);
    for &(size, weight) in mix {
        if target < weight {
            return size;
        }
        target -= weight;
    }
    mix.last().map_or(1, |&(s, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_ordered_and_bounded() {
        let trace = generate_allocation_trace(&AllocationConfig::stressed(128));
        assert!(trace.len() > 100);
        assert!(trace
            .windows(2)
            .all(|w| w[0].submit_hour <= w[1].submit_hour));
        for r in &trace {
            assert!(r.submit_hour < 720.0);
            assert!(r.nodes >= 1 && r.nodes <= 16);
            assert!((0.5..=168.0).contains(&r.duration_hours));
        }
    }

    #[test]
    fn demand_oversubscribes_cluster() {
        let cluster = 128u32;
        let trace = generate_allocation_trace(&AllocationConfig::stressed(cluster));
        let demand: f64 = trace
            .iter()
            .map(|r| f64::from(r.nodes) * r.duration_hours)
            .sum();
        let capacity = f64::from(cluster) * 720.0;
        let ratio = demand / capacity;
        assert!(
            ratio > 1.05 && ratio < 1.7,
            "stressed replay keeps the queue full: {ratio}"
        );
    }

    #[test]
    fn size_mix_is_respected() {
        let trace = generate_allocation_trace(&AllocationConfig::stressed(256));
        let singles = trace.iter().filter(|r| r.nodes == 1).count() as f64;
        let frac = singles / trace.len() as f64;
        assert!((frac - 0.35).abs() < 0.05, "single-node share {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_allocation_trace(&AllocationConfig::stressed(64));
        let b = generate_allocation_trace(&AllocationConfig::stressed(64));
        assert_eq!(a, b);
    }
}

//! Fat-tree topology with redundant uplink bundles.

use std::fmt;

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Configuration values do not form a valid tree.
    InvalidConfig(String),
    /// A node index was out of range.
    UnknownNode(usize),
    /// A ToR index was out of range.
    UnknownTor(usize),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid topology config: {msg}"),
            Self::UnknownNode(n) => write!(f, "unknown node index {n}"),
            Self::UnknownTor(t) => write!(f, "unknown ToR index {t}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Configuration of a 3-tier fat tree (node → ToR → Agg(pod) → Core).
#[derive(Debug, Clone, PartialEq)]
pub struct FatTreeConfig {
    /// Number of server nodes.
    pub nodes: usize,
    /// Servers per ToR switch.
    pub nodes_per_tor: usize,
    /// ToRs per pod (sharing an aggregation layer).
    pub tors_per_pod: usize,
    /// NICs per node.
    pub nics_per_node: usize,
    /// Per-NIC line rate in Gb/s.
    pub nic_gbps: f64,
    /// Physical uplinks per ToR (to the pod aggregation layer).
    pub uplinks_per_tor: u32,
    /// How many of those uplinks are over-provisioned redundancy.
    pub redundant_uplinks_per_tor: u32,
    /// Per-uplink rate in Gb/s.
    pub uplink_gbps: f64,
    /// Aggregate pod→core capacity in Gb/s (healthy).
    pub core_gbps_per_pod: f64,
}

impl FatTreeConfig {
    /// The paper's Figure 3 testbed: 24 nodes × 8 HDR NICs, ToRs with 25%
    /// redundant uplinks.
    pub fn figure3_testbed() -> Self {
        Self {
            nodes: 24,
            nodes_per_tor: 4,
            tors_per_pod: 3,
            nics_per_node: 8,
            nic_gbps: 200.0,
            uplinks_per_tor: 40,
            redundant_uplinks_per_tor: 8,
            uplink_gbps: 200.0,
            core_gbps_per_pod: 24_000.0,
        }
    }

    /// A small synthetic cluster helper for tests and examples.
    pub fn small(nodes: usize) -> Self {
        Self {
            nodes,
            nodes_per_tor: 4,
            tors_per_pod: 2,
            nics_per_node: 8,
            nic_gbps: 200.0,
            uplinks_per_tor: 40,
            redundant_uplinks_per_tor: 8,
            uplink_gbps: 200.0,
            core_gbps_per_pod: 24_000.0,
        }
    }
}

/// Identifier of a directed capacity edge in the tree.
///
/// Bundles are full duplex: each direction has independent capacity, so
/// edges carry an explicit `up` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Index into the fat tree's bundle table.
    pub bundle: usize,
    /// Direction: `true` toward the core, `false` toward the leaves.
    pub up: bool,
}

/// Kind of a capacity bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleKind {
    /// Node access bundle (all NICs of one node).
    Access {
        /// Index of the node the bundle attaches.
        node: usize,
    },
    /// ToR uplink bundle (all parallel uplinks of one ToR).
    TorUplink {
        /// Index of the top-of-rack switch.
        tor: usize,
    },
    /// Pod-to-core bundle.
    PodCore {
        /// Index of the pod.
        pod: usize,
    },
}

/// A group of parallel physical links treated as one capacity with
/// redundancy masking.
///
/// The effective capacity models the paper's observation: breaking up to
/// half of the redundant links is absorbed (ECMP still spreads cleanly),
/// but past that, hash imbalance plus lost capacity degrade throughput
/// *superlinearly* — `working × rate × (working / total)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    /// What this bundle connects.
    pub kind: BundleKind,
    /// Total physical links.
    pub total_links: u32,
    /// Links currently down.
    pub broken_links: u32,
    /// Links up but running at degraded rate (high bit-error rate forces
    /// retransmits; the paper saw 35× more such links in tropical DCs).
    pub ber_links: u32,
    /// Fraction of nominal rate a BER-degraded link delivers.
    pub ber_rate_factor: f64,
    /// How many of `total_links` are over-provisioned redundancy.
    pub redundant_links: u32,
    /// Per-link rate in Gb/s.
    pub link_gbps: f64,
}

impl Bundle {
    fn new(kind: BundleKind, total: u32, redundant: u32, link_gbps: f64) -> Self {
        Self {
            kind,
            total_links: total,
            broken_links: 0,
            ber_links: 0,
            ber_rate_factor: 0.5,
            redundant_links: redundant,
            link_gbps,
        }
    }

    /// Links currently working.
    pub fn working_links(&self) -> u32 {
        self.total_links - self.broken_links
    }

    /// Broken links fully masked by redundancy: half the redundant links.
    pub fn masking_budget(&self) -> u32 {
        self.redundant_links / 2
    }

    /// Whether at least half of the redundant links are still up — the
    /// paper's health criterion for a ToR.
    pub fn redundancy_ok(&self) -> bool {
        self.broken_links <= self.masking_budget()
    }

    /// Effective capacity in Gb/s under the masking/congestion model.
    ///
    /// BER-degraded links stay "up" (they count toward the redundancy
    /// budget) but deliver only `ber_rate_factor` of their rate — the
    /// quintessential gray failure.
    pub fn effective_gbps(&self) -> f64 {
        let full = f64::from(self.total_links) * self.link_gbps;
        let ber = f64::from(self.ber_links.min(self.working_links()));
        let ber_loss = ber * (1.0 - self.ber_rate_factor) * self.link_gbps;
        if self.redundancy_ok() {
            // Breakage within the masking budget costs nothing (ECMP
            // spreads over the spare capacity), but BER losses are real
            // rate reductions on live links.
            (full - ber_loss).max(0.0)
        } else {
            let working = f64::from(self.working_links());
            let delivered = working * self.link_gbps - ber_loss;
            delivered.max(0.0) * (working / f64::from(self.total_links))
        }
    }
}

/// A 3-tier fat tree with mutable link state.
///
/// # Examples
///
/// ```
/// use anubis_netsim::{FatTree, FatTreeConfig};
///
/// let tree = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
/// assert_eq!(tree.nodes(), 24);
/// assert_eq!(tree.tors(), 6);
/// assert_eq!(tree.hop_distance(0, 1).unwrap(), 2); // same ToR
/// assert_eq!(tree.hop_distance(0, 4).unwrap(), 4); // same pod
/// assert_eq!(tree.hop_distance(0, 23).unwrap(), 6); // across core
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    config: FatTreeConfig,
    bundles: Vec<Bundle>,
    tor_count: usize,
    pod_count: usize,
    access_base: usize,
    uplink_base: usize,
    core_base: usize,
}

impl FatTree {
    /// Builds the tree, validating divisibility constraints.
    pub fn build(config: FatTreeConfig) -> Result<Self, NetError> {
        if config.nodes == 0 || config.nodes_per_tor == 0 || config.tors_per_pod == 0 {
            return Err(NetError::InvalidConfig("counts must be positive".into()));
        }
        if !config.nodes.is_multiple_of(config.nodes_per_tor) {
            return Err(NetError::InvalidConfig(format!(
                "{} nodes not divisible by {} nodes/ToR",
                config.nodes, config.nodes_per_tor
            )));
        }
        let tor_count = config.nodes / config.nodes_per_tor;
        if !tor_count.is_multiple_of(config.tors_per_pod) {
            return Err(NetError::InvalidConfig(format!(
                "{tor_count} ToRs not divisible by {} ToRs/pod",
                config.tors_per_pod
            )));
        }
        if config.redundant_uplinks_per_tor >= config.uplinks_per_tor {
            return Err(NetError::InvalidConfig(
                "redundant uplinks must be fewer than total uplinks".into(),
            ));
        }
        let pod_count = tor_count / config.tors_per_pod;

        let mut bundles = Vec::new();
        let access_base = bundles.len();
        for node in 0..config.nodes {
            bundles.push(Bundle::new(
                BundleKind::Access { node },
                config.nics_per_node as u32,
                0,
                config.nic_gbps,
            ));
        }
        let uplink_base = bundles.len();
        for tor in 0..tor_count {
            bundles.push(Bundle::new(
                BundleKind::TorUplink { tor },
                config.uplinks_per_tor,
                config.redundant_uplinks_per_tor,
                config.uplink_gbps,
            ));
        }
        let core_base = bundles.len();
        for pod in 0..pod_count {
            // Model the pod→core trunk as 1 Gb/s links for capacity math.
            bundles.push(Bundle::new(
                BundleKind::PodCore { pod },
                config.core_gbps_per_pod as u32,
                0,
                1.0,
            ));
        }

        Ok(Self {
            config,
            bundles,
            tor_count,
            pod_count,
            access_base,
            uplink_base,
            core_base,
        })
    }

    /// Number of server nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// Number of ToR switches.
    pub fn tors(&self) -> usize {
        self.tor_count
    }

    /// Number of pods.
    pub fn pods(&self) -> usize {
        self.pod_count
    }

    /// Configuration used to build this tree.
    pub fn config(&self) -> &FatTreeConfig {
        &self.config
    }

    /// The ToR a node hangs off.
    pub fn tor_of(&self, node: usize) -> Result<usize, NetError> {
        if node >= self.config.nodes {
            return Err(NetError::UnknownNode(node));
        }
        Ok(node / self.config.nodes_per_tor)
    }

    /// The pod a ToR belongs to.
    pub fn pod_of_tor(&self, tor: usize) -> Result<usize, NetError> {
        if tor >= self.tor_count {
            return Err(NetError::UnknownTor(tor));
        }
        Ok(tor / self.config.tors_per_pod)
    }

    /// Switch-hop distance between two nodes: 2 (same ToR), 4 (same pod) or
    /// 6 (across core).
    pub fn hop_distance(&self, a: usize, b: usize) -> Result<usize, NetError> {
        let (ta, tb) = (self.tor_of(a)?, self.tor_of(b)?);
        if ta == tb {
            return Ok(2);
        }
        if self.pod_of_tor(ta)? == self.pod_of_tor(tb)? {
            return Ok(4);
        }
        Ok(6)
    }

    /// Directed capacity edges a flow from `a` to `b` traverses.
    pub fn path(&self, a: usize, b: usize) -> Result<Vec<EdgeKey>, NetError> {
        let (ta, tb) = (self.tor_of(a)?, self.tor_of(b)?);
        let mut path = vec![EdgeKey {
            bundle: self.access_base + a,
            up: true,
        }];
        if ta != tb {
            path.push(EdgeKey {
                bundle: self.uplink_base + ta,
                up: true,
            });
            let (pa, pb) = (self.pod_of_tor(ta)?, self.pod_of_tor(tb)?);
            if pa != pb {
                path.push(EdgeKey {
                    bundle: self.core_base + pa,
                    up: true,
                });
                path.push(EdgeKey {
                    bundle: self.core_base + pb,
                    up: false,
                });
            }
            path.push(EdgeKey {
                bundle: self.uplink_base + tb,
                up: false,
            });
        }
        path.push(EdgeKey {
            bundle: self.access_base + b,
            up: false,
        });
        Ok(path)
    }

    /// Capacity in Gb/s of a directed edge.
    pub fn capacity_gbps(&self, edge: EdgeKey) -> f64 {
        self.bundles[edge.bundle].effective_gbps()
    }

    /// Immutable view of a ToR's uplink bundle.
    pub fn tor_uplinks(&self, tor: usize) -> Result<&Bundle, NetError> {
        if tor >= self.tor_count {
            return Err(NetError::UnknownTor(tor));
        }
        Ok(&self.bundles[self.uplink_base + tor])
    }

    /// Breaks `count` uplinks on a ToR (saturating).
    pub fn break_tor_uplinks(&mut self, tor: usize, count: u32) -> Result<(), NetError> {
        if tor >= self.tor_count {
            return Err(NetError::UnknownTor(tor));
        }
        let bundle = &mut self.bundles[self.uplink_base + tor];
        bundle.broken_links = (bundle.broken_links + count).min(bundle.total_links);
        Ok(())
    }

    /// Repairs a ToR's uplinks back to `broken <= masking budget`
    /// (the partial fix operators apply to unblock a workload) or fully
    /// when `full` is set.
    pub fn repair_tor_uplinks(&mut self, tor: usize, full: bool) -> Result<(), NetError> {
        if tor >= self.tor_count {
            return Err(NetError::UnknownTor(tor));
        }
        let bundle = &mut self.bundles[self.uplink_base + tor];
        if full {
            bundle.broken_links = 0;
        } else {
            bundle.broken_links = bundle.broken_links.min(bundle.masking_budget());
        }
        Ok(())
    }

    /// Marks `count` uplinks of a ToR as BER-degraded (up, but delivering
    /// `rate_factor` of nominal).
    pub fn set_tor_uplink_ber(
        &mut self,
        tor: usize,
        count: u32,
        rate_factor: f64,
    ) -> Result<(), NetError> {
        if tor >= self.tor_count {
            return Err(NetError::UnknownTor(tor));
        }
        let bundle = &mut self.bundles[self.uplink_base + tor];
        bundle.ber_links = count.min(bundle.total_links);
        bundle.ber_rate_factor = rate_factor.clamp(0.0, 1.0);
        Ok(())
    }

    /// Whether every ToR satisfies the ≥50%-redundant-links-up criterion.
    pub fn all_tors_redundancy_ok(&self) -> bool {
        (0..self.tor_count).all(|t| self.bundles[self.uplink_base + t].redundancy_ok())
    }

    /// All bundles (for diagnostics).
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> FatTree {
        FatTree::build(FatTreeConfig::figure3_testbed()).unwrap()
    }

    #[test]
    fn builds_figure3_testbed() {
        let t = tree();
        assert_eq!(t.nodes(), 24);
        assert_eq!(t.tors(), 6);
        assert_eq!(t.pods(), 2);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = FatTreeConfig::figure3_testbed();
        c.nodes = 23;
        assert!(matches!(FatTree::build(c), Err(NetError::InvalidConfig(_))));
        let mut c = FatTreeConfig::figure3_testbed();
        c.redundant_uplinks_per_tor = c.uplinks_per_tor;
        assert!(FatTree::build(c).is_err());
        let mut c = FatTreeConfig::figure3_testbed();
        c.nodes_per_tor = 0;
        assert!(FatTree::build(c).is_err());
    }

    #[test]
    fn hop_distances() {
        let t = tree();
        assert_eq!(t.hop_distance(0, 3).unwrap(), 2);
        assert_eq!(t.hop_distance(0, 4).unwrap(), 4);
        assert_eq!(t.hop_distance(0, 8).unwrap(), 4);
        assert_eq!(t.hop_distance(0, 12).unwrap(), 6);
        assert!(t.hop_distance(0, 99).is_err());
    }

    #[test]
    fn paths_have_expected_shape() {
        let t = tree();
        assert_eq!(t.path(0, 1).unwrap().len(), 2); // access up + access down
        assert_eq!(t.path(0, 4).unwrap().len(), 4); // + two uplink bundles
        assert_eq!(t.path(0, 20).unwrap().len(), 6); // + two core bundles
                                                     // Directions: first edge is up, last is down.
        let p = t.path(0, 20).unwrap();
        assert!(p.first().unwrap().up);
        assert!(!p.last().unwrap().up);
    }

    #[test]
    fn redundancy_masking_then_superlinear_loss() {
        let mut t = tree();
        let healthy = t.tor_uplinks(0).unwrap().effective_gbps();
        assert_eq!(healthy, 8000.0);
        t.break_tor_uplinks(0, 4).unwrap(); // within budget (8/2 = 4)
        assert_eq!(t.tor_uplinks(0).unwrap().effective_gbps(), 8000.0);
        assert!(t.all_tors_redundancy_ok());
        t.break_tor_uplinks(0, 1).unwrap(); // past budget
        let degraded = t.tor_uplinks(0).unwrap().effective_gbps();
        assert!(degraded < 6400.0, "superlinear loss: {degraded}");
        assert!(!t.all_tors_redundancy_ok());
    }

    #[test]
    fn partial_repair_restores_masking_only() {
        let mut t = tree();
        t.break_tor_uplinks(0, 7).unwrap();
        assert!(!t.tor_uplinks(0).unwrap().redundancy_ok());
        t.repair_tor_uplinks(0, false).unwrap();
        let b = t.tor_uplinks(0).unwrap();
        assert!(b.redundancy_ok());
        assert_eq!(
            b.broken_links, 4,
            "hidden damage remains after partial repair"
        );
        t.repair_tor_uplinks(0, true).unwrap();
        assert_eq!(t.tor_uplinks(0).unwrap().broken_links, 0);
    }

    #[test]
    fn ber_links_degrade_capacity_without_breaking_redundancy() {
        let mut t = tree();
        let healthy = t.tor_uplinks(0).unwrap().effective_gbps();
        t.set_tor_uplink_ber(0, 10, 0.5).unwrap();
        let bundle = t.tor_uplinks(0).unwrap();
        assert!(bundle.redundancy_ok(), "BER links still count as up");
        let degraded = bundle.effective_gbps();
        // 10 links at half rate: 8000 - 10*200*0.5 = 7000.
        assert!((degraded - (healthy - 1000.0)).abs() < 1e-9, "{degraded}");
        // BER on top of breakage compounds.
        t.break_tor_uplinks(0, 6).unwrap();
        let both = t.tor_uplinks(0).unwrap().effective_gbps();
        assert!(both < degraded);
    }

    #[test]
    fn break_saturates_at_total() {
        let mut t = tree();
        t.break_tor_uplinks(0, 1000).unwrap();
        assert_eq!(t.tor_uplinks(0).unwrap().working_links(), 0);
        assert_eq!(t.tor_uplinks(0).unwrap().effective_gbps(), 0.0);
    }
}

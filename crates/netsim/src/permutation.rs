//! Ring-order permutation analysis.
//!
//! Section 2.3 of the paper: all-reduce rings over the *same* node set have
//! `n!` possible orders, and different orders use different link sets — so
//! a defective link only impacts certain node scales and orders, which is
//! why exhaustive validation over orders is infeasible and why the scan
//! schedulers of Appendix A validate links instead. This module quantifies
//! that observation on the simulator: given a fabric with degraded links,
//! it measures how ring bandwidth varies across sampled permutations.

use crate::collective::ring_allreduce_busbw;
use crate::topology::{FatTree, NetError};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Bandwidth statistics across sampled ring permutations.
#[derive(Debug, Clone, PartialEq)]
pub struct PermutationSpread {
    /// Bus bandwidth of each sampled permutation (GB/s).
    pub bandwidths: Vec<f64>,
    /// Fraction of sampled permutations that avoid the degradation
    /// entirely (within 2% of the best permutation).
    pub unaffected_fraction: f64,
}

impl PermutationSpread {
    /// Fastest sampled permutation.
    pub fn best(&self) -> f64 {
        self.bandwidths
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Slowest sampled permutation.
    pub fn worst(&self) -> f64 {
        self.bandwidths
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Relative spread `(best − worst) / best`.
    pub fn relative_spread(&self) -> f64 {
        let best = self.best();
        if best <= 0.0 {
            return 0.0;
        }
        (best - self.worst()) / best
    }
}

/// Samples `count` random ring orders over `nodes` and measures each
/// order's all-reduce bus bandwidth.
///
/// On a healthy fabric every order performs identically; with degraded
/// links, orders that route both ring directions through the hurt ToR
/// regress while others don't — the paper's "defective links only impact
/// certain node scale and order".
pub fn ring_permutation_spread(
    tree: &FatTree,
    nodes: &[usize],
    count: usize,
    seed: u64,
) -> Result<PermutationSpread, NetError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = nodes.to_vec();
    let mut bandwidths = Vec::with_capacity(count.max(1));
    // Always include the identity order so results are comparable.
    bandwidths.push(ring_allreduce_busbw(tree, &order)?);
    for _ in 1..count.max(1) {
        order.shuffle(&mut rng);
        bandwidths.push(ring_allreduce_busbw(tree, &order)?);
    }
    let best = bandwidths.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let unaffected =
        bandwidths.iter().filter(|&&b| b >= best * 0.98).count() as f64 / bandwidths.len() as f64;
    Ok(PermutationSpread {
        bandwidths,
        unaffected_fraction: unaffected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeConfig;

    fn tree() -> FatTree {
        FatTree::build(FatTreeConfig::figure3_testbed()).unwrap()
    }

    #[test]
    fn healthy_fabric_is_order_insensitive() {
        let tree = tree();
        let nodes: Vec<usize> = (0..12).collect();
        let spread = ring_permutation_spread(&tree, &nodes, 24, 7).unwrap();
        assert!(
            spread.relative_spread() < 0.01,
            "healthy spread {:.4}",
            spread.relative_spread()
        );
        assert_eq!(spread.unaffected_fraction, 1.0);
    }

    #[test]
    fn degraded_links_hit_only_some_orders() {
        let mut tree = tree();
        // One ToR heavily degraded: rings whose consecutive pairs cross it
        // regress; rings that only touch it via lightly-loaded hops less so.
        tree.break_tor_uplinks(1, 36).unwrap();
        // Use a node set where ToR 1's nodes (4..8) participate.
        let nodes: Vec<usize> = (0..16).collect();
        let spread = ring_permutation_spread(&tree, &nodes, 48, 11).unwrap();
        assert!(
            spread.relative_spread() > 0.02,
            "orders must differ: {:.4}",
            spread.relative_spread()
        );
        assert!(spread.worst() < spread.best());
    }

    #[test]
    fn single_permutation_is_supported() {
        let tree = tree();
        let nodes: Vec<usize> = (0..8).collect();
        let spread = ring_permutation_spread(&tree, &nodes, 1, 3).unwrap();
        assert_eq!(spread.bandwidths.len(), 1);
        assert_eq!(spread.unaffected_fraction, 1.0);
    }
}

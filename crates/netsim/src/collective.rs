//! Collective-communication bandwidth estimation over the fat tree.

use crate::congestion::{max_min_rates, Flow};
use crate::topology::{FatTree, NetError};

/// Protocol efficiency on top of raw link shares (headers, pacing).
const PROTOCOL_EFFICIENCY: f64 = 0.97;

/// Bus bandwidths (GB/s) of 2-node all-reduce pairs running
/// **simultaneously** — the Figure 3 experiment.
///
/// Each pair exchanges traffic in both directions; the pair's all-reduce is
/// gated by its slower direction. Returns one bus bandwidth per input pair.
pub fn concurrent_pair_bandwidths(
    tree: &FatTree,
    pairs: &[(usize, usize)],
) -> Result<Vec<f64>, NetError> {
    let mut flows = Vec::with_capacity(pairs.len() * 2);
    for &(a, b) in pairs {
        flows.push(Flow::new(tree.path(a, b)?));
        flows.push(Flow::new(tree.path(b, a)?));
    }
    let rates = max_min_rates(&flows, |e| tree.capacity_gbps(e));
    Ok(pairs
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let forward = rates[2 * i];
            let backward = rates[2 * i + 1];
            forward.min(backward) / 8.0 * PROTOCOL_EFFICIENCY
        })
        .collect())
}

/// Bus bandwidth (GB/s) of a single ring all-reduce over `ring` nodes,
/// with no other traffic.
///
/// A ring creates flows between consecutive members (in ring order, both
/// the reduce-scatter and all-gather phases use the same neighbour links);
/// the collective runs at the pace of the slowest link share.
pub fn ring_allreduce_busbw(tree: &FatTree, ring: &[usize]) -> Result<f64, NetError> {
    if ring.len() < 2 {
        return Ok(f64::INFINITY);
    }
    let mut flows = Vec::with_capacity(ring.len());
    for i in 0..ring.len() {
        let a = ring[i];
        let b = ring[(i + 1) % ring.len()];
        flows.push(Flow::new(tree.path(a, b)?));
    }
    let rates = max_min_rates(&flows, |e| tree.capacity_gbps(e));
    let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(min_rate / 8.0 * PROTOCOL_EFFICIENCY)
}

/// Seconds for a ring all-reduce of `bytes` per rank over `ring` nodes.
pub fn ring_allreduce_time_s(tree: &FatTree, ring: &[usize], bytes: f64) -> Result<f64, NetError> {
    let n = ring.len();
    if n < 2 {
        return Ok(0.0);
    }
    let busbw = ring_allreduce_busbw(tree, ring)?;
    if busbw <= 0.0 {
        return Ok(f64::INFINITY);
    }
    let factor = 2.0 * (n as f64 - 1.0) / n as f64;
    Ok(factor * bytes / (busbw * 1e9))
}

/// Completion time (seconds) of an all-to-all exchanging `bytes_per_pair`
/// between every ordered pair of `nodes` simultaneously.
pub fn all_to_all_completion_s(
    tree: &FatTree,
    nodes: &[usize],
    bytes_per_pair: f64,
) -> Result<f64, NetError> {
    if nodes.len() < 2 {
        return Ok(0.0);
    }
    let mut flows = Vec::new();
    for &a in nodes {
        for &b in nodes {
            if a != b {
                flows.push(Flow::new(tree.path(a, b)?));
            }
        }
    }
    let rates = max_min_rates(&flows, |e| tree.capacity_gbps(e));
    let slowest = rates.iter().copied().fold(f64::INFINITY, f64::min);
    if slowest <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(bytes_per_pair / (slowest / 8.0 * PROTOCOL_EFFICIENCY * 1e9))
}

/// All-gather bus bandwidth (GB/s) over a ring of nodes (same traffic
/// pattern as the all-gather phase of ring all-reduce).
pub fn all_gather_busbw(tree: &FatTree, ring: &[usize]) -> Result<f64, NetError> {
    ring_allreduce_busbw(tree, ring)
}

/// Bus bandwidth (GB/s) of a binary-**tree** all-reduce over `members`
/// (the other algorithm the paper names for collectives).
///
/// The reduce phase sends child→parent and the broadcast phase
/// parent→child; the two phases pipeline over the same links in opposite
/// directions, so the collective runs at the pace of the slowest
/// child↔parent share with both phases' flows live concurrently.
pub fn tree_allreduce_busbw(tree: &FatTree, members: &[usize]) -> Result<f64, NetError> {
    if members.len() < 2 {
        return Ok(f64::INFINITY);
    }
    let mut flows = Vec::with_capacity(2 * (members.len() - 1));
    for i in 1..members.len() {
        let parent = members[(i - 1) / 2];
        let child = members[i];
        flows.push(Flow::new(tree.path(child, parent)?)); // reduce
        flows.push(Flow::new(tree.path(parent, child)?)); // broadcast
    }
    let rates = max_min_rates(&flows, |e| tree.capacity_gbps(e));
    let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(min_rate / 8.0 * PROTOCOL_EFFICIENCY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeConfig;

    fn tree() -> FatTree {
        FatTree::build(FatTreeConfig::figure3_testbed()).unwrap()
    }

    /// Perfect matching of all 24 nodes into 12 cross-ToR pairs.
    fn cross_tor_pairs() -> Vec<(usize, usize)> {
        (0..12).map(|i| (i, i + 12)).collect()
    }

    #[test]
    fn healthy_pairs_reach_nic_line_rate() {
        let tree = tree();
        let bws = concurrent_pair_bandwidths(&tree, &cross_tor_pairs()).unwrap();
        for bw in &bws {
            // 8 NICs × 200 Gb/s = 1600 Gb/s = 200 GB/s; expect near that.
            assert!(*bw > 180.0, "healthy pair bandwidth {bw}");
        }
    }

    #[test]
    fn same_tor_pairs_skip_uplinks() {
        let mut tree = tree();
        tree.break_tor_uplinks(0, 40).unwrap();
        // Nodes 0..4 share ToR 0 — their pair traffic never leaves the ToR.
        let bws = concurrent_pair_bandwidths(&tree, &[(0, 1), (2, 3)]).unwrap();
        for bw in bws {
            assert!(bw > 180.0, "intra-ToR pair unaffected: {bw}");
        }
    }

    #[test]
    fn broken_redundancy_congests_cross_tor_pairs() {
        let mut tree = tree();
        // Break past the masking budget on ToR 0 (budget = 4).
        tree.break_tor_uplinks(0, 12).unwrap();
        let bws = concurrent_pair_bandwidths(&tree, &cross_tor_pairs()).unwrap();
        // Pairs whose endpoint sits under ToR 0 (nodes 0..4) are degraded.
        for (i, bw) in bws.iter().enumerate() {
            if i < 4 {
                assert!(*bw < 180.0, "pair {i} should be congested: {bw}");
            } else {
                assert!(*bw > 180.0, "pair {i} should be clean: {bw}");
            }
        }
    }

    #[test]
    fn masked_breakage_does_not_congest() {
        let mut tree = tree();
        tree.break_tor_uplinks(0, 4).unwrap(); // exactly the budget
        let bws = concurrent_pair_bandwidths(&tree, &cross_tor_pairs()).unwrap();
        for bw in bws {
            assert!(bw > 180.0, "masked breakage: {bw}");
        }
    }

    #[test]
    fn ring_allreduce_healthy_busbw() {
        let tree = tree();
        let ring: Vec<usize> = (0..8).collect();
        let busbw = ring_allreduce_busbw(&tree, &ring).unwrap();
        assert!(busbw > 150.0, "busbw {busbw}");
        let t = ring_allreduce_time_s(&tree, &ring, 1e9).unwrap();
        // 2*(7/8) * 1 GB / busbw ≈ 9 ms at ~194 GB/s.
        assert!(t > 0.005 && t < 0.02, "time {t}");
    }

    #[test]
    fn ring_degrades_with_broken_uplinks() {
        let mut tree = tree();
        let ring: Vec<usize> = (0..24).collect();
        let healthy = ring_allreduce_busbw(&tree, &ring).unwrap();
        tree.break_tor_uplinks(2, 36).unwrap();
        let degraded = ring_allreduce_busbw(&tree, &ring).unwrap();
        assert!(degraded < healthy, "{healthy} -> {degraded}");
    }

    #[test]
    fn trivial_collectives() {
        let tree = tree();
        assert!(ring_allreduce_busbw(&tree, &[0]).unwrap().is_infinite());
        assert_eq!(ring_allreduce_time_s(&tree, &[0], 1e9).unwrap(), 0.0);
        assert_eq!(all_to_all_completion_s(&tree, &[3], 1e9).unwrap(), 0.0);
    }

    #[test]
    fn all_to_all_stresses_uplinks_more_than_pairs() {
        let tree = tree();
        let nodes: Vec<usize> = (0..24).collect();
        let t_all = all_to_all_completion_s(&tree, &nodes, 1e8).unwrap();
        assert!(t_all.is_finite() && t_all > 0.0);
        // With fully broken uplinks the all-to-all cannot complete.
        let mut broken = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        for tor in 0..6 {
            broken.break_tor_uplinks(tor, 40).unwrap();
        }
        assert!(all_to_all_completion_s(&broken, &nodes, 1e8)
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn tree_allreduce_healthy_and_degraded() {
        let tree = tree();
        let members: Vec<usize> = (0..8).collect();
        let healthy = tree_allreduce_busbw(&tree, &members).unwrap();
        // The tree root (node 0) serves two children concurrently per
        // direction, so its access bundle is shared: below a pairwise
        // exchange but still substantial.
        assert!(healthy > 60.0 && healthy < 200.0, "tree busbw {healthy}");
        let mut broken = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        broken.break_tor_uplinks(1, 36).unwrap();
        let worse = tree_allreduce_busbw(&broken, &(4..12).collect::<Vec<_>>()).unwrap();
        let baseline = tree_allreduce_busbw(&tree, &(4..12).collect::<Vec<_>>()).unwrap();
        assert!(worse < baseline, "{baseline} -> {worse}");
        assert!(tree_allreduce_busbw(&tree, &[0]).unwrap().is_infinite());
    }

    #[test]
    fn all_gather_matches_ring() {
        let tree = tree();
        let ring: Vec<usize> = (0..6).collect();
        assert_eq!(
            all_gather_busbw(&tree, &ring).unwrap(),
            ring_allreduce_busbw(&tree, &ring).unwrap()
        );
    }
}

//! Fat-tree / Clos network simulator.
//!
//! The paper's Figure 3 regression (2-node all-reduce bandwidth collapsing
//! once a ToR loses more than half of its redundant uplinks) and the
//! Appendix A networking-validation schedulers both need a network
//! substrate. This crate provides:
//!
//! - [`topology`]: a k-tier fat-tree builder with per-ToR redundant uplink
//!   bundles, hop distances, and flow paths;
//! - [`congestion`]: max–min fair (progressive-filling) bandwidth
//!   allocation for concurrent flows;
//! - [`collective`]: 2-node pairwise bandwidth, ring all-reduce,
//!   all-gather and all-to-all time/bandwidth estimation over the topology;
//! - [`scan`]: Appendix A's O(n) circle-method full pairwise scan and the
//!   O(1) topology-aware quick scan.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod collective;
pub mod congestion;
pub mod permutation;
pub mod scan;
pub mod topology;

pub use collective::{concurrent_pair_bandwidths, ring_allreduce_busbw, tree_allreduce_busbw};
pub use congestion::{max_min_rates, Flow};
pub use permutation::{ring_permutation_spread, PermutationSpread};
pub use scan::{full_scan_rounds, quick_scan_rounds};
pub use topology::{FatTree, FatTreeConfig, NetError};

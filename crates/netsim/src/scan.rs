//! Appendix A networking-validation schedulers.
//!
//! Pairwise RDMA scans must cover node pairs without colliding on NICs.
//! The paper gives two schedules:
//!
//! - **Full scan, O(n) rounds**: all `n(n−1)/2` pairs scheduled into `n−1`
//!   rounds of `n/2` disjoint pairs using the circle method from
//!   round-robin tournaments (Kirkman 1847).
//! - **Quick scan, O(1) rounds**: topology-aware; one round per tree tier
//!   (2-hop, 4-hop, 6-hop, …) pairing every node exactly once per round,
//!   independent of cluster size.

use crate::topology::{FatTree, NetError};

/// Schedules all pairs of `n` nodes into rounds of disjoint pairs via the
/// circle method.
///
/// For even `n` this yields exactly `n − 1` rounds of `n / 2` pairs; odd
/// `n` gets `n` rounds with one node idle per round. `n < 2` yields no
/// rounds.
///
/// # Examples
///
/// ```
/// use anubis_netsim::full_scan_rounds;
///
/// let rounds = full_scan_rounds(8);
/// assert_eq!(rounds.len(), 7);
/// assert!(rounds.iter().all(|r| r.len() == 4));
/// ```
pub fn full_scan_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    // Pad odd n with a phantom node that makes its partner idle.
    let m = if n.is_multiple_of(2) { n } else { n + 1 };
    let phantom = m - 1;
    // Circle method: node m−1 is fixed; the rest rotate.
    let mut circle: Vec<usize> = (0..m - 1).collect();
    let mut rounds = Vec::with_capacity(m - 1);
    for _ in 0..m - 1 {
        let mut round = Vec::with_capacity(m / 2);
        // Fixed node pairs with the head of the circle.
        let head = circle[0];
        if phantom < n || head < n {
            let (a, b) = (head.min(phantom), head.max(phantom));
            if b < n {
                round.push((a, b));
            }
        }
        for k in 1..m / 2 {
            let a = circle[k];
            let b = circle[m - 1 - k];
            let (a, b) = (a.min(b), a.max(b));
            if b < n {
                round.push((a, b));
            }
        }
        rounds.push(round);
        circle.rotate_right(1);
    }
    rounds
}

/// Topology-aware quick scan: one round per hop tier.
///
/// For every tier (2-hop: same ToR; 4-hop: same pod, different ToR; 6-hop:
/// across core) the scheduler pairs each node exactly once, preferring
/// partners at exactly that distance. Rounds whose tier does not exist in
/// the topology (e.g. 6-hop in a single-pod cluster) are omitted, so a
/// k-tier tree always needs at most k rounds regardless of node count.
pub fn quick_scan_rounds(tree: &FatTree) -> Result<Vec<Vec<(usize, usize)>>, NetError> {
    let n = tree.nodes();
    let mut rounds = Vec::new();
    for hops in [2usize, 4, 6] {
        let mut used = vec![false; n];
        let mut round = Vec::new();
        for a in 0..n {
            if used[a] {
                continue;
            }
            // Greedy partner search at exactly `hops` distance.
            let partner =
                (a + 1..n).find(|&b| !used[b] && tree.hop_distance(a, b).unwrap_or(0) == hops);
            if let Some(b) = partner {
                used[a] = true;
                used[b] = true;
                round.push((a, b));
            }
        }
        if !round.is_empty() {
            rounds.push(round);
        }
    }
    Ok(rounds)
}

/// Verifies that a schedule's rounds are NIC-disjoint (no node appears
/// twice in a round). Returns the offending round index if any.
pub fn find_conflicting_round(rounds: &[Vec<(usize, usize)>]) -> Option<usize> {
    for (i, round) in rounds.iter().enumerate() {
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in round {
            if !seen.insert(a) || !seen.insert(b) {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeConfig;
    use std::collections::HashSet;

    #[test]
    fn full_scan_covers_all_pairs_exactly_once() {
        for n in [2usize, 4, 6, 8, 16, 24] {
            let rounds = full_scan_rounds(n);
            assert_eq!(rounds.len(), n - 1, "n = {n}");
            let mut seen = HashSet::new();
            for round in &rounds {
                assert_eq!(round.len(), n / 2, "perfect matching for n = {n}");
                for &(a, b) in round {
                    assert!(a < b && b < n);
                    assert!(seen.insert((a, b)), "pair ({a},{b}) duplicated");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "full coverage for n = {n}");
        }
    }

    #[test]
    fn full_scan_rounds_are_nic_disjoint() {
        for n in [4usize, 8, 24, 64] {
            assert_eq!(
                find_conflicting_round(&full_scan_rounds(n)),
                None,
                "n = {n}"
            );
        }
    }

    #[test]
    fn full_scan_handles_odd_and_tiny_counts() {
        assert!(full_scan_rounds(0).is_empty());
        assert!(full_scan_rounds(1).is_empty());
        let rounds = full_scan_rounds(5);
        // Odd n: every pair still appears exactly once.
        let mut seen = HashSet::new();
        for round in &rounds {
            for &(a, b) in round {
                assert!(seen.insert((a, b)));
            }
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(find_conflicting_round(&rounds), None);
    }

    #[test]
    fn quick_scan_is_constant_rounds() {
        let small = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let mut big_cfg = FatTreeConfig::figure3_testbed();
        big_cfg.nodes = 96;
        let big = FatTree::build(big_cfg).unwrap();
        let r_small = quick_scan_rounds(&small).unwrap();
        let r_big = quick_scan_rounds(&big).unwrap();
        assert_eq!(r_small.len(), 3, "2/4/6-hop tiers");
        assert_eq!(r_big.len(), 3, "same number of rounds at 4x the scale");
    }

    #[test]
    fn quick_scan_pairs_match_requested_distance() {
        let tree = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let rounds = quick_scan_rounds(&tree).unwrap();
        let expected = [2usize, 4, 6];
        for (round, &hops) in rounds.iter().zip(&expected) {
            for &(a, b) in round {
                assert_eq!(tree.hop_distance(a, b).unwrap(), hops);
            }
        }
    }

    #[test]
    fn quick_scan_includes_every_node_where_possible() {
        let tree = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
        let rounds = quick_scan_rounds(&tree).unwrap();
        // 24 nodes, 4 per ToR: the 2-hop round pairs all 24 nodes.
        assert_eq!(rounds[0].len(), 12);
        assert_eq!(find_conflicting_round(&rounds), None);
    }

    #[test]
    fn conflict_detector_catches_reuse() {
        let bad = vec![vec![(0, 1), (1, 2)]];
        assert_eq!(find_conflicting_round(&bad), Some(0));
    }
}

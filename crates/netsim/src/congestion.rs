//! Max–min fair bandwidth allocation (progressive filling).

use crate::topology::EdgeKey;
use std::collections::BTreeMap;

/// A greedy flow: wants as much bandwidth as its path allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Directed edges the flow traverses.
    pub path: Vec<EdgeKey>,
}

impl Flow {
    /// Creates a flow over the given path.
    pub fn new(path: Vec<EdgeKey>) -> Self {
        Self { path }
    }
}

/// Computes max–min fair rates for concurrent flows.
///
/// Classic progressive filling: repeatedly find the most constrained edge
/// (smallest `remaining capacity / unfrozen flows crossing it`), freeze the
/// flows crossing it at that fair share, subtract, and continue. Flows with
/// empty paths (loopback) get `f64::INFINITY`.
///
/// `capacity(edge)` supplies the capacity of each directed edge in the same
/// unit the returned rates use.
pub fn max_min_rates(flows: &[Flow], capacity: impl Fn(EdgeKey) -> f64) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![f64::INFINITY; n];
    if n == 0 {
        return rates;
    }

    // Edge -> (remaining capacity, unfrozen flow indices). Ordered map:
    // the bottleneck search below keeps the first edge on a tied share,
    // so iteration order is load-bearing — `BTreeMap` pins the tie-break
    // to `EdgeKey` order regardless of hasher seeding.
    let mut edges: BTreeMap<EdgeKey, (f64, Vec<usize>)> = BTreeMap::new();
    for (i, flow) in flows.iter().enumerate() {
        for &edge in &flow.path {
            edges
                .entry(edge)
                .or_insert_with(|| (capacity(edge), Vec::new()))
                .1
                .push(i);
        }
    }
    let mut frozen = vec![false; n];
    // Every iteration freezes at least one flow, so n iterations suffice.
    for _ in 0..n {
        // Find the bottleneck edge among edges with unfrozen flows.
        let mut bottleneck: Option<(EdgeKey, f64)> = None;
        for (&edge, (remaining, members)) in &edges {
            let active = members.iter().filter(|&&i| !frozen[i]).count();
            if active == 0 {
                continue;
            }
            let share = (*remaining / active as f64).max(0.0);
            match bottleneck {
                Some((_, best)) if share >= best => {}
                _ => bottleneck = Some((edge, share)),
            }
        }
        let Some((edge, share)) = bottleneck else {
            break;
        };
        // Freeze every unfrozen flow on the bottleneck at the fair share,
        // then subtract their rate from every edge they cross.
        let members: Vec<usize> = edges[&edge]
            .1
            .iter()
            .copied()
            .filter(|&i| !frozen[i])
            .collect();
        for &i in &members {
            frozen[i] = true;
            rates[i] = share;
            for &e in &flows[i].path {
                if let Some((remaining, _)) = edges.get_mut(&e) {
                    *remaining = (*remaining - share).max(0.0);
                }
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(bundle: usize) -> EdgeKey {
        EdgeKey { bundle, up: true }
    }

    #[test]
    fn single_flow_gets_min_capacity_on_path() {
        let caps = |e: EdgeKey| if e.bundle == 0 { 10.0 } else { 4.0 };
        let flows = vec![Flow::new(vec![edge(0), edge(1)])];
        let rates = max_min_rates(&flows, caps);
        assert_eq!(rates, vec![4.0]);
    }

    #[test]
    fn equal_flows_share_fairly() {
        let flows = vec![
            Flow::new(vec![edge(0)]),
            Flow::new(vec![edge(0)]),
            Flow::new(vec![edge(0)]),
        ];
        let rates = max_min_rates(&flows, |_| 9.0);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_parking_lot() {
        // Flow A crosses both links; flows B and C cross one each.
        // Max–min: A = 5 (bottleneck on the shared 10-capacity links),
        // B = C = 5.
        let flows = vec![
            Flow::new(vec![edge(0), edge(1)]),
            Flow::new(vec![edge(0)]),
            Flow::new(vec![edge(1)]),
        ];
        let rates = max_min_rates(&flows, |_| 10.0);
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 5.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn unbalanced_bottleneck_redistributes() {
        // Two flows share edge 0 (cap 10); one of them also crosses edge 1
        // (cap 2). Max–min: constrained flow gets 2, the other picks up 8.
        let caps = |e: EdgeKey| if e.bundle == 1 { 2.0 } else { 10.0 };
        let flows = vec![Flow::new(vec![edge(0), edge(1)]), Flow::new(vec![edge(0)])];
        let rates = max_min_rates(&flows, caps);
        assert!((rates[0] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 8.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let up = EdgeKey {
            bundle: 0,
            up: true,
        };
        let down = EdgeKey {
            bundle: 0,
            up: false,
        };
        let flows = vec![Flow::new(vec![up]), Flow::new(vec![down])];
        let rates = max_min_rates(&flows, |_| 7.0);
        assert_eq!(rates, vec![7.0, 7.0]);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let flows = vec![Flow::new(vec![])];
        let rates = max_min_rates(&flows, |_| 1.0);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn no_flows() {
        assert!(max_min_rates(&[], |_| 1.0).is_empty());
    }

    #[test]
    fn rates_never_exceed_any_edge_capacity_sum() {
        // Total allocation through an edge never exceeds its capacity.
        let flows: Vec<Flow> = (0..5).map(|_| Flow::new(vec![edge(0), edge(1)])).collect();
        let rates = max_min_rates(&flows, |e| if e.bundle == 0 { 6.0 } else { 100.0 });
        let total: f64 = rates.iter().sum();
        assert!(total <= 6.0 + 1e-9, "total {total}");
    }
}

//! Property-based tests for topology, congestion and scan invariants.

use anubis_netsim::congestion::{max_min_rates, Flow};
use anubis_netsim::{full_scan_rounds, quick_scan_rounds, FatTree, FatTreeConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn tree_of(nodes: usize) -> FatTree {
    let mut config = FatTreeConfig::figure3_testbed();
    config.nodes = nodes;
    FatTree::build(config).expect("multiple of 24 fits the tree")
}

proptest! {
    /// Every node pair has a valid path: starts with an up edge out of the
    /// source's access bundle, ends with a down edge, and has the length
    /// its hop distance implies.
    #[test]
    fn paths_are_well_formed(scale in 1usize..6, a in 0usize..24, b in 0usize..24) {
        let tree = tree_of(24 * scale);
        prop_assume!(a != b);
        let path = tree.path(a, b).unwrap();
        prop_assert!(path.first().unwrap().up);
        prop_assert!(!path.last().unwrap().up);
        let expected_len = match tree.hop_distance(a, b).unwrap() {
            2 => 2,
            4 => 4,
            6 => 6,
            other => panic!("unexpected hop distance {other}"),
        };
        prop_assert_eq!(path.len(), expected_len);
        // Every edge has positive healthy capacity.
        for &edge in &path {
            prop_assert!(tree.capacity_gbps(edge) > 0.0);
        }
    }

    /// Max–min allocations never oversubscribe any edge and always
    /// saturate at least one bottleneck per flow.
    #[test]
    fn max_min_is_feasible_and_pareto(
        flow_count in 1usize..24,
        seed in 0u64..1000,
    ) {
        let tree = tree_of(24);
        // Deterministic pseudo-random distinct pairs from the seed.
        let mut flows = Vec::new();
        let mut paths = Vec::new();
        for k in 0..flow_count {
            let a = ((seed as usize + k * 7) % 24) as usize;
            let mut b = ((seed as usize / 3 + k * 13) % 24) as usize;
            if a == b {
                b = (b + 1) % 24;
            }
            let path = tree.path(a, b).unwrap();
            paths.push(path.clone());
            flows.push(Flow::new(path));
        }
        let rates = max_min_rates(&flows, |e| tree.capacity_gbps(e));
        // Feasibility: per-edge load <= capacity.
        let mut load: HashMap<_, f64> = HashMap::new();
        for (flow, &rate) in paths.iter().zip(&rates) {
            prop_assert!(rate > 0.0);
            for &edge in flow {
                *load.entry(edge).or_insert(0.0) += rate;
            }
        }
        for (edge, used) in load {
            prop_assert!(
                used <= tree.capacity_gbps(edge) * (1.0 + 1e-9),
                "edge {edge:?} oversubscribed: {used}"
            );
        }
    }

    /// The circle-method schedule is a partition of all pairs into
    /// NIC-disjoint rounds for any n.
    #[test]
    fn full_scan_partitions_all_pairs(n in 2usize..80) {
        let rounds = full_scan_rounds(n);
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            let mut used = std::collections::HashSet::new();
            for &(a, b) in round {
                prop_assert!(a < b && b < n);
                prop_assert!(seen.insert((a, b)), "duplicate pair");
                prop_assert!(used.insert(a) && used.insert(b), "NIC conflict");
            }
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    /// Quick scan never pairs a node twice in a round and matches the
    /// requested hop distance.
    #[test]
    fn quick_scan_is_consistent(scale in 1usize..8) {
        let tree = tree_of(24 * scale);
        let rounds = quick_scan_rounds(&tree).unwrap();
        prop_assert!(rounds.len() <= 3);
        for round in &rounds {
            let mut used = std::collections::HashSet::new();
            let hops = tree.hop_distance(round[0].0, round[0].1).unwrap();
            for &(a, b) in round {
                prop_assert!(used.insert(a) && used.insert(b));
                prop_assert_eq!(tree.hop_distance(a, b).unwrap(), hops);
            }
        }
    }

    /// Breaking uplinks only ever lowers capacity; repairing restores it.
    #[test]
    fn capacity_is_monotone_under_damage(breaks in 0u32..45, tor in 0usize..6) {
        let mut tree = tree_of(24);
        let healthy = tree.tor_uplinks(tor).unwrap().effective_gbps();
        tree.break_tor_uplinks(tor, breaks).unwrap();
        let damaged = tree.tor_uplinks(tor).unwrap().effective_gbps();
        prop_assert!(damaged <= healthy);
        tree.repair_tor_uplinks(tor, true).unwrap();
        prop_assert_eq!(tree.tor_uplinks(tor).unwrap().effective_gbps(), healthy);
    }
}

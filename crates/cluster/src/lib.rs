//! Event-driven cluster simulation (paper Section 5.2).
//!
//! Reproduces the paper's 30-day simulation: jobs replayed from a stressed
//! allocation trace onto FIFO job/node queues; per-node incident processes
//! with accumulating wear (partial troubleshooting leaves latent defects);
//! and four validation policies — no validation, full-set validation,
//! ANUBIS Selector, and the ideal (incident-free) upper bound, plus a
//! random-subset ablation.
//!
//! Outputs the Figure 8 / Table 4 metrics: average node utilization
//! (with a per-day timeline), average validation time per node, MTBI and
//! incidents per node.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod policy;
pub mod sim;

pub use policy::{Policy, PolicyKind};
pub use sim::{simulate, ClusterSimConfig, SimOutcome};

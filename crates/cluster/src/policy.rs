//! Validation policies for the cluster simulation.

use anubis_benchsuite::BenchmarkId;
use anubis_selector::{CoverageTable, NodeStatus, Selector};
use rand::seq::index::sample as index_sample;
use rand_chacha::ChaCha8Rng;

/// Identifies a policy for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum PolicyKind {
    /// No validation; incidents repaired reactively by troubleshooting.
    Absence,
    /// Full benchmark set on every allocation and after every incident.
    FullSet,
    /// The ANUBIS Selector (Algorithm 1 subsets, skip when low-risk).
    Selector,
    /// Ablation: a uniformly random subset of fixed size per validation.
    RandomSubset,
    /// Upper bound: no incidents ever occur.
    Ideal,
}

impl PolicyKind {
    /// Display name used in the experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Absence => "Absence",
            Self::FullSet => "Full Set",
            Self::Selector => "ANUBIS Selector",
            Self::RandomSubset => "Random Subset",
            Self::Ideal => "Ideal",
        }
    }
}

/// A validation decision for one job allocation (or post-incident check).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationDecision {
    /// Wall-clock validation duration in hours (0 = skipped).
    pub duration_hours: f64,
    /// Probability the validation catches a latent/upcoming defect.
    pub coverage: f64,
}

impl ValidationDecision {
    /// The skip decision.
    pub const SKIP: Self = Self {
        duration_hours: 0.0,
        coverage: 0.0,
    };
}

/// A validation policy driving the simulator.
pub enum Policy<'a> {
    /// No validation.
    Absence,
    /// Full set, assumed to discover all incidents (`C = 1`).
    FullSet,
    /// The ANUBIS Selector.
    Selector(&'a Selector),
    /// Random `count`-benchmark subsets scored against `coverage`.
    RandomSubset {
        /// Historical coverage used to score the random pick.
        coverage: &'a CoverageTable,
        /// Benchmarks per validation.
        count: usize,
    },
    /// No incidents at all (upper bound).
    Ideal,
}

impl Policy<'_> {
    /// The reporting kind.
    pub fn kind(&self) -> PolicyKind {
        match self {
            Self::Absence => PolicyKind::Absence,
            Self::FullSet => PolicyKind::FullSet,
            Self::Selector(_) => PolicyKind::Selector,
            Self::RandomSubset { .. } => PolicyKind::RandomSubset,
            Self::Ideal => PolicyKind::Ideal,
        }
    }

    /// Whether incidents exist under this policy.
    pub fn incidents_enabled(&self) -> bool {
        !matches!(self, Self::Ideal)
    }

    /// Whether repaired nodes are fully restored (hot-buffer swap) rather
    /// than partially troubleshot.
    pub fn full_restore_on_incident(&self) -> bool {
        !matches!(self, Self::Absence | Self::Ideal)
    }

    /// Decides the pre-job validation for a node set with the given job
    /// horizon.
    pub fn decide(
        &self,
        statuses: &[NodeStatus],
        horizon_hours: f64,
        rng: &mut ChaCha8Rng,
    ) -> ValidationDecision {
        match self {
            Self::Absence | Self::Ideal => ValidationDecision::SKIP,
            Self::FullSet => ValidationDecision {
                duration_hours: BenchmarkId::total_runtime_minutes(&BenchmarkId::ALL) / 60.0,
                coverage: 1.0,
            },
            Self::Selector(selector) => {
                if !selector.should_validate(statuses, horizon_hours) {
                    return ValidationDecision::SKIP;
                }
                let subset = selector.select(statuses, horizon_hours);
                if subset.is_empty() {
                    return ValidationDecision::SKIP;
                }
                ValidationDecision {
                    duration_hours: BenchmarkId::total_runtime_minutes(&subset) / 60.0,
                    coverage: selector.coverage().coverage(&subset),
                }
            }
            Self::RandomSubset { coverage, count } => {
                let n = BenchmarkId::ALL.len();
                let count = (*count).min(n);
                let picks: Vec<BenchmarkId> = index_sample(rng, n, count)
                    .into_iter()
                    .map(|i| BenchmarkId::ALL[i])
                    .collect();
                ValidationDecision {
                    duration_hours: BenchmarkId::total_runtime_minutes(&picks) / 60.0,
                    coverage: coverage.coverage(&picks),
                }
            }
        }
    }

    /// Decides the post-incident validation (the paper revalidates after
    /// each incident under validation policies).
    pub fn decide_post_incident(
        &self,
        status: &NodeStatus,
        rng: &mut ChaCha8Rng,
    ) -> ValidationDecision {
        match self {
            Self::Absence | Self::Ideal => ValidationDecision::SKIP,
            // Re-validating a swapped-in node is cheap but non-zero; the
            // Selector picks per-node subsets, full set re-runs everything.
            Self::FullSet => self.decide(std::slice::from_ref(status), 24.0, rng),
            Self::Selector(selector) => {
                let subset = selector.select(std::slice::from_ref(status), 24.0);
                if subset.is_empty() {
                    return ValidationDecision::SKIP;
                }
                ValidationDecision {
                    duration_hours: BenchmarkId::total_runtime_minutes(&subset) / 60.0,
                    coverage: selector.coverage().coverage(&subset),
                }
            }
            Self::RandomSubset { .. } => self.decide(std::slice::from_ref(status), 24.0, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::testutil::seeded_rng;
    use anubis_selector::{ExponentialModel, SelectorConfig};

    fn rng() -> ChaCha8Rng {
        seeded_rng(1)
    }

    fn coverage_table() -> CoverageTable {
        let mut t = CoverageTable::new();
        for d in 0..8u64 {
            t.record(BenchmarkId::IbHcaLoopback, d);
        }
        for d in 6..10u64 {
            t.record(BenchmarkId::GpuGemmFp16, d);
        }
        t
    }

    #[test]
    fn absence_and_ideal_skip() {
        let statuses = vec![NodeStatus::fresh()];
        assert_eq!(
            Policy::Absence.decide(&statuses, 24.0, &mut rng()),
            ValidationDecision::SKIP
        );
        assert_eq!(
            Policy::Ideal.decide(&statuses, 24.0, &mut rng()),
            ValidationDecision::SKIP
        );
        assert!(!Policy::Ideal.incidents_enabled());
        assert!(Policy::Absence.incidents_enabled());
    }

    #[test]
    fn full_set_covers_everything_slowly() {
        let d = Policy::FullSet.decide(&[NodeStatus::fresh()], 24.0, &mut rng());
        assert_eq!(d.coverage, 1.0);
        assert!(
            d.duration_hours > 4.0,
            "full set is hours long: {}",
            d.duration_hours
        );
    }

    #[test]
    fn selector_skips_low_risk_and_validates_high_risk() {
        let table = coverage_table();
        let safe = Selector::new(
            Box::new(ExponentialModel { rate: 1e-7 }),
            table.clone(),
            SelectorConfig::default(),
        );
        let d = Policy::Selector(&safe).decide(&[NodeStatus::fresh()], 24.0, &mut rng());
        assert_eq!(d, ValidationDecision::SKIP);

        let risky = Selector::new(
            Box::new(ExponentialModel { rate: 0.05 }),
            table,
            SelectorConfig::default(),
        );
        let statuses = vec![NodeStatus::fresh(); 4];
        let d = Policy::Selector(&risky).decide(&statuses, 24.0, &mut rng());
        assert!(d.duration_hours > 0.0);
        assert!(d.coverage > 0.0);
        // The Selector subset is far cheaper than the full set.
        assert!(
            d.duration_hours < 2.0,
            "selector subset: {}h",
            d.duration_hours
        );
    }

    #[test]
    fn random_subset_scores_against_history() {
        let table = coverage_table();
        let policy = Policy::RandomSubset {
            coverage: &table,
            count: 5,
        };
        let d = policy.decide(&[NodeStatus::fresh()], 24.0, &mut rng());
        assert!(d.duration_hours > 0.0);
        assert!((0.0..=1.0).contains(&d.coverage));
    }

    #[test]
    fn restore_semantics_per_policy() {
        assert!(!Policy::Absence.full_restore_on_incident());
        assert!(Policy::FullSet.full_restore_on_incident());
        let table = coverage_table();
        let selector = Selector::new(
            Box::new(ExponentialModel { rate: 0.05 }),
            table,
            SelectorConfig::default(),
        );
        assert!(Policy::Selector(&selector).full_restore_on_incident());
    }

    #[test]
    fn kinds_have_names() {
        for kind in [
            PolicyKind::Absence,
            PolicyKind::FullSet,
            PolicyKind::Selector,
            PolicyKind::RandomSubset,
            PolicyKind::Ideal,
        ] {
            assert!(!kind.name().is_empty());
        }
    }
}

//! The event-driven cluster simulator.
//!
//! ## Degradation model
//!
//! Every node alternates between *healthy* and *latent-defective*. While
//! stressed (running jobs **or** validation benchmarks — both exercise the
//! hardware), a healthy node develops a hidden defect after an exponential
//! `defect_onset_hours` of exposure (redundancy silently breaking —
//! Section 2.2). A fresh latent defect smolders: it first manifests as a
//! workload incident only after an exponential `first_incident_hours` of
//! further exposure. Once a defect has manifested and was only *partially*
//! repaired (reactive troubleshooting restores just enough redundancy to
//! unblock the workload), it relapses much faster —
//! `relapse_incident_hours` — producing the paper's crash-loop and
//! collapsing MTBI under the no-validation baseline.
//!
//! Validation at job-allocation time catches a latent defect with the
//! policy's coverage probability: the node is swapped against the hot
//! buffer (`swap_hours`), fully restored, and the catch is counted as an
//! incident (a defect occurred; it just never reached a customer). A
//! missed or unvalidated defect interrupts the job: under validation
//! policies the node is swapped and fully restored; under *Absence* it is
//! troubleshot for `troubleshoot_hours` and stays latent with probability
//! `latent_keep_probability`.
//!
//! Jobs replay from an allocation trace through job/node queues with
//! first-fit backfill (stressed replay, scheduled best-effort); an
//! interrupted job returns to the queue rear and continues where it left
//! off (paper Section 5.2, step 6).

use crate::policy::{Policy, PolicyKind, ValidationDecision};
use anubis_arena::Arena;
use anubis_hwsim::noise::exponential;
use anubis_lifecycle::{LifecycleEvent, NodeLifecycle};
use anubis_selector::NodeStatus;
use anubis_traces::{AllocationRequest, SourceMix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation configuration (calibration documented per field).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSimConfig {
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Simulated horizon in hours (the paper simulates 30 days).
    pub horizon_hours: f64,
    /// Mean exposure-hours until a healthy node develops a latent defect.
    pub defect_onset_hours: f64,
    /// Mean exposure-hours from a *fresh* latent defect to its first
    /// workload incident.
    pub first_incident_hours: f64,
    /// Mean exposure-hours to relapse after a partial (troubleshooting)
    /// repair.
    pub relapse_incident_hours: f64,
    /// Fraction of nodes that start with a latent defect (the paper's
    /// trace cluster is already worn).
    pub initial_latent_fraction: f64,
    /// Probability troubleshooting leaves the latent defect in place
    /// (partial redundancy repair).
    pub latent_keep_probability: f64,
    /// Reactive troubleshooting duration (1.5 days per Figure 2).
    pub troubleshoot_hours: f64,
    /// Hot-buffer swap duration under validation policies.
    pub swap_hours: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterSimConfig {
    fn default() -> Self {
        Self {
            nodes: 128,
            horizon_hours: 720.0,
            defect_onset_hours: 120.0,
            first_incident_hours: 40.0,
            relapse_incident_hours: 2.5,
            initial_latent_fraction: 0.25,
            latent_keep_probability: 1.0,
            troubleshoot_hours: 36.0,
            swap_hours: 1.0,
            seed: 11,
        }
    }
}

/// Aggregate outcome of one simulated policy run (the Figure 8 / Table 4
/// rows).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SimOutcome {
    /// Which policy ran.
    pub policy: PolicyKind,
    /// Mean node utilization (busy time / horizon).
    pub avg_utilization: f64,
    /// Mean validation hours per node.
    pub avg_validation_hours: f64,
    /// Cluster MTBI: total busy time / total incidents (total busy time
    /// when no incidents occurred).
    pub mtbi_hours: f64,
    /// Mean incidents per node (proactive catches included).
    pub incidents_per_node: f64,
    /// Mean *customer-visible* incidents per node (mid-job interruptions
    /// only; proactive catches excluded).
    pub customer_incidents_per_node: f64,
    /// Mean repair/swap hours per node.
    pub avg_repair_hours: f64,
    /// Completed jobs.
    pub jobs_completed: u64,
    /// Job interruptions (mid-job incidents).
    pub jobs_interrupted: u64,
    /// Cluster utilization per day (for the Figure 8 curve).
    pub daily_utilization: Vec<f64>,
}

#[derive(Debug, Clone)]
struct SimNode {
    latent: bool,
    /// Whether the current latent defect has already caused an incident
    /// (partially repaired defects relapse quickly).
    manifested: bool,
    busy: f64,
    validation: f64,
    repair: f64,
    incidents: u32,
    status: NodeStatus,
    /// Operational lifecycle, driven exclusively through the
    /// `anubis-lifecycle` transition function.
    life: NodeLifecycle,
}

/// Applies a lifecycle event to a node. The simulator's event sequences
/// are legal by construction — `cargo xtask modelcheck` verifies the same
/// discipline exhaustively on the abstract coordinator model — so an
/// illegal transition here is a simulator bug, asserted in debug builds.
fn drive(node: &mut SimNode, event: LifecycleEvent) {
    let applied = node.life.apply(event);
    debug_assert!(applied.is_ok(), "sim lifecycle violation: {applied:?}");
    let _ = applied;
}

#[derive(Debug, Clone)]
struct PendingJob {
    nodes_needed: u32,
    remaining_hours: f64,
}

#[derive(Debug, Clone)]
struct ActiveJob {
    nodes: Vec<u32>,
    start: f64,
    /// Busy-time onset sample per node (hours from job start), used to
    /// update latency state at job end.
    onsets: Vec<f64>,
    /// The pending incident: `(index into nodes, busy hours from start)`.
    incident: Option<(usize, f64)>,
    remaining_hours: f64,
}

/// Pooled per-allocation scratch for the event loop. `members` and
/// `onsets` buffers travel inside [`ActiveJob`] while the job runs and
/// come back to the pool at `JobFinish`; `statuses` is a per-call
/// temporary for the policy decision. After warm-up the allocation path
/// touches the heap zero times per event (`try_allocate` is registered
/// arena-clean under `cargo xtask analyze` pass A008).
#[derive(Debug, Default)]
struct SimArenas {
    members: Arena<Vec<u32>>,
    statuses: Arena<Vec<NodeStatus>>,
    onsets: Arena<Vec<f64>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    NodeReady(u32),
    JobFinish(usize),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq) through reversal.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Runs the simulation of one policy over an allocation trace.
///
/// # Examples
///
/// ```
/// use anubis_cluster::{simulate, ClusterSimConfig, Policy};
/// use anubis_traces::{generate_allocation_trace, AllocationConfig};
///
/// let config = ClusterSimConfig { nodes: 32, horizon_hours: 240.0, ..Default::default() };
/// let jobs = generate_allocation_trace(&AllocationConfig {
///     duration_hours: 240.0,
///     ..AllocationConfig::stressed(32)
/// });
/// let outcome = simulate(&config, &jobs, &Policy::Ideal);
/// assert!(outcome.avg_utilization > 0.6);
/// assert_eq!(outcome.jobs_interrupted, 0);
/// ```
pub fn simulate(
    config: &ClusterSimConfig,
    trace: &[AllocationRequest],
    policy: &Policy<'_>,
) -> SimOutcome {
    anubis_obs::set_time(0.0);
    let _span = anubis_obs::span!("cluster.simulate");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mix = SourceMix::azure_like();
    let n = config.nodes as usize;
    let mut nodes: Vec<SimNode> = (0..n)
        .map(|_| SimNode {
            latent: rng.random::<f64>() < config.initial_latent_fraction,
            manifested: false,
            busy: 0.0,
            validation: 0.0,
            repair: 0.0,
            incidents: 0,
            status: NodeStatus::fresh(),
            life: NodeLifecycle::new(),
        })
        .collect();

    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |events: &mut BinaryHeap<Event>, time: f64, kind: EventKind| {
        events.push(Event { time, seq, kind });
        seq += 1;
    };
    for (i, request) in trace.iter().enumerate() {
        push(&mut events, request.submit_hour, EventKind::Arrival(i));
    }

    let mut pending: VecDeque<PendingJob> = VecDeque::new();
    let mut idle: VecDeque<u32> = (0..config.nodes).collect();
    let mut active: Vec<Option<ActiveJob>> = Vec::new();
    let mut jobs_completed = 0u64;
    let mut jobs_interrupted = 0u64;
    let days = (config.horizon_hours / 24.0).ceil() as usize;
    let mut daily_busy = vec![0.0f64; days.max(1)];

    // Charges busy node-hours over [a, b), clipped to the horizon, into
    // the per-day buckets.
    let charge_daily = |daily: &mut [f64], a: f64, b: f64, horizon: f64| {
        let b = b.min(horizon);
        if b <= a {
            return;
        }
        let mut t = a;
        while t < b {
            let day = (t / 24.0) as usize;
            let day_end = ((day + 1) as f64) * 24.0;
            let upto = day_end.min(b);
            if day < daily.len() {
                daily[day] += upto - t;
            }
            t = upto;
        }
    };

    // Allocation: called whenever nodes free up or jobs arrive.
    #[allow(clippy::too_many_arguments)]
    fn try_allocate(
        now: f64,
        config: &ClusterSimConfig,
        policy: &Policy<'_>,
        mix: &SourceMix,
        rng: &mut ChaCha8Rng,
        nodes: &mut [SimNode],
        pending: &mut VecDeque<PendingJob>,
        idle: &mut VecDeque<u32>,
        active: &mut Vec<Option<ActiveJob>>,
        events: &mut BinaryHeap<Event>,
        seq: &mut u64,
        arenas: &SimArenas,
    ) {
        // First-fit backfill: a large job waiting at the head must not
        // idle capacity that smaller jobs behind it could use (the paper
        // schedules best-effort; strict FIFO loses ~3% utilization even
        // under the Ideal policy).
        let mut queue_index = 0;
        while queue_index < pending.len() {
            let fits = pending
                .get(queue_index)
                .is_some_and(|job| job.nodes_needed as usize <= idle.len());
            if !fits {
                queue_index += 1;
                continue;
            }
            let Some(job) = pending.remove(queue_index) else {
                break;
            };
            // The fit check above guarantees enough idle nodes. The
            // buffer is pooled: it rides inside the `ActiveJob` and
            // returns to the arena at `JobFinish`.
            let mut members = arenas.members.take();
            members.extend((0..job.nodes_needed).filter_map(|_| idle.pop_front()));
            debug_assert_eq!(members.len(), job.nodes_needed as usize);

            let mut statuses = arenas.statuses.take();
            statuses.extend(members.iter().map(|&m| nodes[m as usize].status));
            let decision = policy.decide(&statuses, job.remaining_hours, rng);
            arenas.statuses.give(statuses);
            let validation_hours = decision.duration_hours;
            // A non-skip decision is the policy's risk threshold crossing:
            // the members leave the schedulable pool and run benchmarks.
            let validating = decision != ValidationDecision::SKIP;
            let mut job_start = now + validation_hours;
            let mut any_swap = false;

            let mut onsets = arenas.onsets.take();
            let mut incident: Option<(usize, f64)> = None;
            for (idx, &m) in members.iter().enumerate() {
                let node = &mut nodes[m as usize];
                if validating {
                    drive(node, LifecycleEvent::RiskCrossed);
                    drive(node, LifecycleEvent::ValidationStarted);
                }
                node.validation += validation_hours;
                // Proactive catch of a latent defect existing at
                // validation time.
                if node.latent && decision.coverage > 0.0 && rng.random::<f64>() < decision.coverage
                {
                    node.latent = false;
                    node.manifested = false;
                    node.incidents += 1;
                    node.repair += config.swap_hours;
                    node.status.record_incident(mix.sample(rng));
                    any_swap = true;
                    anubis_obs::event!("sim.proactive_catch");
                    // Hot-buffer swap: the defective node is quarantined
                    // and the swapped-in replacement resumes validation.
                    drive(node, LifecycleEvent::DefectConfirmed);
                    drive(node, LifecycleEvent::RepairCompleted);
                    drive(node, LifecycleEvent::ReturnedToService);
                    drive(node, LifecycleEvent::RiskCrossed);
                    drive(node, LifecycleEvent::ValidationStarted);
                }
                // Defect trajectory over validation + job exposure. The
                // benchmarks stress the hardware too, so onset clocks run
                // during validation; a defect born mid-validation is only
                // caught with the same coverage odds.
                let (mut onset, mut manifest) = if node.latent {
                    let hours = if node.manifested {
                        config.relapse_incident_hours
                    } else {
                        config.first_incident_hours
                    };
                    (
                        -validation_hours,
                        exponential(rng, 1.0 / hours) - validation_hours,
                    )
                } else {
                    let onset =
                        exponential(rng, 1.0 / config.defect_onset_hours) - validation_hours;
                    let manifest = onset + exponential(rng, 1.0 / config.first_incident_hours);
                    (onset, manifest)
                };
                if onset < 0.0 && !node.latent {
                    // Defect developed during the validation run itself.
                    if decision.coverage > 0.0 && rng.random::<f64>() < decision.coverage {
                        node.incidents += 1;
                        node.repair += config.swap_hours;
                        node.status.record_incident(mix.sample(rng));
                        any_swap = true;
                        drive(node, LifecycleEvent::DefectConfirmed);
                        drive(node, LifecycleEvent::RepairCompleted);
                        drive(node, LifecycleEvent::ReturnedToService);
                        drive(node, LifecycleEvent::RiskCrossed);
                        drive(node, LifecycleEvent::ValidationStarted);
                        // Swapped-in node: fresh trajectory from job start.
                        onset = exponential(rng, 1.0 / config.defect_onset_hours);
                        manifest = onset + exponential(rng, 1.0 / config.first_incident_hours);
                    }
                }
                onsets.push(onset);
                // A defect manifesting during validation (negative time)
                // hits the job immediately at start.
                let manifest = manifest.max(0.0);
                if policy.incidents_enabled() && manifest < job.remaining_hours {
                    match incident {
                        Some((_, t)) if t <= manifest => {}
                        _ => incident = Some((idx, manifest)),
                    }
                }
                // The (possibly swapped) member passed its benchmarks and
                // takes the job.
                if validating {
                    drive(node, LifecycleEvent::ValidationPassed);
                }
                drive(node, LifecycleEvent::JobAssigned);
            }
            if any_swap {
                job_start += config.swap_hours;
            }
            let event_offset = incident.map_or(job.remaining_hours, |(_, t)| t);
            let finish_time = job_start + event_offset;
            let slot = active.len();
            active.push(Some(ActiveJob {
                nodes: members,
                start: job_start,
                onsets,
                incident,
                remaining_hours: job.remaining_hours,
            }));
            events.push(Event {
                time: finish_time,
                seq: *seq,
                kind: EventKind::JobFinish(slot),
            });
            *seq += 1;
        }
    }

    let mut seq_counter = seq;
    let arenas = SimArenas::default();
    try_allocate(
        0.0,
        config,
        policy,
        &mix,
        &mut rng,
        &mut nodes,
        &mut pending,
        &mut idle,
        &mut active,
        &mut events,
        &mut seq_counter,
        &arenas,
    );

    while let Some(event) = events.pop() {
        if event.time > config.horizon_hours {
            break;
        }
        let now = event.time;
        anubis_obs::set_time(now);
        match event.kind {
            EventKind::Arrival(i) => {
                let request = &trace[i];
                if request.nodes <= config.nodes {
                    pending.push_back(PendingJob {
                        nodes_needed: request.nodes,
                        remaining_hours: request.duration_hours,
                    });
                }
            }
            EventKind::NodeReady(node) => {
                // Quarantined since its incident; repair just finished.
                drive(&mut nodes[node as usize], LifecycleEvent::RepairCompleted);
                drive(&mut nodes[node as usize], LifecycleEvent::ReturnedToService);
                idle.push_back(node);
            }
            EventKind::JobFinish(slot) => {
                // Each slot's finish event is scheduled exactly once.
                let Some(job) = active[slot].take() else {
                    continue;
                };
                let elapsed = (now - job.start).max(0.0);
                for (idx, &m) in job.nodes.iter().enumerate() {
                    let node = &mut nodes[m as usize];
                    node.busy += elapsed;
                    node.status.advance(elapsed);
                    // Silent defect onset during the run.
                    if !node.latent && job.onsets[idx] < elapsed {
                        node.latent = true;
                    }
                }
                charge_daily(&mut daily_busy, job.start, now, config.horizon_hours);
                // Multi-node busy: one bucket line per node.
                if job.nodes.len() > 1 {
                    for _ in 1..job.nodes.len() {
                        charge_daily(&mut daily_busy, job.start, now, config.horizon_hours);
                    }
                }
                if let Some((incident_idx, _)) = job.incident {
                    jobs_interrupted += 1;
                    anubis_obs::event!("sim.job_interrupted");
                    let incident_node = job.nodes[incident_idx];
                    {
                        let node = &mut nodes[incident_node as usize];
                        node.incidents += 1;
                        node.status.record_incident(mix.sample(&mut rng));
                        node.latent = true;
                        node.manifested = true;
                        // Busy → Quarantined; back in service at NodeReady.
                        drive(node, LifecycleEvent::IncidentObserved);
                    }
                    let ready_at = if policy.full_restore_on_incident() {
                        let node = &mut nodes[incident_node as usize];
                        node.latent = false;
                        node.manifested = false;
                        node.repair += config.swap_hours;
                        let status = node.status;
                        let post = policy.decide_post_incident(&status, &mut rng);
                        nodes[incident_node as usize].validation += post.duration_hours;
                        now + config.swap_hours + post.duration_hours
                    } else {
                        let node = &mut nodes[incident_node as usize];
                        node.repair += config.troubleshoot_hours;
                        if rng.random::<f64>() >= config.latent_keep_probability {
                            node.latent = false;
                            node.manifested = false;
                        }
                        now + config.troubleshoot_hours
                    };
                    events.push(Event {
                        time: ready_at,
                        seq: seq_counter,
                        kind: EventKind::NodeReady(incident_node),
                    });
                    seq_counter += 1;
                    for (idx, &m) in job.nodes.iter().enumerate() {
                        if idx != incident_idx {
                            drive(&mut nodes[m as usize], LifecycleEvent::JobCompleted);
                            idle.push_back(m);
                        }
                    }
                    let remaining = job.remaining_hours - elapsed;
                    if remaining > 0.05 {
                        pending.push_back(PendingJob {
                            nodes_needed: job.nodes.len() as u32,
                            remaining_hours: remaining,
                        });
                    }
                } else {
                    jobs_completed += 1;
                    for &m in &job.nodes {
                        drive(&mut nodes[m as usize], LifecycleEvent::JobCompleted);
                        idle.push_back(m);
                    }
                }
                // The job's buffers go back to the pool for the next
                // allocation.
                let ActiveJob {
                    nodes: members,
                    onsets,
                    ..
                } = job;
                arenas.members.give(members);
                arenas.onsets.give(onsets);
            }
        }
        try_allocate(
            now,
            config,
            policy,
            &mix,
            &mut rng,
            &mut nodes,
            &mut pending,
            &mut idle,
            &mut active,
            &mut events,
            &mut seq_counter,
            &arenas,
        );
        // Event boundary = arena tick: all scratch is either pooled again
        // or riding inside an `ActiveJob`; publish debug stats and start
        // a new epoch.
        arenas.members.reset();
        arenas.statuses.reset();
        arenas.onsets.reset();
    }

    // Jobs still running at the horizon: charge busy time up to it.
    for job in active.iter().flatten() {
        let end = config.horizon_hours;
        if end > job.start {
            let elapsed = end - job.start;
            for &m in &job.nodes {
                nodes[m as usize].busy += elapsed;
                charge_daily(&mut daily_busy, job.start, end, config.horizon_hours);
            }
        }
    }

    let n_f = n as f64;
    let avg_utilization = nodes.iter().map(|x| x.busy).sum::<f64>() / (n_f * config.horizon_hours);
    let avg_validation_hours = nodes.iter().map(|x| x.validation).sum::<f64>() / n_f;
    let avg_repair_hours = nodes.iter().map(|x| x.repair).sum::<f64>() / n_f;
    let total_incidents: u32 = nodes.iter().map(|x| x.incidents).sum();
    let incidents_per_node = f64::from(total_incidents) / n_f;
    let total_busy: f64 = nodes.iter().map(|x| x.busy).sum();
    let mtbi_hours = total_busy / f64::from(total_incidents.max(1));
    let daily_utilization: Vec<f64> = daily_busy.iter().map(|b| b / (n_f * 24.0)).collect();

    anubis_obs::set_time(config.horizon_hours);
    anubis_obs::counter!("sim.jobs_completed", jobs_completed as i64);
    anubis_obs::counter!("sim.jobs_interrupted", jobs_interrupted as i64);
    anubis_obs::counter!("sim.incidents", i64::from(total_incidents));

    SimOutcome {
        policy: policy.kind(),
        avg_utilization,
        avg_validation_hours,
        mtbi_hours,
        incidents_per_node,
        customer_incidents_per_node: jobs_interrupted as f64 / n_f,
        avg_repair_hours,
        jobs_completed,
        jobs_interrupted,
        daily_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_benchsuite::BenchmarkId;
    use anubis_selector::{CoverageTable, ExponentialModel, Selector, SelectorConfig};
    use anubis_traces::{generate_allocation_trace, AllocationConfig};

    fn trace(nodes: u32) -> Vec<AllocationRequest> {
        generate_allocation_trace(&AllocationConfig::stressed(nodes))
    }

    fn config() -> ClusterSimConfig {
        ClusterSimConfig {
            nodes: 64,
            ..Default::default()
        }
    }

    /// A coverage table where a handful of benchmarks covers ~95% of
    /// defects, approximating the build-out history.
    fn coverage() -> CoverageTable {
        let mut table = CoverageTable::new();
        for d in 0..60u64 {
            table.record(BenchmarkId::IbHcaLoopback, d);
        }
        for d in 50..80u64 {
            table.record(BenchmarkId::GpuH2dBandwidth, d);
        }
        for d in 80..95u64 {
            table.record(BenchmarkId::CpuLatency, d);
        }
        for d in 0..100u64 {
            table.record(BenchmarkId::GpuStress, d);
        }
        table
    }

    fn selector() -> Selector {
        // Rate roughly matching the sim's defect onset.
        Selector::new(
            Box::new(ExponentialModel { rate: 1.0 / 140.0 }),
            coverage(),
            SelectorConfig::default(),
        )
    }

    #[test]
    fn ideal_policy_has_no_incidents_and_high_utilization() {
        let outcome = simulate(&config(), &trace(64), &Policy::Ideal);
        assert_eq!(outcome.incidents_per_node, 0.0);
        assert_eq!(outcome.jobs_interrupted, 0);
        assert!(
            outcome.avg_utilization > 0.9,
            "ideal util {}",
            outcome.avg_utilization
        );
        assert_eq!(outcome.avg_validation_hours, 0.0);
    }

    #[test]
    fn absence_collapses_into_crash_loops() {
        let outcome = simulate(&config(), &trace(64), &Policy::Absence);
        assert!(
            outcome.avg_utilization < 0.45,
            "absence util {}",
            outcome.avg_utilization
        );
        assert!(
            outcome.mtbi_hours < 60.0,
            "absence MTBI {}",
            outcome.mtbi_hours
        );
        assert!(outcome.incidents_per_node > 5.0);
        assert!(outcome.jobs_interrupted > 100);
    }

    #[test]
    fn selector_beats_absence_by_an_order_of_magnitude() {
        let cfg = config();
        let t = trace(64);
        let absence = simulate(&cfg, &t, &Policy::Absence);
        let sel = selector();
        let with_selector = simulate(&cfg, &t, &Policy::Selector(&sel));
        assert!(
            with_selector.mtbi_hours > 8.0 * absence.mtbi_hours,
            "MTBI {} vs {}",
            with_selector.mtbi_hours,
            absence.mtbi_hours
        );
        assert!(
            with_selector.avg_utilization > 3.0 * absence.avg_utilization,
            "util {} vs {}",
            with_selector.avg_utilization,
            absence.avg_utilization
        );
    }

    #[test]
    fn selector_validates_far_less_than_full_set() {
        let cfg = config();
        let t = trace(64);
        let full = simulate(&cfg, &t, &Policy::FullSet);
        let sel = selector();
        let with_selector = simulate(&cfg, &t, &Policy::Selector(&sel));
        assert!(
            with_selector.avg_validation_hours < 0.35 * full.avg_validation_hours,
            "validation {} vs {}",
            with_selector.avg_validation_hours,
            full.avg_validation_hours
        );
        assert!(
            with_selector.avg_utilization > full.avg_utilization,
            "util {} vs {}",
            with_selector.avg_utilization,
            full.avg_utilization
        );
        // Selector misses a few defects the full set would catch, but
        // stays close (relative bound: absolute margins drift with
        // throughput, which scales total defect exposure).
        assert!(
            with_selector.incidents_per_node >= 0.85 * full.incidents_per_node,
            "incidents {} vs {}",
            with_selector.incidents_per_node,
            full.incidents_per_node
        );
    }

    #[test]
    fn daily_utilization_timeline_shape() {
        let outcome = simulate(&config(), &trace(64), &Policy::Ideal);
        assert_eq!(outcome.daily_utilization.len(), 30);
        for &u in &outcome.daily_utilization {
            assert!((0.0..=1.01).contains(&u), "daily util {u}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = config();
        let t = trace(64);
        let a = simulate(&cfg, &t, &Policy::FullSet);
        let b = simulate(&cfg, &t, &Policy::FullSet);
        assert_eq!(a, b);
    }

    #[test]
    fn time_accounting_is_bounded() {
        let cfg = config();
        let t = trace(64);
        let sel = selector();
        for policy in [Policy::Absence, Policy::FullSet, Policy::Selector(&sel)] {
            let outcome = simulate(&cfg, &t, &policy);
            // busy + validation + repair can spill slightly past the
            // horizon (events straddling the boundary) but must stay
            // physical.
            let total = outcome.avg_utilization * cfg.horizon_hours
                + outcome.avg_validation_hours
                + outcome.avg_repair_hours;
            assert!(
                total <= cfg.horizon_hours * 1.15,
                "{:?}: accounted {total}h",
                outcome.policy
            );
        }
    }

    #[test]
    fn random_subset_is_worse_than_selector() {
        let cfg = config();
        let t = trace(64);
        let table = coverage();
        let random = simulate(
            &cfg,
            &t,
            &Policy::RandomSubset {
                coverage: &table,
                count: 4,
            },
        );
        let sel = selector();
        let with_selector = simulate(&cfg, &t, &Policy::Selector(&sel));
        // Random picks waste validation time on low-coverage benchmarks
        // and let far more defects reach customer jobs.
        assert!(
            with_selector.jobs_interrupted * 3 < random.jobs_interrupted * 2,
            "interruptions: selector {} vs random {}",
            with_selector.jobs_interrupted,
            random.jobs_interrupted
        );
        assert!(
            with_selector.avg_validation_hours < 0.5 * random.avg_validation_hours,
            "validation: selector {} vs random {}",
            with_selector.avg_validation_hours,
            random.avg_validation_hours
        );
        assert!(with_selector.avg_utilization >= random.avg_utilization - 0.01);
    }
}

//! Property-based tests for cluster-simulation invariants.

use anubis_cluster::{simulate, ClusterSimConfig, Policy};
use anubis_traces::{generate_allocation_trace, AllocationConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Physical bounds hold under any seed and policy: utilization in
    /// [0, 1], non-negative accounting, and total accounted time per node
    /// never wildly exceeds the horizon.
    #[test]
    fn outcomes_are_physical(seed in 0u64..500, policy_idx in 0usize..3) {
        let config = ClusterSimConfig { nodes: 24, horizon_hours: 240.0, seed, ..Default::default() };
        let trace = generate_allocation_trace(&AllocationConfig {
            duration_hours: 240.0,
            seed: seed ^ 0xfeed,
            ..AllocationConfig::stressed(24)
        });
        let policy = match policy_idx {
            0 => Policy::Absence,
            1 => Policy::FullSet,
            _ => Policy::Ideal,
        };
        let outcome = simulate(&config, &trace, &policy);
        prop_assert!((0.0..=1.0).contains(&outcome.avg_utilization));
        prop_assert!(outcome.avg_validation_hours >= 0.0);
        prop_assert!(outcome.avg_repair_hours >= 0.0);
        prop_assert!(outcome.mtbi_hours >= 0.0);
        prop_assert!(outcome.incidents_per_node >= 0.0);
        let accounted = outcome.avg_utilization * config.horizon_hours
            + outcome.avg_validation_hours
            + outcome.avg_repair_hours;
        prop_assert!(accounted <= config.horizon_hours * 1.2, "accounted {accounted}");
        // Daily buckets are proper utilizations.
        for &u in &outcome.daily_utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
    }

    /// The ideal policy dominates absence on every quality metric, for
    /// any seed.
    #[test]
    fn ideal_dominates_absence(seed in 0u64..200) {
        let config = ClusterSimConfig { nodes: 24, horizon_hours: 240.0, seed, ..Default::default() };
        let trace = generate_allocation_trace(&AllocationConfig {
            duration_hours: 240.0,
            seed: seed ^ 0xabcd,
            ..AllocationConfig::stressed(24)
        });
        let ideal = simulate(&config, &trace, &Policy::Ideal);
        let absence = simulate(&config, &trace, &Policy::Absence);
        prop_assert!(ideal.avg_utilization >= absence.avg_utilization);
        // Note: completed-job *counts* are not comparable — absence churns
        // through short fragments while ideal may be mid-flight on long
        // jobs at the horizon — so compare delivered busy time instead.
        prop_assert_eq!(ideal.jobs_interrupted, 0);
        prop_assert_eq!(ideal.incidents_per_node, 0.0);
    }

    /// Customer-visible incidents never exceed total incidents.
    #[test]
    fn incident_accounting_is_consistent(seed in 0u64..200) {
        let config = ClusterSimConfig { nodes: 16, horizon_hours: 240.0, seed, ..Default::default() };
        let trace = generate_allocation_trace(&AllocationConfig {
            duration_hours: 240.0,
            seed,
            ..AllocationConfig::stressed(16)
        });
        let outcome = simulate(&config, &trace, &Policy::FullSet);
        prop_assert!(
            outcome.customer_incidents_per_node <= outcome.incidents_per_node + 1e-9
        );
    }
}

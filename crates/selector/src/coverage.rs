//! Historical defect coverage per benchmark.

use anubis_benchsuite::BenchmarkId;
use std::collections::{BTreeMap, BTreeSet};

/// Which historical defects each benchmark identified.
///
/// Algorithm 1 defines a subset's coverage `C` as the fraction of all
/// historically-identified defective nodes the subset would have caught —
/// overlapping sets counted once (the paper's `{B₁, B₂}` example).
///
/// # Examples
///
/// ```
/// use anubis_benchsuite::BenchmarkId;
/// use anubis_selector::CoverageTable;
///
/// let mut table = CoverageTable::new();
/// table.record(BenchmarkId::IbHcaLoopback, 1);
/// table.record(BenchmarkId::IbHcaLoopback, 2);
/// table.record(BenchmarkId::GpuGemmFp16, 2);
/// table.record(BenchmarkId::GpuGemmFp16, 3);
/// // Union {1,2} ∪ {2,3} = 3 of 3 defects.
/// let subset = [BenchmarkId::IbHcaLoopback, BenchmarkId::GpuGemmFp16];
/// assert_eq!(table.coverage(&subset), 1.0);
/// assert!((table.coverage(&[BenchmarkId::IbHcaLoopback]) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageTable {
    defects_by_benchmark: BTreeMap<BenchmarkId, BTreeSet<u64>>,
    all_defects: BTreeSet<u64>,
}

impl CoverageTable {
    /// An empty table (no history yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `benchmark` identified defect instance `defect_id`.
    ///
    /// Defect ids identify *defect occurrences* (e.g. node × validation),
    /// so the same node failing twice counts as two instances.
    pub fn record(&mut self, benchmark: BenchmarkId, defect_id: u64) {
        self.defects_by_benchmark
            .entry(benchmark)
            .or_default()
            .insert(defect_id);
        self.all_defects.insert(defect_id);
    }

    /// Total historical defect instances.
    pub fn total_defects(&self) -> usize {
        self.all_defects.len()
    }

    /// Defects attributed to one benchmark.
    pub fn defects_of(&self, benchmark: BenchmarkId) -> usize {
        self.defects_by_benchmark
            .get(&benchmark)
            .map_or(0, BTreeSet::len)
    }

    /// All recorded defect ids, ascending. The CELF mask builder uses the
    /// position in this order as the defect's bit index.
    pub fn defect_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.all_defects.iter().copied()
    }

    /// The defect ids one benchmark identified, ascending.
    pub fn defect_ids_of(&self, benchmark: BenchmarkId) -> impl Iterator<Item = u64> + '_ {
        self.defects_by_benchmark
            .get(&benchmark)
            .into_iter()
            .flatten()
            .copied()
    }

    /// Coverage of a benchmark subset: `|union of their defect sets| /
    /// |all defects|`. Returns 0 with no history (conservative: an unknown
    /// subset prevents nothing).
    pub fn coverage(&self, subset: &[BenchmarkId]) -> f64 {
        if self.all_defects.is_empty() {
            return 0.0;
        }
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        for bench in subset {
            if let Some(set) = self.defects_by_benchmark.get(bench) {
                covered.extend(set);
            }
        }
        covered.len() as f64 / self.all_defects.len() as f64
    }

    /// Marginal defects a benchmark adds on top of a subset.
    pub fn marginal_coverage(&self, subset: &[BenchmarkId], candidate: BenchmarkId) -> f64 {
        let mut with = subset.to_vec();
        with.push(candidate);
        self.coverage(&with) - self.coverage(subset)
    }

    /// Per-benchmark defect share (for Table 6-style reporting), sorted
    /// descending.
    pub fn defect_shares(&self) -> Vec<(BenchmarkId, f64)> {
        if self.all_defects.is_empty() {
            return Vec::new();
        }
        let total = self.all_defects.len() as f64;
        let mut shares: Vec<(BenchmarkId, f64)> = self
            .defects_by_benchmark
            .iter()
            .map(|(&b, set)| (b, set.len() as f64 / total))
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_covers_nothing() {
        let table = CoverageTable::new();
        assert_eq!(table.coverage(&[BenchmarkId::GpuGemmFp16]), 0.0);
        assert_eq!(table.total_defects(), 0);
        assert!(table.defect_shares().is_empty());
    }

    #[test]
    fn paper_example_overlap() {
        // B identified 10 defects; B1 found {1,2} (C=0.2), B2 found
        // {2,3,4} (C=0.3); together they cover 4 => C=0.4.
        let mut table = CoverageTable::new();
        for d in 1..=10u64 {
            table.record(BenchmarkId::GpuStress, d); // the rest of B
        }
        table.record(BenchmarkId::IbHcaLoopback, 1);
        table.record(BenchmarkId::IbHcaLoopback, 2);
        for d in [2u64, 3, 4] {
            table.record(BenchmarkId::GpuGemmFp16, d);
        }
        assert!((table.coverage(&[BenchmarkId::IbHcaLoopback]) - 0.2).abs() < 1e-12);
        assert!((table.coverage(&[BenchmarkId::GpuGemmFp16]) - 0.3).abs() < 1e-12);
        assert!(
            (table.coverage(&[BenchmarkId::IbHcaLoopback, BenchmarkId::GpuGemmFp16]) - 0.4).abs()
                < 1e-12
        );
    }

    #[test]
    fn marginal_coverage_accounts_for_overlap() {
        let mut table = CoverageTable::new();
        table.record(BenchmarkId::IbHcaLoopback, 1);
        table.record(BenchmarkId::IbHcaLoopback, 2);
        table.record(BenchmarkId::GpuGemmFp16, 2);
        let marginal =
            table.marginal_coverage(&[BenchmarkId::IbHcaLoopback], BenchmarkId::GpuGemmFp16);
        assert_eq!(marginal, 0.0, "defect 2 already covered");
    }

    #[test]
    fn coverage_is_monotone_in_subset() {
        let mut table = CoverageTable::new();
        table.record(BenchmarkId::CpuLatency, 1);
        table.record(BenchmarkId::DiskSeqRead, 2);
        table.record(BenchmarkId::GpuBurn, 3);
        let c1 = table.coverage(&[BenchmarkId::CpuLatency]);
        let c2 = table.coverage(&[BenchmarkId::CpuLatency, BenchmarkId::DiskSeqRead]);
        let c3 = table.coverage(&[
            BenchmarkId::CpuLatency,
            BenchmarkId::DiskSeqRead,
            BenchmarkId::GpuBurn,
        ]);
        assert!(c1 < c2 && c2 < c3);
        assert_eq!(c3, 1.0);
    }

    #[test]
    fn shares_sort_descending() {
        let mut table = CoverageTable::new();
        for d in 0..5u64 {
            table.record(BenchmarkId::IbHcaLoopback, d);
        }
        table.record(BenchmarkId::CpuLatency, 100);
        let shares = table.defect_shares();
        assert_eq!(shares[0].0, BenchmarkId::IbHcaLoopback);
        assert!(shares[0].1 > shares[1].1);
    }
}

//! Survival-model interface and the Table 3 exponential baselines.

use crate::status::NodeStatus;

/// Prediction cap in hours (the paper caps at the 2,400-hour trace length
/// so accuracy stays ≤ 100%).
pub const TBNI_CAP_HOURS: f64 = 2400.0;

/// One training/evaluation sample: a node-status snapshot and the observed
/// time before the next incident.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalSample {
    /// Node status at the snapshot.
    pub status: NodeStatus,
    /// Hours until the next incident (or until censoring).
    pub duration: f64,
    /// Whether an incident was observed (`false` = right-censored: the
    /// trace ended first).
    pub event: bool,
}

/// A model of the time before a node's next incident.
pub trait SurvivalModel {
    /// Expected time before the next incident, capped at
    /// [`TBNI_CAP_HOURS`].
    fn expected_tbni(&self, status: &NodeStatus) -> f64;

    /// Probability of an incident within `horizon` hours from now.
    fn incident_probability(&self, status: &NodeStatus, horizon: f64) -> f64;
}

/// Harrell's concordance index over event samples: the fraction of
/// comparable sample pairs whose predicted TBNIs rank the same way as
/// their observed TBNIs (0.5 = uninformative, 1.0 = perfect ranking).
///
/// Constant-prediction models (the paper's global exponential and
/// per-hour baselines) score exactly 0.5 by convention (ties count ½),
/// which makes the C-index a sharper discriminator than the capped-L1
/// accuracy when the TBNI distribution is concentrated.
pub fn concordance_index(model: &(dyn SurvivalModel + Sync), samples: &[SurvivalSample]) -> f64 {
    let events: Vec<&SurvivalSample> = samples.iter().filter(|s| s.event).collect();
    if events.len() < 2 {
        return 0.5;
    }
    let predictions = parallel_predictions(model, &events);
    let mut concordant = 0.0f64;
    let mut comparable = 0.0f64;
    for i in 0..events.len() {
        for j in i + 1..events.len() {
            let (ti, tj) = (events[i].duration, events[j].duration);
            if ti == tj {
                continue;
            }
            comparable += 1.0;
            let (pi, pj) = (predictions[i], predictions[j]);
            if pi == pj {
                concordant += 0.5;
            } else if (ti < tj) == (pi < pj) {
                concordant += 1.0;
            }
        }
    }
    if comparable == 0.0 {
        0.5
    } else {
        concordant / comparable
    }
}

/// Mean prediction accuracy over event samples:
/// `mean(1 − |prediction − TBNI| / cap)` — the Table 3 metric.
pub fn model_accuracy(model: &(dyn SurvivalModel + Sync), samples: &[SurvivalSample]) -> f64 {
    let events: Vec<&SurvivalSample> = samples.iter().filter(|s| s.event).collect();
    if events.is_empty() {
        return 0.0;
    }
    let predictions = parallel_predictions(model, &events);
    let total: f64 = events
        .iter()
        .zip(&predictions)
        .map(|(s, &p)| {
            let prediction = p.min(TBNI_CAP_HOURS);
            let actual = s.duration.min(TBNI_CAP_HOURS);
            1.0 - (prediction - actual).abs() / TBNI_CAP_HOURS
        })
        .sum();
    total / events.len() as f64
}

/// Samples per parallel prediction chunk; fixed so the output layout is a
/// pure function of the event count.
const SAMPLES_PER_CHUNK: usize = 64;

/// Per-sample TBNI predictions in sample order. Predictions are mutually
/// independent, so computing them on workers and aggregating sequentially
/// is bit-identical to the sequential loop at any thread count.
fn parallel_predictions(
    model: &(dyn SurvivalModel + Sync),
    events: &[&SurvivalSample],
) -> Vec<f64> {
    let per_chunk: Vec<Vec<f64>> =
        anubis_parallel::map_chunks(events, SAMPLES_PER_CHUNK, 0, |_, chunk| {
            chunk
                .iter()
                .map(|s| model.expected_tbni(&s.status))
                .collect()
        });
    per_chunk.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------
// Baseline 1: global exponential distribution.
// ---------------------------------------------------------------------

/// `S(t) = e^{−λt}` with one global rate — assumes the incident rate is
/// constant and independent of node status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialModel {
    /// Fitted incident rate per hour.
    pub rate: f64,
}

impl ExponentialModel {
    /// Maximum-likelihood fit with censoring: `λ = events / total exposure`.
    pub fn fit(samples: &[SurvivalSample]) -> Self {
        let events = samples.iter().filter(|s| s.event).count() as f64;
        let exposure: f64 = samples.iter().map(|s| s.duration).sum();
        let rate = if exposure > 0.0 && events > 0.0 {
            events / exposure
        } else {
            1e-6
        };
        Self { rate }
    }
}

impl SurvivalModel for ExponentialModel {
    fn expected_tbni(&self, _status: &NodeStatus) -> f64 {
        (1.0 / self.rate).min(TBNI_CAP_HOURS)
    }

    fn incident_probability(&self, _status: &NodeStatus, horizon: f64) -> f64 {
        1.0 - (-self.rate * horizon.max(0.0)).exp()
    }
}

// ---------------------------------------------------------------------
// Baseline 2: exponential per historical incident count.
// ---------------------------------------------------------------------

/// One exponential rate per historical-incident-count bucket (buckets
/// saturate at [`ExponentialPerCountModel::MAX_BUCKET`]), as informed by
/// Figure 4's count-dependent MTBI.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentialPerCountModel {
    rates: Vec<f64>,
}

impl ExponentialPerCountModel {
    /// Counts at or above this share one bucket.
    pub const MAX_BUCKET: usize = 20;

    /// Fits per-bucket rates, falling back to the global rate for empty
    /// buckets.
    pub fn fit(samples: &[SurvivalSample]) -> Self {
        let global = ExponentialModel::fit(samples).rate;
        let mut events = [0.0f64; Self::MAX_BUCKET + 1];
        let mut exposure = [0.0f64; Self::MAX_BUCKET + 1];
        for s in samples {
            let bucket = (s.status.incident_count as usize).min(Self::MAX_BUCKET);
            if s.event {
                events[bucket] += 1.0;
            }
            exposure[bucket] += s.duration;
        }
        let rates = events
            .iter()
            .zip(&exposure)
            .map(|(&e, &x)| if e > 0.0 && x > 0.0 { e / x } else { global })
            .collect();
        Self { rates }
    }

    fn rate_for(&self, status: &NodeStatus) -> f64 {
        // `fit` always fills MAX_BUCKET + 1 rates, but degrade to the last
        // bucket rather than panic if that invariant ever breaks.
        let bucket = (status.incident_count as usize).min(Self::MAX_BUCKET);
        self.rates
            .get(bucket)
            .or_else(|| self.rates.last())
            .copied()
            .unwrap_or(0.0)
    }
}

impl SurvivalModel for ExponentialPerCountModel {
    fn expected_tbni(&self, status: &NodeStatus) -> f64 {
        (1.0 / self.rate_for(status)).min(TBNI_CAP_HOURS)
    }

    fn incident_probability(&self, status: &NodeStatus, horizon: f64) -> f64 {
        1.0 - (-self.rate_for(status) * horizon.max(0.0)).exp()
    }
}

// ---------------------------------------------------------------------
// Baseline 3: exponential per current up time (empirical survival).
// ---------------------------------------------------------------------

/// Empirical survival over durations: the incident rate for hour `H` comes
/// from the fraction of samples living at least `H` hours, and predictions
/// condition on the node's current time since its last incident.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentialPerHourModel {
    /// Sorted observed durations (censored treated as surviving).
    durations: Vec<f64>,
}

impl ExponentialPerHourModel {
    /// Fits the empirical survival curve.
    pub fn fit(samples: &[SurvivalSample]) -> Self {
        let mut durations: Vec<f64> = samples.iter().map(|s| s.duration).collect();
        durations.sort_by(f64::total_cmp);
        Self { durations }
    }

    /// Empirical `S(t)`: fraction of samples with duration ≥ t.
    pub fn survival(&self, t: f64) -> f64 {
        if self.durations.is_empty() {
            return 1.0;
        }
        let below = self.durations.partition_point(|&d| d < t);
        (self.durations.len() - below) as f64 / self.durations.len() as f64
    }

    /// `E[T − u | T > u]` by integrating the conditional survival, capped.
    ///
    /// Exposed for diagnostics; note the paper's Table 3 baseline does
    /// *not* condition on node age for its TBNI prediction (it predicts
    /// past the 2,400-hour cap for all samples), so the trait
    /// implementation below uses the unconditional expectation.
    pub fn expected_tbni_given_age(&self, u: f64) -> f64 {
        self.conditional_expectation(u)
    }

    fn conditional_expectation(&self, u: f64) -> f64 {
        let s_u = self.survival(u);
        if s_u <= 0.0 {
            return TBNI_CAP_HOURS;
        }
        // Trapezoid over a fixed grid up to the cap.
        let steps = 240;
        let dt = TBNI_CAP_HOURS / steps as f64;
        let mut integral = 0.0;
        for k in 0..steps {
            let t0 = u + k as f64 * dt;
            let t1 = t0 + dt;
            integral += 0.5 * (self.survival(t0) + self.survival(t1)) / s_u * dt;
        }
        integral.min(TBNI_CAP_HOURS)
    }
}

impl SurvivalModel for ExponentialPerHourModel {
    fn expected_tbni(&self, _status: &NodeStatus) -> f64 {
        // The paper's per-hour baseline predicts one status-independent
        // TBNI from the unconditional survival curve.
        self.conditional_expectation(0.0)
    }

    fn incident_probability(&self, status: &NodeStatus, horizon: f64) -> f64 {
        let u = status.hours_since_last_incident;
        let s_u = self.survival(u);
        if s_u <= 0.0 {
            return 1.0;
        }
        (1.0 - self.survival(u + horizon.max(0.0)) / s_u).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::fault::IncidentCategory;

    fn sample(count: u32, since_last: f64, duration: f64, event: bool) -> SurvivalSample {
        let mut status = NodeStatus::fresh();
        status.advance(500.0);
        for _ in 0..count {
            status.record_incident(IncidentCategory::GpuCompute);
        }
        status.hours_since_last_incident = since_last;
        SurvivalSample {
            status,
            duration,
            event,
        }
    }

    #[test]
    fn exponential_fit_matches_mean() {
        let samples: Vec<SurvivalSample> = (1..=10)
            .map(|i| sample(0, 0.0, i as f64 * 100.0, true))
            .collect();
        let model = ExponentialModel::fit(&samples);
        // Mean duration 550 => rate 1/550.
        assert!((model.rate - 1.0 / 550.0).abs() < 1e-9);
        assert!((model.expected_tbni(&NodeStatus::fresh()) - 550.0).abs() < 1e-6);
    }

    #[test]
    fn censoring_inflates_exponential_prediction() {
        let mut samples: Vec<SurvivalSample> =
            (0..5).map(|_| sample(0, 0.0, 500.0, true)).collect();
        samples.extend((0..20).map(|_| sample(0, 0.0, 2400.0, false)));
        let model = ExponentialModel::fit(&samples);
        // 5 events over 50,500 exposure hours => 1/λ > 2400 => capped.
        assert_eq!(model.expected_tbni(&NodeStatus::fresh()), TBNI_CAP_HOURS);
    }

    #[test]
    fn incident_probability_grows_with_horizon() {
        let model = ExponentialModel { rate: 1.0 / 100.0 };
        let s = NodeStatus::fresh();
        let p1 = model.incident_probability(&s, 10.0);
        let p2 = model.incident_probability(&s, 100.0);
        assert!(p1 < p2);
        assert!((p2 - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert_eq!(model.incident_probability(&s, 0.0), 0.0);
    }

    #[test]
    fn per_count_model_differentiates_buckets() {
        let mut samples = Vec::new();
        for _ in 0..50 {
            samples.push(sample(0, 0.0, 1000.0, true)); // healthy: long TBNI
            samples.push(sample(10, 0.0, 50.0, true)); // worn: short TBNI
        }
        let model = ExponentialPerCountModel::fit(&samples);
        let healthy = model.expected_tbni(&sample(0, 0.0, 0.0, true).status);
        let worn = model.expected_tbni(&sample(10, 0.0, 0.0, true).status);
        assert!(healthy > 900.0, "healthy {healthy}");
        assert!(worn < 100.0, "worn {worn}");
        assert!(
            model.incident_probability(&sample(10, 0.0, 0.0, true).status, 24.0)
                > model.incident_probability(&sample(0, 0.0, 0.0, true).status, 24.0)
        );
    }

    #[test]
    fn per_count_unseen_bucket_falls_back_to_global() {
        let samples: Vec<SurvivalSample> = (0..10).map(|_| sample(0, 0.0, 200.0, true)).collect();
        let model = ExponentialPerCountModel::fit(&samples);
        let unseen = sample(7, 0.0, 0.0, true).status;
        assert!((model.expected_tbni(&unseen) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn per_hour_survival_is_monotone() {
        let samples: Vec<SurvivalSample> = (1..=20)
            .map(|i| sample(0, 0.0, i as f64 * 50.0, true))
            .collect();
        let model = ExponentialPerHourModel::fit(&samples);
        assert_eq!(model.survival(0.0), 1.0);
        assert!(model.survival(500.0) > model.survival(900.0));
        assert_eq!(model.survival(1001.0), 0.0);
    }

    #[test]
    fn per_hour_age_conditioning_is_available_but_not_used_for_tbni() {
        // Bimodal durations: many early failures plus a long-lived tail.
        let mut samples: Vec<SurvivalSample> =
            (0..30).map(|_| sample(0, 0.0, 30.0, true)).collect();
        samples.extend((0..10).map(|_| sample(0, 0.0, 2000.0, true)));
        let model = ExponentialPerHourModel::fit(&samples);
        // Conditioning on having survived 100h selects the long-lived mode.
        let young = model.expected_tbni_given_age(0.0);
        let survivor = model.expected_tbni_given_age(100.0);
        assert!(survivor > young * 2.0, "young {young}, survivor {survivor}");
        // But the Table 3 prediction ignores status (the paper's baseline).
        let a = model.expected_tbni(&sample(0, 0.0, 0.0, true).status);
        let b = model.expected_tbni(&sample(0, 100.0, 0.0, true).status);
        assert_eq!(a, b);
        assert!((a - young).abs() < 1e-9);
    }

    #[test]
    fn concordance_of_constant_predictor_is_half() {
        let samples: Vec<SurvivalSample> = (1..=10)
            .map(|i| sample(0, 0.0, i as f64 * 50.0, true))
            .collect();
        let model = ExponentialModel { rate: 1.0 / 100.0 }; // constant prediction
        assert!((concordance_index(&model, &samples) - 0.5).abs() < 1e-12);
        assert_eq!(concordance_index(&model, &samples[..1]), 0.5);
    }

    #[test]
    fn concordance_rewards_correct_ranking() {
        // Worn nodes (high count) fail sooner; per-count learns that.
        let mut samples = Vec::new();
        for i in 0..40 {
            samples.push(sample(0, 0.0, 800.0 + f64::from(i), true));
            samples.push(sample(10, 0.0, 50.0 + f64::from(i), true));
        }
        let model = ExponentialPerCountModel::fit(&samples);
        let c = concordance_index(&model, &samples);
        assert!(c > 0.7, "per-count C-index {c}");
    }

    #[test]
    fn accuracy_metric_behaves() {
        let samples: Vec<SurvivalSample> = vec![
            sample(0, 0.0, 100.0, true),
            sample(0, 0.0, 200.0, true),
            sample(0, 0.0, 9999.0, false), // censored: ignored
        ];
        struct Oracle;
        impl SurvivalModel for Oracle {
            fn expected_tbni(&self, _s: &NodeStatus) -> f64 {
                150.0
            }
            fn incident_probability(&self, _s: &NodeStatus, _h: f64) -> f64 {
                0.5
            }
        }
        let acc = model_accuracy(&Oracle, &samples);
        // Both events are 50h off: 1 - 50/2400 each.
        assert!((acc - (1.0 - 50.0 / 2400.0)).abs() < 1e-9);
        assert_eq!(model_accuracy(&Oracle, &[]), 0.0);
    }
}

//! The ANUBIS Selector (paper Section 3.3).
//!
//! The Selector decides *when* to validate and *which* benchmark subset to
//! run:
//!
//! - [`status`]: node status covariates (uptime, incident history, MTBI per
//!   category) — the survival models' feature vector;
//! - [`survival`]: the survival-model interface, the three exponential
//!   baselines from Table 3, and the TBNI accuracy metric;
//! - [`coxtime`]: the Cox-Time model (Kvamme et al.) — an MLP relative-risk
//!   function `g(t, x)` trained with a case-control partial likelihood plus
//!   a Breslow baseline hazard;
//! - [`coverage`]: historical defect-coverage bookkeeping per benchmark;
//! - [`select`]: Algorithm 1 — greedy Δp/t benchmark selection, with a
//!   lazy-greedy (CELF) fast path over coverage bitmasks that provably
//!   returns the eager scan's exact sequence.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod coverage;
pub mod coxtime;
pub mod select;
pub mod status;
pub mod survival;

pub use coverage::CoverageTable;
pub use coxtime::{warmstart_merge_into, CoxTimeConfig, CoxTimeModel, CoxTimeTrainer};
pub use select::{
    celf_core, select_benchmarks, select_benchmarks_celf, select_benchmarks_eager, CelfScratch,
    CoverageMasks, Selector, SelectorConfig,
};
pub use status::NodeStatus;
pub use survival::{
    concordance_index, model_accuracy, ExponentialModel, ExponentialPerCountModel,
    ExponentialPerHourModel, SurvivalModel, SurvivalSample, TBNI_CAP_HOURS,
};

//! Node status covariates.

use anubis_hwsim::fault::IncidentCategory;

/// Real-time status of a node, the covariate vector of the survival models.
///
/// The paper lists "total up time, historical incident count, MTBI of
/// different incident types, etc." as the statuses the Selector queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStatus {
    /// Total hours the node has been in service.
    pub uptime_hours: f64,
    /// Hours since the node's last incident (uptime when none).
    pub hours_since_last_incident: f64,
    /// Total incidents observed on this node.
    pub incident_count: u32,
    /// Incidents per category, indexed by [`IncidentCategory::ALL`].
    pub category_counts: [u32; 9],
}

impl NodeStatus {
    /// A brand-new node.
    pub fn fresh() -> Self {
        Self {
            uptime_hours: 0.0,
            hours_since_last_incident: 0.0,
            incident_count: 0,
            category_counts: [0; 9],
        }
    }

    /// Records an incident of a category, resetting the last-incident
    /// clock.
    pub fn record_incident(&mut self, category: IncidentCategory) {
        self.incident_count += 1;
        self.category_counts[category.index()] += 1;
        self.hours_since_last_incident = 0.0;
    }

    /// Advances the clocks by `hours`.
    pub fn advance(&mut self, hours: f64) {
        let hours = hours.max(0.0);
        self.uptime_hours += hours;
        self.hours_since_last_incident += hours;
    }

    /// Mean time between incidents so far (total uptime when no incidents).
    pub fn mtbi_hours(&self) -> f64 {
        if self.incident_count == 0 {
            self.uptime_hours
        } else {
            self.uptime_hours / f64::from(self.incident_count)
        }
    }

    /// Dense feature vector for the survival models: uptime, recency,
    /// count, MTBI, then per-category counts.
    pub fn features(&self) -> Vec<f64> {
        let mut features = Vec::with_capacity(4 + 9);
        features.push(self.uptime_hours);
        features.push(self.hours_since_last_incident);
        features.push(f64::from(self.incident_count));
        features.push(self.mtbi_hours());
        features.extend(self.category_counts.iter().map(|&c| f64::from(c)));
        features
    }

    /// Length of [`NodeStatus::features`].
    pub const FEATURE_DIM: usize = 13;
}

impl Default for NodeStatus {
    fn default() -> Self {
        Self::fresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_all_zero() {
        let s = NodeStatus::fresh();
        assert_eq!(s.features(), vec![0.0; NodeStatus::FEATURE_DIM]);
        assert_eq!(s.mtbi_hours(), 0.0);
    }

    #[test]
    fn incident_updates_counts_and_resets_clock() {
        let mut s = NodeStatus::fresh();
        s.advance(100.0);
        s.record_incident(IncidentCategory::GpuCompute);
        assert_eq!(s.incident_count, 1);
        assert_eq!(s.hours_since_last_incident, 0.0);
        assert_eq!(s.uptime_hours, 100.0);
        s.advance(20.0);
        s.record_incident(IncidentCategory::IbLink);
        assert_eq!(s.incident_count, 2);
        assert_eq!(s.category_counts[0], 1, "GPU compute count");
        assert_eq!(s.category_counts[3], 1, "IB link count");
        assert_eq!(s.mtbi_hours(), 60.0);
    }

    #[test]
    fn feature_vector_has_documented_shape() {
        let mut s = NodeStatus::fresh();
        s.advance(10.0);
        s.record_incident(IncidentCategory::Disk);
        s.advance(5.0);
        let f = s.features();
        assert_eq!(f.len(), NodeStatus::FEATURE_DIM);
        assert_eq!(f[0], 15.0); // uptime
        assert_eq!(f[1], 5.0); // since last incident
        assert_eq!(f[2], 1.0); // count
        assert_eq!(f[3], 15.0); // mtbi
        assert_eq!(f[4 + 7], 1.0); // disk category index
    }

    #[test]
    fn negative_advance_is_ignored() {
        let mut s = NodeStatus::fresh();
        s.advance(-5.0);
        assert_eq!(s.uptime_hours, 0.0);
    }
}

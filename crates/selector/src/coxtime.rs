//! The Cox-Time survival model (Kvamme, Borgan & Scheel, 2019).
//!
//! Cox-Time is a relative-risk model `h(t|x) = h₀(t)·exp(g(t, x))` whose
//! risk function `g` is a neural network taking *both* the time and the
//! covariates, so the proportional-hazards assumption is dropped — exactly
//! what degrading GPU nodes need (their failure rate changes with time).
//!
//! The original system trains this through PyCox; here it is implemented
//! from scratch on [`anubis_nn`]:
//!
//! - training minimizes the case-control approximation of the partial
//!   likelihood: for each event `i` with sampled controls `j ∈ R(tᵢ)`,
//!   `loss = ln(1 + Σⱼ exp(g(tᵢ,xⱼ) − g(tᵢ,xᵢ)))`;
//! - the baseline cumulative hazard uses the Breslow estimator on a
//!   bucketed event-time grid;
//! - survival prediction is `S(t|x) = exp(−Σ_{tᵢ≤t} ΔH₀(tᵢ)·e^{g(tᵢ,x)})`.

use crate::status::NodeStatus;
use crate::survival::{SurvivalModel, SurvivalSample, TBNI_CAP_HOURS};
use anubis_nn::{Activation, Adam, Mlp, StandardScaler};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training configuration for [`CoxTimeModel::fit`].
#[derive(Debug, Clone)]
pub struct CoxTimeConfig {
    /// Hidden-layer widths of the risk network.
    pub hidden: Vec<usize>,
    /// Training epochs over the event set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sampled controls per event (the case-control approximation).
    pub controls_per_event: usize,
    /// Mini-batch size in events.
    pub batch_size: usize,
    /// Number of Breslow grid buckets.
    pub baseline_buckets: usize,
    /// Decoupled weight decay (AdamW-style regularization).
    pub weight_decay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoxTimeConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32],
            epochs: 40,
            learning_rate: 2e-3,
            controls_per_event: 4,
            batch_size: 32,
            baseline_buckets: 96,
            weight_decay: 1e-4,
            seed: 7,
        }
    }
}

/// A fitted Cox-Time model.
#[derive(Debug, Clone)]
pub struct CoxTimeModel {
    net: Mlp,
    scaler: StandardScaler,
    time_scale: f64,
    /// Ascending `(event time, ΔH₀)` pairs from the Breslow estimator.
    baseline: Vec<(f64, f64)>,
}

impl CoxTimeModel {
    /// Trains on survival samples (events and censored rows).
    ///
    /// # Panics
    ///
    /// Panics if `samples` contains no events; the caller (trace pipeline)
    /// guarantees event data.
    pub fn fit(samples: &[SurvivalSample], config: &CoxTimeConfig) -> Self {
        let features: Vec<Vec<f64>> = samples.iter().map(|s| s.status.features()).collect();
        let scaler = StandardScaler::fit(&features);
        let scaled: Vec<Vec<f64>> = scaler.transform_all(&features);
        let time_scale = samples
            .iter()
            .map(|s| s.duration)
            .fold(0.0f64, f64::max)
            .max(1.0);

        // Sort sample indices by duration ascending: the risk set of an
        // event is then a suffix.
        let mut by_duration: Vec<usize> = (0..samples.len()).collect();
        by_duration.sort_by(|&a, &b| samples[a].duration.total_cmp(&samples[b].duration));
        let rank_of: Vec<usize> = {
            let mut rank = vec![0usize; samples.len()];
            for (r, &i) in by_duration.iter().enumerate() {
                rank[i] = r;
            }
            rank
        };
        let events: Vec<usize> = (0..samples.len()).filter(|&i| samples[i].event).collect();
        assert!(!events.is_empty(), "Cox-Time needs at least one event");

        let input_dim = 1 + scaler.dim();
        let mut sizes = vec![input_dim];
        sizes.extend(&config.hidden);
        sizes.push(1);
        let mut net = Mlp::new(&sizes, Activation::Tanh, config.seed);
        let mut adam = Adam::new(&net, config.learning_rate).with_weight_decay(config.weight_decay);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed);

        let net_input = |t: f64, x: &[f64]| -> Vec<f64> {
            let mut input = Vec::with_capacity(1 + x.len());
            input.push(t / time_scale);
            input.extend_from_slice(x);
            input
        };

        let mut order = events.clone();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size.max(1)) {
                let mut grads = net.zero_gradients();
                let mut batch_events = 0usize;
                for &i in batch {
                    let t_i = samples[i].duration;
                    // Controls: uniform from the risk-set suffix.
                    let suffix_start = rank_of[i];
                    let suffix_len = samples.len() - suffix_start;
                    if suffix_len < 2 {
                        continue;
                    }
                    let mut controls = Vec::with_capacity(config.controls_per_event);
                    for _ in 0..config.controls_per_event {
                        let pick = by_duration[suffix_start + rng.random_range(0..suffix_len)];
                        if pick != i {
                            controls.push(pick);
                        }
                    }
                    if controls.is_empty() {
                        continue;
                    }
                    batch_events += 1;
                    let cache_i = net.forward_cached(&net_input(t_i, &scaled[i]));
                    let g_i = cache_i.output()[0];
                    let caches: Vec<_> = controls
                        .iter()
                        .map(|&j| net.forward_cached(&net_input(t_i, &scaled[j])))
                        .collect();
                    // Softplus-style loss: ln(1 + Σ exp(g_j − g_i)).
                    let exps: Vec<f64> =
                        caches.iter().map(|c| (c.output()[0] - g_i).exp()).collect();
                    let denom = 1.0 + exps.iter().sum::<f64>();
                    net.backward(&cache_i, &[-(denom - 1.0) / denom], &mut grads);
                    for (cache, &e) in caches.iter().zip(&exps) {
                        net.backward(cache, &[e / denom], &mut grads);
                    }
                }
                if batch_events > 0 {
                    grads.scale(1.0 / batch_events as f64);
                    adam.step(&mut net, &grads);
                }
            }
        }

        // Breslow baseline hazard on a bucketed event-time grid. Buckets
        // are kept small and anchored at their median event time so the
        // risk-set size is representative of the deaths inside (a coarse
        // bucket anchored at its first event systematically understates
        // late hazards).
        let mut event_times: Vec<f64> = events.iter().map(|&i| samples[i].duration).collect();
        event_times.sort_by(f64::total_cmp);
        let buckets = config.baseline_buckets.max(1).min(event_times.len());
        let per_bucket = event_times.len().div_ceil(buckets);
        let mut baseline = Vec::with_capacity(buckets);
        let mut k = 0usize;
        while k < event_times.len() {
            let end = (k + per_bucket).min(event_times.len());
            let t_bucket = event_times[end - 1];
            let t_mid = event_times[(k + end - 1) / 2];
            let deaths = (end - k) as f64;
            // Risk set: samples still at risk at the bucket's median
            // event.
            let start_rank = by_duration.partition_point(|&i| samples[i].duration < t_mid);
            let risk_sum: f64 = by_duration[start_rank..]
                .iter()
                .map(|&j| net.forward_scalar(&net_input(t_mid, &scaled[j])).exp())
                .sum();
            let delta = if risk_sum > 0.0 {
                deaths / risk_sum
            } else {
                0.0
            };
            baseline.push((t_bucket, delta));
            k = end;
        }

        Self {
            net,
            scaler,
            time_scale,
            baseline,
        }
    }

    /// The risk score `g(t, x)` for a status at time `t`.
    pub fn log_risk(&self, status: &NodeStatus, t: f64) -> f64 {
        let x = self.scaler.transform(&status.features());
        let mut input = Vec::with_capacity(1 + x.len());
        input.push(t / self.time_scale);
        input.extend(x);
        self.net.forward_scalar(&input)
    }

    /// Survival probability `S(t|x)`.
    pub fn survival(&self, status: &NodeStatus, t: f64) -> f64 {
        let mut cumulative = 0.0;
        for &(time, delta) in &self.baseline {
            if time > t {
                break;
            }
            cumulative += delta * self.log_risk(status, time).exp();
        }
        (-cumulative).exp()
    }

    /// The fitted Breslow grid (for diagnostics).
    pub fn baseline(&self) -> &[(f64, f64)] {
        &self.baseline
    }
}

impl SurvivalModel for CoxTimeModel {
    fn expected_tbni(&self, status: &NodeStatus) -> f64 {
        // ∫₀^cap S(t|x) dt over the piecewise-constant survival curve.
        let mut integral = 0.0;
        let mut prev_t = 0.0;
        let mut survival = 1.0;
        let mut last_rate = 0.0;
        for &(time, delta) in &self.baseline {
            let t = time.min(TBNI_CAP_HOURS);
            if t > prev_t {
                integral += survival * (t - prev_t);
                last_rate = delta * self.log_risk(status, time).exp() / (t - prev_t);
                prev_t = t;
            }
            survival *= (-delta * self.log_risk(status, time).exp()).exp();
            if prev_t >= TBNI_CAP_HOURS {
                break;
            }
        }
        if prev_t < TBNI_CAP_HOURS {
            // Beyond the last observed event time, extrapolate the hazard
            // at the tail rate instead of freezing survival (which would
            // systematically inflate predictions toward the cap).
            let remaining = TBNI_CAP_HOURS - prev_t;
            if last_rate > 1e-12 {
                integral += survival * (1.0 - (-last_rate * remaining).exp()) / last_rate;
            } else {
                integral += survival * remaining;
            }
        }
        integral.min(TBNI_CAP_HOURS)
    }

    fn incident_probability(&self, status: &NodeStatus, horizon: f64) -> f64 {
        (1.0 - self.survival(status, horizon.max(0.0))).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::fault::IncidentCategory;
    use anubis_hwsim::noise::exponential;

    /// Two node populations: healthy (few incidents, long TBNI) and worn
    /// (many incidents, short TBNI).
    fn synthetic_samples(n: usize, seed: u64) -> Vec<SurvivalSample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        for k in 0..n {
            let worn = k % 2 == 1;
            let mut status = NodeStatus::fresh();
            status.advance(200.0 + rng.random_range(0.0..400.0));
            let incidents = if worn {
                8 + (k % 5) as u32
            } else {
                (k % 2) as u32
            };
            for _ in 0..incidents {
                status.record_incident(IncidentCategory::GpuCompute);
            }
            status.hours_since_last_incident = rng.random_range(0.0..50.0);
            let mean = if worn { 60.0 } else { 700.0 };
            let duration = exponential(&mut rng, 1.0 / mean).min(2400.0);
            samples.push(SurvivalSample {
                status,
                duration,
                event: true,
            });
        }
        samples
    }

    fn quick_config() -> CoxTimeConfig {
        CoxTimeConfig {
            epochs: 12,
            hidden: vec![16, 16],
            baseline_buckets: 32,
            ..Default::default()
        }
    }

    fn worn_status() -> NodeStatus {
        let mut s = NodeStatus::fresh();
        s.advance(400.0);
        for _ in 0..10 {
            s.record_incident(IncidentCategory::GpuCompute);
        }
        s
    }

    fn healthy_status() -> NodeStatus {
        let mut s = NodeStatus::fresh();
        s.advance(400.0);
        s
    }

    #[test]
    fn learns_to_separate_populations() {
        let samples = synthetic_samples(400, 1);
        let model = CoxTimeModel::fit(&samples, &quick_config());
        let healthy_tbni = model.expected_tbni(&healthy_status());
        let worn_tbni = model.expected_tbni(&worn_status());
        assert!(
            healthy_tbni > 2.0 * worn_tbni,
            "healthy {healthy_tbni} vs worn {worn_tbni}"
        );
        assert!(
            model.incident_probability(&worn_status(), 48.0)
                > model.incident_probability(&healthy_status(), 48.0)
        );
    }

    #[test]
    fn survival_curve_is_a_valid_survival_function() {
        let samples = synthetic_samples(200, 2);
        let model = CoxTimeModel::fit(&samples, &quick_config());
        let status = healthy_status();
        assert!((model.survival(&status, 0.0) - 1.0).abs() < 1e-9);
        let mut last = 1.0;
        for t in [10.0, 50.0, 200.0, 800.0, 2400.0] {
            let s = model.survival(&status, t);
            assert!((0.0..=1.0).contains(&s));
            assert!(s <= last + 1e-12, "monotone non-increasing");
            last = s;
        }
    }

    #[test]
    fn probability_bounds_and_monotonicity() {
        let samples = synthetic_samples(200, 3);
        let model = CoxTimeModel::fit(&samples, &quick_config());
        let status = worn_status();
        let mut last = 0.0;
        for h in [0.0, 6.0, 24.0, 120.0, 1000.0] {
            let p = model.incident_probability(&status, h);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn beats_global_exponential_on_heterogeneous_data() {
        use crate::survival::{model_accuracy, ExponentialModel};
        let train = synthetic_samples(400, 4);
        let test = synthetic_samples(120, 5);
        let cox = CoxTimeModel::fit(&train, &quick_config());
        let exp = ExponentialModel::fit(&train);
        let acc_cox = model_accuracy(&cox, &test);
        let acc_exp = model_accuracy(&exp, &test);
        assert!(
            acc_cox > acc_exp,
            "Cox-Time {acc_cox} must beat exponential {acc_exp}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn rejects_event_free_training_data() {
        let mut samples = synthetic_samples(10, 6);
        for s in &mut samples {
            s.event = false;
        }
        CoxTimeModel::fit(&samples, &quick_config());
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = synthetic_samples(100, 7);
        let a = CoxTimeModel::fit(&samples, &quick_config());
        let b = CoxTimeModel::fit(&samples, &quick_config());
        assert_eq!(
            a.expected_tbni(&healthy_status()),
            b.expected_tbni(&healthy_status())
        );
    }
}

//! The Cox-Time survival model (Kvamme, Borgan & Scheel, 2019).
//!
//! Cox-Time is a relative-risk model `h(t|x) = h₀(t)·exp(g(t, x))` whose
//! risk function `g` is a neural network taking *both* the time and the
//! covariates, so the proportional-hazards assumption is dropped — exactly
//! what degrading GPU nodes need (their failure rate changes with time).
//!
//! The original system trains this through PyCox; here it is implemented
//! from scratch on [`anubis_nn`]:
//!
//! - training minimizes the case-control approximation of the partial
//!   likelihood: for each event `i` with sampled controls `j ∈ R(tᵢ)`,
//!   `loss = ln(1 + Σⱼ exp(g(tᵢ,xⱼ) − g(tᵢ,xᵢ)))`;
//! - the baseline cumulative hazard uses the Breslow estimator on a
//!   bucketed event-time grid;
//! - survival prediction is `S(t|x) = exp(−Σ_{tᵢ≤t} ΔH₀(tᵢ)·e^{g(tᵢ,x)})`.

use crate::status::NodeStatus;
use crate::survival::{SurvivalModel, SurvivalSample, TBNI_CAP_HOURS};
use anubis_metrics::MetricsError;
use anubis_nn::{Activation, Adam, BackwardScratch, ForwardCache, Mlp, StandardScaler};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training configuration for [`CoxTimeModel::fit`].
#[derive(Debug, Clone)]
pub struct CoxTimeConfig {
    /// Hidden-layer widths of the risk network.
    pub hidden: Vec<usize>,
    /// Training epochs over the event set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sampled controls per event (the case-control approximation).
    pub controls_per_event: usize,
    /// Mini-batch size in events.
    pub batch_size: usize,
    /// Number of Breslow grid buckets.
    pub baseline_buckets: usize,
    /// Decoupled weight decay (AdamW-style regularization).
    pub weight_decay: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the epoch and Breslow loops (`0` = auto, see
    /// [`anubis_parallel::auto_threads`]). The fitted model is bit-identical
    /// at any thread count.
    pub threads: usize,
}

impl Default for CoxTimeConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32],
            epochs: 40,
            learning_rate: 2e-3,
            controls_per_event: 4,
            batch_size: 32,
            baseline_buckets: 96,
            weight_decay: 1e-4,
            seed: 7,
            threads: 0,
        }
    }
}

/// Events per parallel gradient chunk during training. Fixed (not derived
/// from the thread count) so the chunking — and therefore every
/// floating-point merge order — is identical at any parallelism.
const EVENTS_PER_CHUNK: usize = 8;

/// Parameters per parallel merge range. The per-parameter addition order
/// is independent of how the parameter axis is partitioned, so this only
/// affects scheduling granularity.
const PARAMS_PER_RANGE: usize = 1024;

/// A fitted Cox-Time model.
#[derive(Debug, Clone)]
pub struct CoxTimeModel {
    net: Mlp,
    scaler: StandardScaler,
    time_scale: f64,
    /// Ascending `(event time, ΔH₀)` pairs from the Breslow estimator.
    baseline: Vec<(f64, f64)>,
}

impl CoxTimeModel {
    /// Trains on survival samples (events and censored rows).
    ///
    /// Cold-fit convenience over [`CoxTimeTrainer`]: ingest everything,
    /// train `config.epochs` epochs, finish. A caller that keeps the
    /// trainer instead can absorb new incident intervals with
    /// [`CoxTimeTrainer::ingest`] and resume training from the fitted
    /// parameters — and the result is bit-identical to this cold path on
    /// the concatenated sample list.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InsufficientData`] if `samples` contains no
    /// events — the partial likelihood is undefined without at least one.
    pub fn fit(samples: &[SurvivalSample], config: &CoxTimeConfig) -> Result<Self, MetricsError> {
        let _span = anubis_obs::span!("coxtime.fit");
        anubis_obs::counter!("coxtime.fit_samples", samples.len() as i64);
        anubis_obs::counter!("coxtime.fit_epochs", config.epochs as i64);
        let epochs = config.epochs;
        let mut trainer = CoxTimeTrainer::new(config.clone());
        trainer.ingest(samples);
        trainer.train(epochs)?;
        trainer.finish()
    }

    /// The risk score `g(t, x)` for a status at time `t`.
    pub fn log_risk(&self, status: &NodeStatus, t: f64) -> f64 {
        RiskEval::new(self, status).log_risk(t)
    }

    /// Survival probability `S(t|x)`.
    pub fn survival(&self, status: &NodeStatus, t: f64) -> f64 {
        let mut eval = RiskEval::new(self, status);
        let mut cumulative = 0.0;
        for &(time, delta) in &self.baseline {
            if time > t {
                break;
            }
            cumulative += delta * eval.log_risk(time).exp();
        }
        (-cumulative).exp()
    }

    /// The fitted Breslow grid (for diagnostics).
    pub fn baseline(&self) -> &[(f64, f64)] {
        &self.baseline
    }
}

/// Merges two duration-sorted index runs over `samples` into `out`,
/// taking the `old` side on ties.
///
/// Because every index in `old` precedes every index in `incoming` (the
/// incoming batch is appended at the tail of the sample list), tie-takes-
/// left reproduces exactly what a stable sort of the concatenated list
/// would produce — so a trainer that maintains its duration order through
/// this merge is indistinguishable, index for index, from one that
/// re-sorts from scratch.
pub fn warmstart_merge_into(
    samples: &[SurvivalSample],
    old: &[usize],
    incoming: &[usize],
    out: &mut Vec<usize>,
) {
    out.clear();
    let mut a = 0usize;
    let mut b = 0usize;
    while a < old.len() && b < incoming.len() {
        let i = old[a];
        let j = incoming[b];
        if samples[i].duration.total_cmp(&samples[j].duration).is_le() {
            out.push(i);
            a += 1;
        } else {
            out.push(j);
            b += 1;
        }
    }
    while a < old.len() {
        out.push(old[a]);
        a += 1;
    }
    while b < incoming.len() {
        out.push(incoming[b]);
        b += 1;
    }
}

/// An incremental Cox-Time fitting session.
///
/// Holds the network, optimizer moments, RNG stream and the
/// duration-sorted sample order across calls, so training can be
/// checkpointed ([`CoxTimeTrainer::train`] twice ≡ one longer run) and
/// new incident intervals can be absorbed ([`CoxTimeTrainer::ingest`])
/// without restarting from epoch zero.
///
/// Two exact equivalences hold (asserted bit-for-bit in this module's
/// tests):
///
/// 1. `new + ingest(D₁) + ingest(D₂) + train(E) + finish` equals
///    `CoxTimeModel::fit(D₁ ∥ D₂)` with `epochs = E` — ingestion
///    reconstructs the derived dataset state (scaler, time scale,
///    duration order) exactly as a cold fit derives it;
/// 2. `train(E₁)` then `train(E₂)` equals `train(E₁ + E₂)` — the epoch
///    loop carries no per-call state besides the trainer fields.
///
/// A *warm refit* — ingesting a delta after training has already run —
/// is deliberately approximate: it resumes gradient descent from the
/// fitted parameters instead of replaying every epoch, which is the
/// entire point. Use a fresh trainer when cold-fit semantics are needed.
#[derive(Debug, Clone)]
pub struct CoxTimeTrainer {
    config: CoxTimeConfig,
    samples: Vec<SurvivalSample>,
    /// Sample indices sorted by duration ascending: the risk set of an
    /// event is then a suffix. Maintained across ingests by
    /// [`warmstart_merge_into`].
    by_duration: Vec<usize>,
    merge_scratch: Vec<usize>,
    incoming_scratch: Vec<usize>,
    net: Mlp,
    adam: Adam,
    rng: ChaCha8Rng,
    /// The event visit order, shuffled in place epoch over epoch. A cold
    /// fit shuffles one persistent permutation across all its epochs, so
    /// checkpoint-resume equality requires carrying it (not just the RNG
    /// position) across `train` calls. Rebuilt after ingestion.
    order: Vec<usize>,
    order_dirty: bool,
    epochs_trained: usize,
}

impl CoxTimeTrainer {
    /// Creates an empty training session. The network, optimizer and RNG
    /// are seeded exactly as a cold [`CoxTimeModel::fit`] seeds them —
    /// none of them depends on the data, so creation order is
    /// irrelevant to equivalence.
    pub fn new(config: CoxTimeConfig) -> Self {
        let input_dim = 1 + NodeStatus::fresh().features().len();
        let mut sizes = vec![input_dim];
        sizes.extend(&config.hidden);
        sizes.push(1);
        let net = Mlp::new(&sizes, Activation::Tanh, config.seed);
        let adam = Adam::new(&net, config.learning_rate).with_weight_decay(config.weight_decay);
        let rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed);
        Self {
            config,
            samples: Vec::new(),
            by_duration: Vec::new(),
            merge_scratch: Vec::new(),
            incoming_scratch: Vec::new(),
            net,
            adam,
            rng,
            order: Vec::new(),
            order_dirty: true,
            epochs_trained: 0,
        }
    }

    /// Samples absorbed so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total epochs trained so far across all [`CoxTimeTrainer::train`]
    /// calls.
    pub fn epochs_trained(&self) -> usize {
        self.epochs_trained
    }

    /// Absorbs new survival samples, splicing them into the maintained
    /// duration order with an O(n + m) merge instead of an O(n log n)
    /// re-sort. Does not touch the network, optimizer or RNG.
    pub fn ingest(&mut self, new_samples: &[SurvivalSample]) {
        if new_samples.is_empty() {
            return;
        }
        let _span = anubis_obs::span!("coxtime.trainer.ingest");
        let old_len = self.samples.len();
        self.samples.extend_from_slice(new_samples);
        self.incoming_scratch.clear();
        self.incoming_scratch.extend(old_len..self.samples.len());
        let samples = &self.samples;
        self.incoming_scratch
            .sort_by(|&a, &b| samples[a].duration.total_cmp(&samples[b].duration));
        warmstart_merge_into(
            &self.samples,
            &self.by_duration,
            &self.incoming_scratch,
            &mut self.merge_scratch,
        );
        std::mem::swap(&mut self.by_duration, &mut self.merge_scratch);
        self.order_dirty = true;
        anubis_obs::counter!("coxtime.trainer.samples_ingested", new_samples.len() as i64);
    }

    /// Runs `epochs` additional training epochs over the absorbed
    /// samples, continuing the RNG stream and optimizer state exactly
    /// where the previous call stopped.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InsufficientData`] if no absorbed sample
    /// is an event.
    pub fn train(&mut self, epochs: usize) -> Result<(), MetricsError> {
        let _span = anubis_obs::span!("coxtime.trainer.train");
        anubis_obs::counter!("coxtime.trainer.epochs", epochs as i64);
        let samples = &self.samples;
        let by_duration = &self.by_duration;
        let config = &self.config;
        let net = &mut self.net;
        let adam = &mut self.adam;
        let rng = &mut self.rng;
        let events: Vec<usize> = (0..samples.len()).filter(|&i| samples[i].event).collect();
        if events.is_empty() {
            return Err(MetricsError::InsufficientData {
                required: 1,
                actual: 0,
            });
        }
        let features: Vec<Vec<f64>> = samples.iter().map(|s| s.status.features()).collect();
        let scaler = StandardScaler::fit(&features);
        let scaled: Vec<Vec<f64>> = scaler.transform_all(&features);
        let time_scale = time_scale_of(samples);
        let rank_of: Vec<usize> = {
            let mut rank = vec![0usize; samples.len()];
            for (r, &i) in by_duration.iter().enumerate() {
                rank[i] = r;
            }
            rank
        };

        let fill_input = |input: &mut Vec<f64>, t: f64, x: &[f64]| {
            input.clear();
            input.push(t / time_scale);
            input.extend_from_slice(x);
        };

        let threads = config.threads;
        let workers = anubis_parallel::resolve_threads(threads);
        let p = net.parameter_count();
        // Flat per-batch gradient accumulator (canonical parameter order),
        // reused across batches.
        let mut acc = vec![0.0f64; p];
        // Scratch state for the single-worker fast path, reused across the
        // whole fit.
        let mut scratch = BackwardScratch::default();
        let mut cache_i = net.empty_cache();
        let mut caches: Vec<ForwardCache> = Vec::new();
        let mut input: Vec<f64> = Vec::new();
        let mut exps: Vec<f64> = Vec::new();
        let mut controls_buf: Vec<usize> = Vec::new();
        let order = &mut self.order;
        if self.order_dirty {
            order.clear();
            order.extend_from_slice(&events);
            self.order_dirty = false;
        }
        for _ in 0..epochs {
            order.shuffle(&mut *rng);
            for batch in order.chunks(config.batch_size.max(1)) {
                let batch_events = if workers == 1 {
                    // Single worker: accumulate each backward call straight
                    // into `acc`. Every parameter receives exactly one
                    // addition per call, applied in global call order — the
                    // same addition sequence the chunked merge below
                    // replays, so both paths are bit-identical. The RNG
                    // draws interleave with the compute here, but consume
                    // the stream in the same event order as the pre-draw
                    // loop in the parallel branch.
                    acc.fill(0.0);
                    let mut batch_events = 0usize;
                    for &i in batch {
                        // Controls: uniform from the risk-set suffix.
                        let suffix_start = rank_of[i];
                        let suffix_len = samples.len() - suffix_start;
                        if suffix_len < 2 {
                            continue;
                        }
                        controls_buf.clear();
                        for _ in 0..config.controls_per_event {
                            let pick = by_duration[suffix_start + rng.random_range(0..suffix_len)];
                            if pick != i {
                                controls_buf.push(pick);
                            }
                        }
                        if controls_buf.is_empty() {
                            continue;
                        }
                        batch_events += 1;
                        let t_i = samples[i].duration;
                        fill_input(&mut input, t_i, &scaled[i]);
                        net.forward_into(&input, &mut cache_i);
                        let g_i = cache_i.output()[0];
                        while caches.len() < controls_buf.len() {
                            caches.push(net.empty_cache());
                        }
                        exps.clear();
                        for (c, &j) in controls_buf.iter().enumerate() {
                            fill_input(&mut input, t_i, &scaled[j]);
                            net.forward_into(&input, &mut caches[c]);
                            // Softplus-style loss: ln(1 + Σ exp(g_j − g_i)).
                            exps.push((caches[c].output()[0] - g_i).exp());
                        }
                        let denom = 1.0 + exps.iter().sum::<f64>();
                        net.backward_flat(
                            &cache_i,
                            &[-(denom - 1.0) / denom],
                            &mut acc,
                            &mut scratch,
                        );
                        for (c, &e) in exps.iter().enumerate() {
                            net.backward_flat(&caches[c], &[e / denom], &mut acc, &mut scratch);
                        }
                    }
                    batch_events
                } else {
                    // Draw every control index on this thread, in event
                    // order: the RNG stream is exactly the sequential
                    // loop's.
                    let mut tasks: Vec<(usize, Vec<usize>)> = Vec::with_capacity(batch.len());
                    for &i in batch {
                        // Controls: uniform from the risk-set suffix.
                        let suffix_start = rank_of[i];
                        let suffix_len = samples.len() - suffix_start;
                        if suffix_len < 2 {
                            continue;
                        }
                        let mut controls = Vec::with_capacity(config.controls_per_event);
                        for _ in 0..config.controls_per_event {
                            let pick = by_duration[suffix_start + rng.random_range(0..suffix_len)];
                            if pick != i {
                                controls.push(pick);
                            }
                        }
                        if controls.is_empty() {
                            continue;
                        }
                        tasks.push((i, controls));
                    }
                    if tasks.is_empty() {
                        continue;
                    }
                    // Forward/backward each fixed-size event chunk into flat
                    // per-call contribution buffers. Within a backward call
                    // every parameter receives exactly one addition, so
                    // merging the calls in order below replays the
                    // sequential accumulation addition-for-addition.
                    let net_ref: &Mlp = net;
                    let chunk_grads: Vec<Vec<f64>> = anubis_parallel::map_chunks(
                        &tasks,
                        EVENTS_PER_CHUNK,
                        threads,
                        |_, chunk| {
                            let calls: usize = chunk.iter().map(|(_, c)| 1 + c.len()).sum();
                            let mut flat = vec![0.0f64; calls * p];
                            let mut scratch = BackwardScratch::default();
                            let mut cache_i = net_ref.empty_cache();
                            let mut caches: Vec<ForwardCache> = Vec::new();
                            let mut input: Vec<f64> = Vec::new();
                            let mut exps: Vec<f64> = Vec::new();
                            let mut call = 0usize;
                            for (i, controls) in chunk {
                                let t_i = samples[*i].duration;
                                fill_input(&mut input, t_i, &scaled[*i]);
                                net_ref.forward_into(&input, &mut cache_i);
                                let g_i = cache_i.output()[0];
                                while caches.len() < controls.len() {
                                    caches.push(net_ref.empty_cache());
                                }
                                exps.clear();
                                for (c, &j) in controls.iter().enumerate() {
                                    fill_input(&mut input, t_i, &scaled[j]);
                                    net_ref.forward_into(&input, &mut caches[c]);
                                    // Softplus-style loss: ln(1 + Σ exp(g_j − g_i)).
                                    exps.push((caches[c].output()[0] - g_i).exp());
                                }
                                let denom = 1.0 + exps.iter().sum::<f64>();
                                net_ref.backward_flat(
                                    &cache_i,
                                    &[-(denom - 1.0) / denom],
                                    &mut flat[call * p..(call + 1) * p],
                                    &mut scratch,
                                );
                                call += 1;
                                for (c, &e) in exps.iter().enumerate() {
                                    net_ref.backward_flat(
                                        &caches[c],
                                        &[e / denom],
                                        &mut flat[call * p..(call + 1) * p],
                                        &mut scratch,
                                    );
                                    call += 1;
                                }
                            }
                            flat
                        },
                    );
                    // Merge per-call contributions in global call order; the
                    // parameter axis partitions freely because each
                    // parameter's addition chain is independent of the
                    // others.
                    acc.fill(0.0);
                    let chunk_grads_ref = &chunk_grads;
                    anubis_parallel::map_chunks_mut(
                        &mut acc,
                        PARAMS_PER_RANGE,
                        threads,
                        |range_idx, acc_range| {
                            let lo = range_idx * PARAMS_PER_RANGE;
                            for buf in chunk_grads_ref {
                                for call_base in (0..buf.len()).step_by(p) {
                                    let base = call_base + lo;
                                    let contrib = &buf[base..base + acc_range.len()];
                                    for (a, &g) in acc_range.iter_mut().zip(contrib) {
                                        *a += g;
                                    }
                                }
                            }
                        },
                    );
                    tasks.len()
                };
                if batch_events == 0 {
                    continue;
                }
                let inv = 1.0 / batch_events as f64;
                for g in &mut acc {
                    *g *= inv;
                }
                adam.step_flat(&mut *net, &acc);
            }
        }
        self.epochs_trained += epochs;
        Ok(())
    }

    /// Computes the Breslow baseline hazard from the current network and
    /// sample set, returning a fitted [`CoxTimeModel`] snapshot. The
    /// trainer stays usable for further ingestion and training.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InsufficientData`] if no absorbed sample
    /// is an event.
    pub fn finish(&self) -> Result<CoxTimeModel, MetricsError> {
        let _span = anubis_obs::span!("coxtime.trainer.finish");
        let samples = &self.samples;
        let by_duration = &self.by_duration;
        let config = &self.config;
        let net = &self.net;
        let events: Vec<usize> = (0..samples.len()).filter(|&i| samples[i].event).collect();
        if events.is_empty() {
            return Err(MetricsError::InsufficientData {
                required: 1,
                actual: 0,
            });
        }
        let features: Vec<Vec<f64>> = samples.iter().map(|s| s.status.features()).collect();
        let scaler = StandardScaler::fit(&features);
        let scaled: Vec<Vec<f64>> = scaler.transform_all(&features);
        let time_scale = time_scale_of(samples);
        let fill_input = |input: &mut Vec<f64>, t: f64, x: &[f64]| {
            input.clear();
            input.push(t / time_scale);
            input.extend_from_slice(x);
        };
        let threads = config.threads;

        // Breslow baseline hazard on a bucketed event-time grid. Buckets
        // are kept small and anchored at their median event time so the
        // risk-set size is representative of the deaths inside (a coarse
        // bucket anchored at its first event systematically understates
        // late hazards).
        let mut event_times: Vec<f64> = events.iter().map(|&i| samples[i].duration).collect();
        event_times.sort_by(f64::total_cmp);
        let buckets = config.baseline_buckets.max(1).min(event_times.len());
        let per_bucket = event_times.len().div_ceil(buckets);
        // Bucket geometry is cheap and sequential; each bucket's risk-set
        // sum then runs on its own worker, folding in the by_duration
        // suffix order the sequential loop used.
        let mut specs: Vec<(f64, f64, f64, usize)> = Vec::with_capacity(buckets);
        let mut k = 0usize;
        while k < event_times.len() {
            let end = (k + per_bucket).min(event_times.len());
            let t_bucket = event_times[end - 1];
            let t_mid = event_times[(k + end - 1) / 2];
            let deaths = (end - k) as f64;
            // Risk set: samples still at risk at the bucket's median
            // event.
            let start_rank = by_duration.partition_point(|&i| samples[i].duration < t_mid);
            specs.push((t_bucket, t_mid, deaths, start_rank));
            k = end;
        }
        let net_ref: &Mlp = net;
        let baseline: Vec<(f64, f64)> = anubis_parallel::map_items(
            &specs,
            threads,
            |&(t_bucket, t_mid, deaths, start_rank)| {
                let mut cache = net_ref.empty_cache();
                let mut input: Vec<f64> = Vec::new();
                let risk_sum: f64 = by_duration[start_rank..]
                    .iter()
                    .map(|&j| {
                        fill_input(&mut input, t_mid, &scaled[j]);
                        net_ref.forward_scalar_into(&input, &mut cache).exp()
                    })
                    .sum();
                let delta = if risk_sum > 0.0 {
                    deaths / risk_sum
                } else {
                    0.0
                };
                (t_bucket, delta)
            },
        );

        Ok(CoxTimeModel {
            net: self.net.clone(),
            scaler,
            time_scale,
            baseline,
        })
    }

    /// Warm refit: absorbs `delta` and runs `epochs` more epochs from the
    /// current parameters, returning the refreshed model. Approximate by
    /// design — the savings come from not replaying every historical
    /// epoch against the grown sample set.
    pub fn refit(
        &mut self,
        delta: &[SurvivalSample],
        epochs: usize,
    ) -> Result<CoxTimeModel, MetricsError> {
        self.ingest(delta);
        self.train(epochs)?;
        self.finish()
    }
}

/// `max(duration) ∨ 1` — the time normalization a cold fit derives. A
/// sequential max fold over sample order, so the value is independent of
/// how ingestion batched the samples.
fn time_scale_of(samples: &[SurvivalSample]) -> f64 {
    samples
        .iter()
        .map(|s| s.duration)
        .fold(0.0f64, f64::max)
        .max(1.0)
}

/// Per-status evaluation state: features are scaled once and the forward
/// cache plus input buffer are reused across baseline buckets, instead of
/// re-deriving them for every `log_risk` call.
struct RiskEval<'m> {
    model: &'m CoxTimeModel,
    x: Vec<f64>,
    input: Vec<f64>,
    cache: ForwardCache,
}

impl<'m> RiskEval<'m> {
    fn new(model: &'m CoxTimeModel, status: &NodeStatus) -> Self {
        let x = model.scaler.transform(&status.features());
        Self {
            input: Vec::with_capacity(1 + x.len()),
            cache: model.net.empty_cache(),
            model,
            x,
        }
    }

    /// `g(t, x)` — bit-identical to [`CoxTimeModel::log_risk`].
    fn log_risk(&mut self, t: f64) -> f64 {
        self.input.clear();
        self.input.push(t / self.model.time_scale);
        self.input.extend_from_slice(&self.x);
        self.model
            .net
            .forward_scalar_into(&self.input, &mut self.cache)
    }
}

impl SurvivalModel for CoxTimeModel {
    fn expected_tbni(&self, status: &NodeStatus) -> f64 {
        // ∫₀^cap S(t|x) dt over the piecewise-constant survival curve.
        let mut eval = RiskEval::new(self, status);
        let mut integral = 0.0;
        let mut prev_t = 0.0;
        let mut survival = 1.0;
        let mut last_rate = 0.0;
        for &(time, delta) in &self.baseline {
            let t = time.min(TBNI_CAP_HOURS);
            // One network evaluation per bucket (the sequential code
            // recomputed this identical value up to twice).
            let risk = eval.log_risk(time).exp();
            if t > prev_t {
                integral += survival * (t - prev_t);
                last_rate = delta * risk / (t - prev_t);
                prev_t = t;
            }
            survival *= (-delta * risk).exp();
            if prev_t >= TBNI_CAP_HOURS {
                break;
            }
        }
        if prev_t < TBNI_CAP_HOURS {
            // Beyond the last observed event time, extrapolate the hazard
            // at the tail rate instead of freezing survival (which would
            // systematically inflate predictions toward the cap).
            let remaining = TBNI_CAP_HOURS - prev_t;
            if last_rate > 1e-12 {
                integral += survival * (1.0 - (-last_rate * remaining).exp()) / last_rate;
            } else {
                integral += survival * remaining;
            }
        }
        integral.min(TBNI_CAP_HOURS)
    }

    fn incident_probability(&self, status: &NodeStatus, horizon: f64) -> f64 {
        (1.0 - self.survival(status, horizon.max(0.0))).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_hwsim::fault::IncidentCategory;
    use anubis_hwsim::noise::exponential;

    /// Two node populations: healthy (few incidents, long TBNI) and worn
    /// (many incidents, short TBNI).
    fn synthetic_samples(n: usize, seed: u64) -> Vec<SurvivalSample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        for k in 0..n {
            let worn = k % 2 == 1;
            let mut status = NodeStatus::fresh();
            status.advance(200.0 + rng.random_range(0.0..400.0));
            let incidents = if worn {
                8 + (k % 5) as u32
            } else {
                (k % 2) as u32
            };
            for _ in 0..incidents {
                status.record_incident(IncidentCategory::GpuCompute);
            }
            status.hours_since_last_incident = rng.random_range(0.0..50.0);
            let mean = if worn { 60.0 } else { 700.0 };
            let duration = exponential(&mut rng, 1.0 / mean).min(2400.0);
            samples.push(SurvivalSample {
                status,
                duration,
                event: true,
            });
        }
        samples
    }

    fn quick_config() -> CoxTimeConfig {
        CoxTimeConfig {
            epochs: 12,
            hidden: vec![16, 16],
            baseline_buckets: 32,
            ..Default::default()
        }
    }

    fn worn_status() -> NodeStatus {
        let mut s = NodeStatus::fresh();
        s.advance(400.0);
        for _ in 0..10 {
            s.record_incident(IncidentCategory::GpuCompute);
        }
        s
    }

    fn healthy_status() -> NodeStatus {
        let mut s = NodeStatus::fresh();
        s.advance(400.0);
        s
    }

    #[test]
    fn learns_to_separate_populations() {
        let samples = synthetic_samples(400, 1);
        let model = CoxTimeModel::fit(&samples, &quick_config()).unwrap();
        let healthy_tbni = model.expected_tbni(&healthy_status());
        let worn_tbni = model.expected_tbni(&worn_status());
        assert!(
            healthy_tbni > 2.0 * worn_tbni,
            "healthy {healthy_tbni} vs worn {worn_tbni}"
        );
        assert!(
            model.incident_probability(&worn_status(), 48.0)
                > model.incident_probability(&healthy_status(), 48.0)
        );
    }

    #[test]
    fn survival_curve_is_a_valid_survival_function() {
        let samples = synthetic_samples(200, 2);
        let model = CoxTimeModel::fit(&samples, &quick_config()).unwrap();
        let status = healthy_status();
        assert!((model.survival(&status, 0.0) - 1.0).abs() < 1e-9);
        let mut last = 1.0;
        for t in [10.0, 50.0, 200.0, 800.0, 2400.0] {
            let s = model.survival(&status, t);
            assert!((0.0..=1.0).contains(&s));
            assert!(s <= last + 1e-12, "monotone non-increasing");
            last = s;
        }
    }

    #[test]
    fn probability_bounds_and_monotonicity() {
        let samples = synthetic_samples(200, 3);
        let model = CoxTimeModel::fit(&samples, &quick_config()).unwrap();
        let status = worn_status();
        let mut last = 0.0;
        for h in [0.0, 6.0, 24.0, 120.0, 1000.0] {
            let p = model.incident_probability(&status, h);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn beats_global_exponential_on_heterogeneous_data() {
        use crate::survival::{model_accuracy, ExponentialModel};
        let train = synthetic_samples(400, 4);
        let test = synthetic_samples(120, 5);
        let cox = CoxTimeModel::fit(&train, &quick_config()).unwrap();
        let exp = ExponentialModel::fit(&train);
        let acc_cox = model_accuracy(&cox, &test);
        let acc_exp = model_accuracy(&exp, &test);
        assert!(
            acc_cox > acc_exp,
            "Cox-Time {acc_cox} must beat exponential {acc_exp}"
        );
    }

    #[test]
    fn rejects_event_free_training_data() {
        let mut samples = synthetic_samples(10, 6);
        for s in &mut samples {
            s.event = false;
        }
        assert!(matches!(
            CoxTimeModel::fit(&samples, &quick_config()),
            Err(MetricsError::InsufficientData {
                required: 1,
                actual: 0
            })
        ));
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let samples = synthetic_samples(150, 9);
        let fit_with = |threads: usize| {
            let config = CoxTimeConfig {
                threads,
                epochs: 4,
                hidden: vec![12],
                baseline_buckets: 16,
                ..Default::default()
            };
            CoxTimeModel::fit(&samples, &config).unwrap()
        };
        let reference = fit_with(1);
        for threads in [2, 8] {
            let model = fit_with(threads);
            assert_eq!(reference.baseline(), model.baseline());
            for status in [healthy_status(), worn_status()] {
                assert_eq!(
                    reference.expected_tbni(&status),
                    model.expected_tbni(&status)
                );
                assert_eq!(
                    reference.survival(&status, 100.0),
                    model.survival(&status, 100.0)
                );
            }
        }
    }

    /// Bit-equality of two fitted models over a probe set (baseline grid
    /// plus predictions; `==`, not tolerance).
    fn assert_models_bit_equal(a: &CoxTimeModel, b: &CoxTimeModel) {
        assert_eq!(a.baseline(), b.baseline());
        for status in [healthy_status(), worn_status()] {
            assert_eq!(a.expected_tbni(&status), b.expected_tbni(&status));
            for t in [10.0, 100.0, 900.0] {
                assert_eq!(a.survival(&status, t), b.survival(&status, t));
                assert_eq!(a.log_risk(&status, t), b.log_risk(&status, t));
            }
        }
    }

    #[test]
    fn staged_ingestion_matches_cold_fit_bitwise() {
        // Ingesting the sample list in pieces (including one-at-a-time
        // dribble for the tail) must reconstruct the derived dataset
        // state exactly, so training afterwards equals the cold fit to
        // the last bit.
        let samples = synthetic_samples(120, 11);
        let config = CoxTimeConfig {
            epochs: 4,
            hidden: vec![12],
            baseline_buckets: 16,
            ..Default::default()
        };
        let cold = CoxTimeModel::fit(&samples, &config).unwrap();
        for split in [1usize, 40, 119] {
            let mut trainer = CoxTimeTrainer::new(config.clone());
            trainer.ingest(&samples[..split]);
            for s in &samples[split..] {
                trainer.ingest(std::slice::from_ref(s));
            }
            assert_eq!(trainer.len(), samples.len());
            trainer.train(config.epochs).unwrap();
            let warm = trainer.finish().unwrap();
            assert_models_bit_equal(&cold, &warm);
        }
    }

    #[test]
    fn checkpoint_resume_matches_single_run_bitwise() {
        let samples = synthetic_samples(100, 12);
        let config = CoxTimeConfig {
            epochs: 6,
            hidden: vec![12],
            baseline_buckets: 16,
            ..Default::default()
        };
        let mut single = CoxTimeTrainer::new(config.clone());
        single.ingest(&samples);
        single.train(6).unwrap();
        let mut resumed = CoxTimeTrainer::new(config.clone());
        resumed.ingest(&samples);
        resumed.train(2).unwrap();
        // An intermediate snapshot must not perturb later training.
        let _checkpoint = resumed.finish().unwrap();
        resumed.train(4).unwrap();
        assert_eq!(single.epochs_trained(), resumed.epochs_trained());
        assert_models_bit_equal(&single.finish().unwrap(), &resumed.finish().unwrap());
    }

    #[test]
    fn merge_kernel_reproduces_a_stable_sort() {
        // Durations with deliberate ties across the old/new boundary: the
        // merged order must equal a stable sort of the concatenation.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut samples = Vec::new();
        for _ in 0..64 {
            let mut s = synthetic_samples(1, 3).remove(0);
            s.duration = f64::from(rng.random_range(0..12u32));
            samples.push(s);
        }
        for split in [0usize, 1, 20, 63, 64] {
            let mut old: Vec<usize> = (0..split).collect();
            old.sort_by(|&a, &b| samples[a].duration.total_cmp(&samples[b].duration));
            let mut incoming: Vec<usize> = (split..samples.len()).collect();
            incoming.sort_by(|&a, &b| samples[a].duration.total_cmp(&samples[b].duration));
            let mut merged = Vec::new();
            warmstart_merge_into(&samples, &old, &incoming, &mut merged);
            let mut expected: Vec<usize> = (0..samples.len()).collect();
            expected.sort_by(|&a, &b| samples[a].duration.total_cmp(&samples[b].duration));
            assert_eq!(merged, expected, "split {split}");
        }
    }

    #[test]
    fn warm_refit_tracks_population_drift() {
        // A warm refit over a drifted delta must keep separating the
        // populations without replaying the original epochs.
        let initial = synthetic_samples(300, 13);
        let config = quick_config();
        let mut trainer = CoxTimeTrainer::new(config.clone());
        trainer.ingest(&initial);
        trainer.train(config.epochs).unwrap();
        let delta = synthetic_samples(100, 14);
        let refreshed = trainer.refit(&delta, 3).unwrap();
        assert_eq!(trainer.len(), 400);
        assert_eq!(trainer.epochs_trained(), config.epochs + 3);
        assert!(
            refreshed.expected_tbni(&healthy_status())
                > 2.0 * refreshed.expected_tbni(&worn_status())
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = synthetic_samples(100, 7);
        let a = CoxTimeModel::fit(&samples, &quick_config()).unwrap();
        let b = CoxTimeModel::fit(&samples, &quick_config()).unwrap();
        assert_eq!(
            a.expected_tbni(&healthy_status()),
            b.expected_tbni(&healthy_status())
        );
    }
}

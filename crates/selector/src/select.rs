//! Greedy benchmark selection (paper Algorithm 1).

use crate::coverage::CoverageTable;
use crate::status::NodeStatus;
use crate::survival::SurvivalModel;
use anubis_benchsuite::BenchmarkId;
use anubis_lifecycle::LifecycleEvent;

/// Joint probability that at least one node in the set has an incident
/// within `horizon` hours: `p = 1 − Π (1 − pₙ)`.
pub fn joint_incident_probability(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
) -> f64 {
    let survive_all: f64 = statuses
        .iter()
        .map(|s| 1.0 - model.incident_probability(s, horizon).clamp(0.0, 1.0))
        .product();
    1.0 - survive_all
}

/// The residual incident probability after validating with `subset`
/// (Algorithm 1's `IncidentProb`): `p × (1 − C(subset))`.
pub fn residual_probability(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    subset: &[BenchmarkId],
) -> f64 {
    joint_incident_probability(model, statuses, horizon) * (1.0 - coverage.coverage(subset))
}

/// Algorithm 1: greedily add the benchmark with the highest probability
/// decrease per unit time until the residual probability drops below `p0`
/// or the full candidate set is selected.
///
/// Returns the selected subset in selection order. An empty return means
/// validation can be skipped entirely (`p ≤ p0` with no benchmarks).
///
/// Dispatches to the lazy-greedy (CELF) implementation unless
/// [`anubis_parallel::INCREMENTAL_ENV`] is set to `0`; both paths return
/// the same benchmark sequence (see [`celf_core`] for the argument, and
/// the property tests for the evidence).
pub fn select_benchmarks(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    candidates: &[BenchmarkId],
    p0: f64,
) -> Vec<BenchmarkId> {
    if anubis_parallel::incremental_enabled() {
        select_benchmarks_celf(model, statuses, horizon, coverage, candidates, p0)
    } else {
        select_benchmarks_eager(model, statuses, horizon, coverage, candidates, p0)
    }
}

/// The eager reference implementation of Algorithm 1: every round rescans
/// all remaining candidates and recomputes each one's coverage union from
/// scratch. Kept as the semantic baseline the CELF path is proven
/// against.
pub fn select_benchmarks_eager(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    candidates: &[BenchmarkId],
    p0: f64,
) -> Vec<BenchmarkId> {
    let _span = anubis_obs::span!("selector.select_benchmarks");
    let mut subset: Vec<BenchmarkId> = Vec::new();
    let mut p = residual_probability(model, statuses, horizon, coverage, &subset);
    while p > p0 && subset.len() < candidates.len() {
        // Pick the candidate with the best Δp per minute.
        let mut best: Option<(BenchmarkId, f64)> = None;
        for &candidate in candidates.iter().filter(|c| !subset.contains(c)) {
            let mut with = subset.clone();
            with.push(candidate);
            let delta = p - residual_probability(model, statuses, horizon, coverage, &with);
            let efficiency = delta / candidate.spec().runtime_minutes;
            match best {
                Some((_, e)) if e >= efficiency => {}
                _ => best = Some((candidate, efficiency)),
            }
        }
        let Some((choice, efficiency)) = best else {
            break;
        };
        if efficiency <= 0.0 && !subset.is_empty() {
            // No remaining benchmark reduces the probability: adding more
            // wastes node hours.
            break;
        }
        subset.push(choice);
        p = residual_probability(model, statuses, horizon, coverage, &subset);
    }
    anubis_obs::counter!("selector.benchmarks_selected", subset.len() as i64);
    subset
}

/// Algorithm 1 via lazy-greedy (CELF) selection: coverage sets become
/// fixed-width bitmasks, and each round consults a max-priority queue of
/// cached efficiencies instead of rescanning every candidate.
///
/// Returns the same benchmark sequence as [`select_benchmarks_eager`] —
/// bit-for-bit, not approximately (see [`celf_core`]).
pub fn select_benchmarks_celf(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    candidates: &[BenchmarkId],
    p0: f64,
) -> Vec<BenchmarkId> {
    let _span = anubis_obs::span!("selector.select_benchmarks");
    let masks = CoverageMasks::build(coverage, candidates);
    let p_joint = joint_incident_probability(model, statuses, horizon);
    let mut scratch = CelfScratch::default();
    let mut picks = Vec::new();
    let evaluations = celf_core(&masks, p_joint, p0, &mut scratch, &mut picks);
    anubis_obs::counter!("selector.celf_evaluations", evaluations as i64);
    let subset: Vec<BenchmarkId> = picks.iter().map(|&i| candidates[i as usize]).collect();
    anubis_obs::counter!("selector.benchmarks_selected", subset.len() as i64);
    subset
}

/// A [`CoverageTable`] flattened to per-candidate defect bitmasks.
///
/// Bit `k` stands for the `k`-th defect id in the table's ascending
/// order ([`CoverageTable::defect_ids`]); each candidate's mask is one
/// row of `words` consecutive `u64`s. Union coverage becomes a word-wise
/// OR plus a popcount, replacing the eager path's per-round `BTreeSet`
/// unions.
#[derive(Debug, Clone)]
pub struct CoverageMasks {
    words: usize,
    masks: Vec<u64>,
    runtimes: Vec<f64>,
    universe: usize,
}

impl CoverageMasks {
    /// Flattens `coverage` over a fixed candidate list.
    pub fn build(coverage: &CoverageTable, candidates: &[BenchmarkId]) -> Self {
        let positions: std::collections::BTreeMap<u64, usize> = coverage
            .defect_ids()
            .enumerate()
            .map(|(bit, id)| (id, bit))
            .collect();
        let universe = positions.len();
        let words = (universe / 64 + usize::from(!universe.is_multiple_of(64))).max(1);
        let mut masks = vec![0u64; words * candidates.len()];
        let mut runtimes = Vec::with_capacity(candidates.len());
        for (c, &bench) in candidates.iter().enumerate() {
            let row = &mut masks[c * words..(c + 1) * words];
            for id in coverage.defect_ids_of(bench) {
                if let Some(&bit) = positions.get(&id) {
                    row[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            runtimes.push(bench.spec().runtime_minutes);
        }
        Self {
            words,
            masks,
            runtimes,
            universe,
        }
    }

    /// Number of candidates in the mask table.
    pub fn candidates(&self) -> usize {
        self.runtimes.len()
    }

    /// Number of distinct defects (bits) in the universe.
    pub fn universe(&self) -> usize {
        self.universe
    }
}

/// Reusable buffers for [`celf_core`] — hold one across selection rounds
/// to keep the hot loop allocation-free.
#[derive(Debug, Default)]
pub struct CelfScratch {
    covered: Vec<u64>,
    chosen: Vec<bool>,
    marginal: Vec<u32>,
    heap: Vec<CelfEntry>,
}

/// One priority-queue entry: a candidate and its efficiency upper bound
/// for the current round.
#[derive(Debug, Clone, Copy)]
struct CelfEntry {
    bound: f64,
    index: u32,
}

/// Heap priority: higher bound first; equal bounds resolve to the lower
/// candidate index, matching the eager loop's keep-the-earliest tie
/// handling. Numeric (not total-order) comparison on purpose: the eager
/// path compares efficiencies numerically.
fn celf_better(a: CelfEntry, b: CelfEntry) -> bool {
    a.bound > b.bound || (a.bound == b.bound && a.index < b.index)
}

/// Covered fraction with the batch path's empty-universe convention
/// ([`CoverageTable::coverage`] returns 0 with no history).
fn celf_fraction(count: usize, universe: usize) -> f64 {
    if universe == 0 {
        0.0
    } else {
        count as f64 / universe as f64
    }
}

/// The eager loop's efficiency expression, operation for operation:
/// `(p − p_joint·(1 − C_with)) / runtime`. Weakly monotone in
/// `covered_with` even under IEEE rounding (every step — conversion,
/// division by a positive constant, subtraction from a constant,
/// multiplication by a non-negative constant — is monotone, and rounding
/// preserves weak order), which is what makes cached marginal counts
/// usable as exact efficiency upper bounds.
fn celf_efficiency(
    p: f64,
    p_joint: f64,
    covered_with: usize,
    universe: usize,
    runtime: f64,
) -> f64 {
    let residual = p_joint * (1.0 - celf_fraction(covered_with, universe));
    (p - residual) / runtime
}

/// Sift entry `i` down to its heap position.
///
/// Swaps are spelled out manually: `<[T]>::swap` would add a
/// name-collision edge to every workspace `swap` method in the
/// over-approximating A003 call graph, and `celf_core` is an enforced
/// allocation-free entry.
#[allow(clippy::manual_swap)]
fn celf_sift_down(heap: &mut [CelfEntry], mut i: usize) {
    loop {
        let left = 2 * i + 1;
        if left >= heap.len() {
            return;
        }
        let right = left + 1;
        let mut top = if celf_better(heap[left], heap[i]) {
            left
        } else {
            i
        };
        if right < heap.len() && celf_better(heap[right], heap[top]) {
            top = right;
        }
        if top == i {
            return;
        }
        let tmp = heap[i];
        heap[i] = heap[top];
        heap[top] = tmp;
        i = top;
    }
}

/// Floyd heap construction over the freshly refilled entry buffer.
fn celf_heapify(heap: &mut [CelfEntry]) {
    let mut i = heap.len() / 2;
    while i > 0 {
        i -= 1;
        celf_sift_down(heap, i);
    }
}

/// Pops the max-priority entry.
///
/// Manual swap for the same A003 reason as [`celf_sift_down`].
#[allow(clippy::manual_swap)]
fn celf_pop_top(heap: &mut Vec<CelfEntry>) -> Option<CelfEntry> {
    if heap.len() > 1 {
        let last = heap.len() - 1;
        let tmp = heap[0];
        heap[0] = heap[last];
        heap[last] = tmp;
    }
    let top = heap.pop();
    celf_sift_down(heap, 0);
    top
}

/// Popcount of candidate `c`'s mask row.
fn celf_row_popcount(masks: &CoverageMasks, c: usize) -> u32 {
    let row = &masks.masks[c * masks.words..(c + 1) * masks.words];
    let mut count = 0u32;
    for &word in row {
        count += word.count_ones();
    }
    count
}

/// Popcount of `covered ∪ mask(c)` without materialising the union.
fn celf_union_popcount(masks: &CoverageMasks, covered: &[u64], c: usize) -> usize {
    let row = &masks.masks[c * masks.words..(c + 1) * masks.words];
    let mut count = 0usize;
    for (w, &word) in row.iter().enumerate() {
        count += (covered[w] | word).count_ones() as usize;
    }
    count
}

/// ORs candidate `c`'s mask row into the covered set.
fn celf_or_row(covered: &mut [u64], masks: &CoverageMasks, c: usize) {
    let row = &masks.masks[c * masks.words..(c + 1) * masks.words];
    for (w, &word) in row.iter().enumerate() {
        covered[w] |= word;
    }
}

/// Total popcount of the covered set.
fn celf_popcount(covered: &[u64]) -> usize {
    let mut count = 0usize;
    for &word in covered {
        count += word.count_ones() as usize;
    }
    count
}

/// The CELF selection loop. Appends the chosen candidate indices (into
/// the mask table's candidate order) to `selected` and returns how many
/// full coverage-union evaluations were performed — the work the lazy
/// queue saves relative to eager's `rounds × candidates`.
///
/// # Equivalence to the eager loop
///
/// Each candidate carries its marginal defect *count* from its most
/// recent evaluation. Marginal counts are exact integers and
/// non-increasing as the covered set grows (submodularity), so a cached
/// count is an upper bound on the current one. At the start of each
/// round every unselected candidate's cached count is converted to an
/// efficiency *bound* through [`celf_efficiency`] with the **current**
/// residual `p` — by that function's float monotonicity the bound is
/// `≥` the candidate's true current efficiency, with bit-exact equality
/// when the cached count is still fresh. The queue then yields
/// candidates in `(bound desc, index asc)` order; each is re-evaluated
/// until the incumbent best can no longer be beaten (nor tied by a
/// smaller index). The surviving `(max efficiency, min index)` pick is
/// exactly the eager scan's keep-the-earliest argmax, so the selected
/// sequence — and every residual-probability update that follows — is
/// bit-identical.
pub fn celf_core(
    masks: &CoverageMasks,
    p_joint: f64,
    p0: f64,
    scratch: &mut CelfScratch,
    selected: &mut Vec<u32>,
) -> u64 {
    selected.clear();
    let n = masks.runtimes.len();
    scratch.covered.clear();
    scratch.covered.resize(masks.words, 0);
    scratch.chosen.clear();
    scratch.chosen.resize(n, false);
    scratch.marginal.clear();
    scratch.marginal.resize(n, 0);
    // Seed the stale marginals with each candidate's own defect count —
    // its exact marginal against the empty covered set.
    for c in 0..n {
        scratch.marginal[c] = celf_row_popcount(masks, c);
    }
    let mut count = 0usize;
    let mut p = p_joint * (1.0 - celf_fraction(count, masks.universe));
    let mut evaluations = 0u64;
    while p > p0 && selected.len() < n {
        // Refresh every unselected candidate's bound against the current
        // residual. This is O(n) float work; the expensive coverage
        // unions below run only until the incumbent is provably best.
        scratch.heap.clear();
        for c in 0..n {
            if scratch.chosen[c] {
                continue;
            }
            let with = count + scratch.marginal[c] as usize;
            let bound = celf_efficiency(p, p_joint, with, masks.universe, masks.runtimes[c]);
            scratch.heap.push(CelfEntry {
                bound,
                index: c as u32,
            });
        }
        celf_heapify(&mut scratch.heap);
        let mut best: Option<(f64, u32)> = None;
        while let Some(top) = celf_pop_top(&mut scratch.heap) {
            if let Some((best_eff, best_index)) = best {
                // Remaining bounds are ≤ this one; once the incumbent can
                // neither be beaten nor tied by a smaller index, stop.
                if top.bound < best_eff || (top.bound == best_eff && best_index < top.index) {
                    break;
                }
            }
            let c = top.index as usize;
            let with = celf_union_popcount(masks, &scratch.covered, c);
            scratch.marginal[c] = (with - count) as u32;
            evaluations += 1;
            let efficiency = celf_efficiency(p, p_joint, with, masks.universe, masks.runtimes[c]);
            let replace = match best {
                None => true,
                Some((best_eff, best_index)) => {
                    efficiency > best_eff || (efficiency == best_eff && top.index < best_index)
                }
            };
            if replace {
                best = Some((efficiency, top.index));
            }
        }
        let Some((efficiency, index)) = best else {
            break;
        };
        if efficiency <= 0.0 && !selected.is_empty() {
            // No remaining benchmark reduces the probability: adding more
            // wastes node hours.
            break;
        }
        selected.push(index);
        scratch.chosen[index as usize] = true;
        celf_or_row(&mut scratch.covered, masks, index as usize);
        count = celf_popcount(&scratch.covered);
        p = p_joint * (1.0 - celf_fraction(count, masks.universe));
    }
    evaluations
}

/// Selector configuration.
#[derive(Debug, Clone, Copy)]
pub struct SelectorConfig {
    /// Acceptable residual incident probability `p₀`.
    pub p0: f64,
    /// Default job-duration horizon in hours for regular checks.
    pub default_horizon_hours: f64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            p0: 0.1,
            default_horizon_hours: 24.0,
        }
    }
}

/// The ANUBIS Selector: a survival model plus historical coverage, deciding
/// when to validate and with which subset.
///
/// # Examples
///
/// ```
/// use anubis_benchsuite::BenchmarkId;
/// use anubis_selector::{CoverageTable, ExponentialModel, NodeStatus, Selector, SelectorConfig};
///
/// let mut coverage = CoverageTable::new();
/// for defect in 0..10 {
///     coverage.record(BenchmarkId::IbHcaLoopback, defect);
/// }
/// let selector = Selector::new(
///     Box::new(ExponentialModel { rate: 1.0 / 50.0 }),
///     coverage,
///     SelectorConfig::default(),
/// );
/// let statuses = vec![NodeStatus::fresh(); 4];
/// assert!(selector.should_validate(&statuses, 24.0));
/// let subset = selector.select(&statuses, 24.0);
/// assert_eq!(subset, vec![BenchmarkId::IbHcaLoopback]);
/// ```
pub struct Selector {
    model: Box<dyn SurvivalModel + Send + Sync>,
    coverage: CoverageTable,
    config: SelectorConfig,
}

impl std::fmt::Debug for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selector")
            .field("coverage_defects", &self.coverage.total_defects())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Selector {
    /// Creates a Selector from a fitted survival model and defect history.
    pub fn new(
        model: Box<dyn SurvivalModel + Send + Sync>,
        coverage: CoverageTable,
        config: SelectorConfig,
    ) -> Self {
        Self {
            model,
            coverage,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// The coverage history (mutable, to record new defects).
    pub fn coverage_mut(&mut self) -> &mut CoverageTable {
        &mut self.coverage
    }

    /// Read-only coverage history.
    pub fn coverage(&self) -> &CoverageTable {
        &self.coverage
    }

    /// Joint incident probability of a node set over a horizon.
    pub fn incident_probability(&self, statuses: &[NodeStatus], horizon: f64) -> f64 {
        joint_incident_probability(self.model.as_ref(), statuses, horizon)
    }

    /// Whether validation is warranted (the Selector skips it when the
    /// joint probability is already below `p₀`, saving node hours).
    pub fn should_validate(&self, statuses: &[NodeStatus], horizon: f64) -> bool {
        self.incident_probability(statuses, horizon) > self.config.p0
    }

    /// Maps the risk decision onto the node-lifecycle machine: the event
    /// the coordinator should apply to the nodes in this set —
    /// [`LifecycleEvent::RiskCrossed`] when the joint incident probability
    /// exceeds `p₀` (validation warranted), [`LifecycleEvent::RiskCleared`]
    /// otherwise. Callers gate the application with
    /// [`anubis_lifecycle::NodeLifecycle::can`]: `RiskCleared` is only
    /// legal on a node that is currently suspect.
    pub fn assess(&self, statuses: &[NodeStatus], horizon: f64) -> LifecycleEvent {
        if self.should_validate(statuses, horizon) {
            LifecycleEvent::RiskCrossed
        } else {
            LifecycleEvent::RiskCleared
        }
    }

    /// Selects a benchmark subset from the full suite for these nodes.
    pub fn select(&self, statuses: &[NodeStatus], horizon: f64) -> Vec<BenchmarkId> {
        select_benchmarks(
            self.model.as_ref(),
            statuses,
            horizon,
            &self.coverage,
            &BenchmarkId::ALL,
            self.config.p0,
        )
    }

    /// Selects from an explicit candidate list.
    pub fn select_from(
        &self,
        statuses: &[NodeStatus],
        horizon: f64,
        candidates: &[BenchmarkId],
    ) -> Vec<BenchmarkId> {
        select_benchmarks(
            self.model.as_ref(),
            statuses,
            horizon,
            &self.coverage,
            candidates,
            self.config.p0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survival::ExponentialModel;

    /// Rate such that a 24h horizon gives ~0.3 per node.
    fn risky_model() -> ExponentialModel {
        ExponentialModel {
            rate: -((1.0f64 - 0.3).ln()) / 24.0,
        }
    }

    fn safe_model() -> ExponentialModel {
        ExponentialModel { rate: 1e-6 }
    }

    fn statuses(n: usize) -> Vec<NodeStatus> {
        vec![NodeStatus::fresh(); n]
    }

    /// Coverage: loopback finds 6 defects cheaply, stress finds 8 of 10
    /// slowly, GEMM finds 2 that loopback also finds.
    fn coverage() -> CoverageTable {
        let mut table = CoverageTable::new();
        for d in 0..6u64 {
            table.record(BenchmarkId::IbHcaLoopback, d);
        }
        for d in 2..10u64 {
            table.record(BenchmarkId::GpuStress, d);
        }
        table.record(BenchmarkId::GpuGemmFp16, 0);
        table.record(BenchmarkId::GpuGemmFp16, 1);
        table
    }

    #[test]
    fn joint_probability_composes() {
        let model = risky_model();
        let p1 = joint_incident_probability(&model, &statuses(1), 24.0);
        let p4 = joint_incident_probability(&model, &statuses(4), 24.0);
        assert!((p1 - 0.3).abs() < 1e-9);
        assert!((p4 - (1.0 - 0.7f64.powi(4))).abs() < 1e-9);
        assert_eq!(joint_incident_probability(&model, &[], 24.0), 0.0);
    }

    #[test]
    fn skips_validation_when_risk_is_low() {
        let selector = Selector::new(
            Box::new(safe_model()),
            coverage(),
            SelectorConfig::default(),
        );
        assert!(!selector.should_validate(&statuses(8), 24.0));
        assert!(selector.select(&statuses(8), 24.0).is_empty());
    }

    #[test]
    fn selects_cheap_high_coverage_first() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.2);
        assert!(!selected.is_empty());
        // Loopback: 0.6 coverage / 4 min >> stress: 0.8 / 45 min.
        assert_eq!(selected[0], BenchmarkId::IbHcaLoopback);
    }

    #[test]
    fn stops_once_p0_is_met() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        // p(2 nodes) = 0.51; loopback leaves 0.51*0.4 = 0.204 ≤ 0.25.
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.25);
        assert_eq!(selected, vec![BenchmarkId::IbHcaLoopback]);
    }

    #[test]
    fn escalates_to_more_benchmarks_for_tighter_p0() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        let loose = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.25);
        let tight = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.05);
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn full_set_when_nothing_suffices() {
        // Coverage never reaches 1, p0 = 0: selection ends at the full
        // candidate list without looping forever.
        let mut table = CoverageTable::new();
        table.record(BenchmarkId::CpuLatency, 0);
        table.record(BenchmarkId::DiskSeqRead, 1);
        // A third defect no candidate covers.
        table.record(BenchmarkId::GpuStress, 2);
        let candidates = [BenchmarkId::CpuLatency, BenchmarkId::DiskSeqRead];
        let model = risky_model();
        let selected = select_benchmarks(&model, &statuses(4), 24.0, &table, &candidates, 0.0);
        assert_eq!(selected.len(), 2, "selects everything then stops");
    }

    #[test]
    fn no_history_selects_cheapest_then_stops() {
        // With an empty coverage table nothing reduces p; the algorithm
        // adds one benchmark (Algorithm 1 always admits its first pick)
        // then stops on zero marginal gain.
        let table = CoverageTable::new();
        let model = risky_model();
        let candidates = [BenchmarkId::GpuStress, BenchmarkId::CpuLatency];
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.1);
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn assess_maps_risk_onto_lifecycle_events() {
        use anubis_lifecycle::NodeLifecycle;
        let risky = Selector::new(
            Box::new(risky_model()),
            coverage(),
            SelectorConfig::default(),
        );
        let safe = Selector::new(
            Box::new(safe_model()),
            coverage(),
            SelectorConfig::default(),
        );
        let set = statuses(4);
        assert_eq!(risky.assess(&set, 24.0), LifecycleEvent::RiskCrossed);
        assert_eq!(safe.assess(&set, 24.0), LifecycleEvent::RiskCleared);

        // The events drive the machine through the documented path: a
        // crossing flags the node, a later clear releases it.
        let mut life = NodeLifecycle::new();
        life.apply(risky.assess(&set, 24.0)).unwrap();
        assert!(life.state().is_suspect());
        life.apply(safe.assess(&set, 24.0)).unwrap();
        assert!(life.state().is_healthy());
        // On a healthy node a clear is a no-op the caller must gate on.
        assert!(!life.can(LifecycleEvent::RiskCleared));
    }

    #[test]
    fn celf_matches_eager_on_the_fixture() {
        let table = coverage();
        let model = risky_model();
        for nodes in [1usize, 2, 8] {
            for p0 in [0.0, 0.05, 0.2, 0.25, 0.5] {
                let candidates = [
                    BenchmarkId::IbHcaLoopback,
                    BenchmarkId::GpuStress,
                    BenchmarkId::GpuGemmFp16,
                ];
                let set = statuses(nodes);
                let eager = select_benchmarks_eager(&model, &set, 24.0, &table, &candidates, p0);
                let celf = select_benchmarks_celf(&model, &set, 24.0, &table, &candidates, p0);
                assert_eq!(celf, eager, "nodes {nodes}, p0 {p0}");
            }
        }
    }

    #[test]
    fn celf_admits_first_pick_without_history() {
        // Empty universe: every efficiency is exactly 0; both paths admit
        // one benchmark then stop on zero marginal gain.
        let table = CoverageTable::new();
        let model = risky_model();
        let candidates = [BenchmarkId::GpuStress, BenchmarkId::CpuLatency];
        let eager = select_benchmarks_eager(&model, &statuses(2), 24.0, &table, &candidates, 0.1);
        let celf = select_benchmarks_celf(&model, &statuses(2), 24.0, &table, &candidates, 0.1);
        assert_eq!(celf, eager);
        assert_eq!(celf.len(), 1);
    }

    #[test]
    fn celf_scratch_is_reusable_across_calls() {
        let table = coverage();
        let model = risky_model();
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let masks = CoverageMasks::build(&table, &candidates);
        assert_eq!(masks.candidates(), 3);
        assert_eq!(masks.universe(), 10);
        let mut scratch = CelfScratch::default();
        let mut picks = Vec::new();
        let set = statuses(2);
        let p_joint = joint_incident_probability(&model, &set, 24.0);
        let evals_first = celf_core(&masks, p_joint, 0.05, &mut scratch, &mut picks);
        let first = picks.clone();
        let evals_second = celf_core(&masks, p_joint, 0.05, &mut scratch, &mut picks);
        assert_eq!(picks, first, "stale scratch state must not leak");
        assert_eq!(evals_first, evals_second);
        // The lazy queue must not evaluate more unions than eager's
        // rounds × remaining-candidates rescan would.
        assert!(evals_first <= (first.len() as u64 + 1) * candidates.len() as u64);
    }

    #[test]
    fn selector_facade_records_defects() {
        let mut selector = Selector::new(
            Box::new(risky_model()),
            CoverageTable::new(),
            SelectorConfig::default(),
        );
        selector
            .coverage_mut()
            .record(BenchmarkId::IbHcaLoopback, 42);
        assert_eq!(selector.coverage().total_defects(), 1);
        assert!(selector.should_validate(&statuses(4), 24.0));
    }
}

//! Greedy benchmark selection (paper Algorithm 1).

use crate::coverage::CoverageTable;
use crate::status::NodeStatus;
use crate::survival::SurvivalModel;
use anubis_benchsuite::BenchmarkId;
use anubis_lifecycle::LifecycleEvent;

/// Joint probability that at least one node in the set has an incident
/// within `horizon` hours: `p = 1 − Π (1 − pₙ)`.
pub fn joint_incident_probability(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
) -> f64 {
    let survive_all: f64 = statuses
        .iter()
        .map(|s| 1.0 - model.incident_probability(s, horizon).clamp(0.0, 1.0))
        .product();
    1.0 - survive_all
}

/// The residual incident probability after validating with `subset`
/// (Algorithm 1's `IncidentProb`): `p × (1 − C(subset))`.
pub fn residual_probability(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    subset: &[BenchmarkId],
) -> f64 {
    joint_incident_probability(model, statuses, horizon) * (1.0 - coverage.coverage(subset))
}

/// Algorithm 1: greedily add the benchmark with the highest probability
/// decrease per unit time until the residual probability drops below `p0`
/// or the full candidate set is selected.
///
/// Returns the selected subset in selection order. An empty return means
/// validation can be skipped entirely (`p ≤ p0` with no benchmarks).
pub fn select_benchmarks(
    model: &dyn SurvivalModel,
    statuses: &[NodeStatus],
    horizon: f64,
    coverage: &CoverageTable,
    candidates: &[BenchmarkId],
    p0: f64,
) -> Vec<BenchmarkId> {
    let _span = anubis_obs::span!("selector.select_benchmarks");
    let mut subset: Vec<BenchmarkId> = Vec::new();
    let mut p = residual_probability(model, statuses, horizon, coverage, &subset);
    while p > p0 && subset.len() < candidates.len() {
        // Pick the candidate with the best Δp per minute.
        let mut best: Option<(BenchmarkId, f64)> = None;
        for &candidate in candidates.iter().filter(|c| !subset.contains(c)) {
            let mut with = subset.clone();
            with.push(candidate);
            let delta = p - residual_probability(model, statuses, horizon, coverage, &with);
            let efficiency = delta / candidate.spec().runtime_minutes;
            match best {
                Some((_, e)) if e >= efficiency => {}
                _ => best = Some((candidate, efficiency)),
            }
        }
        let Some((choice, efficiency)) = best else {
            break;
        };
        if efficiency <= 0.0 && !subset.is_empty() {
            // No remaining benchmark reduces the probability: adding more
            // wastes node hours.
            break;
        }
        subset.push(choice);
        p = residual_probability(model, statuses, horizon, coverage, &subset);
    }
    anubis_obs::counter!("selector.benchmarks_selected", subset.len() as i64);
    subset
}

/// Selector configuration.
#[derive(Debug, Clone, Copy)]
pub struct SelectorConfig {
    /// Acceptable residual incident probability `p₀`.
    pub p0: f64,
    /// Default job-duration horizon in hours for regular checks.
    pub default_horizon_hours: f64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        Self {
            p0: 0.1,
            default_horizon_hours: 24.0,
        }
    }
}

/// The ANUBIS Selector: a survival model plus historical coverage, deciding
/// when to validate and with which subset.
///
/// # Examples
///
/// ```
/// use anubis_benchsuite::BenchmarkId;
/// use anubis_selector::{CoverageTable, ExponentialModel, NodeStatus, Selector, SelectorConfig};
///
/// let mut coverage = CoverageTable::new();
/// for defect in 0..10 {
///     coverage.record(BenchmarkId::IbHcaLoopback, defect);
/// }
/// let selector = Selector::new(
///     Box::new(ExponentialModel { rate: 1.0 / 50.0 }),
///     coverage,
///     SelectorConfig::default(),
/// );
/// let statuses = vec![NodeStatus::fresh(); 4];
/// assert!(selector.should_validate(&statuses, 24.0));
/// let subset = selector.select(&statuses, 24.0);
/// assert_eq!(subset, vec![BenchmarkId::IbHcaLoopback]);
/// ```
pub struct Selector {
    model: Box<dyn SurvivalModel + Send + Sync>,
    coverage: CoverageTable,
    config: SelectorConfig,
}

impl std::fmt::Debug for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selector")
            .field("coverage_defects", &self.coverage.total_defects())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Selector {
    /// Creates a Selector from a fitted survival model and defect history.
    pub fn new(
        model: Box<dyn SurvivalModel + Send + Sync>,
        coverage: CoverageTable,
        config: SelectorConfig,
    ) -> Self {
        Self {
            model,
            coverage,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// The coverage history (mutable, to record new defects).
    pub fn coverage_mut(&mut self) -> &mut CoverageTable {
        &mut self.coverage
    }

    /// Read-only coverage history.
    pub fn coverage(&self) -> &CoverageTable {
        &self.coverage
    }

    /// Joint incident probability of a node set over a horizon.
    pub fn incident_probability(&self, statuses: &[NodeStatus], horizon: f64) -> f64 {
        joint_incident_probability(self.model.as_ref(), statuses, horizon)
    }

    /// Whether validation is warranted (the Selector skips it when the
    /// joint probability is already below `p₀`, saving node hours).
    pub fn should_validate(&self, statuses: &[NodeStatus], horizon: f64) -> bool {
        self.incident_probability(statuses, horizon) > self.config.p0
    }

    /// Maps the risk decision onto the node-lifecycle machine: the event
    /// the coordinator should apply to the nodes in this set —
    /// [`LifecycleEvent::RiskCrossed`] when the joint incident probability
    /// exceeds `p₀` (validation warranted), [`LifecycleEvent::RiskCleared`]
    /// otherwise. Callers gate the application with
    /// [`anubis_lifecycle::NodeLifecycle::can`]: `RiskCleared` is only
    /// legal on a node that is currently suspect.
    pub fn assess(&self, statuses: &[NodeStatus], horizon: f64) -> LifecycleEvent {
        if self.should_validate(statuses, horizon) {
            LifecycleEvent::RiskCrossed
        } else {
            LifecycleEvent::RiskCleared
        }
    }

    /// Selects a benchmark subset from the full suite for these nodes.
    pub fn select(&self, statuses: &[NodeStatus], horizon: f64) -> Vec<BenchmarkId> {
        select_benchmarks(
            self.model.as_ref(),
            statuses,
            horizon,
            &self.coverage,
            &BenchmarkId::ALL,
            self.config.p0,
        )
    }

    /// Selects from an explicit candidate list.
    pub fn select_from(
        &self,
        statuses: &[NodeStatus],
        horizon: f64,
        candidates: &[BenchmarkId],
    ) -> Vec<BenchmarkId> {
        select_benchmarks(
            self.model.as_ref(),
            statuses,
            horizon,
            &self.coverage,
            candidates,
            self.config.p0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survival::ExponentialModel;

    /// Rate such that a 24h horizon gives ~0.3 per node.
    fn risky_model() -> ExponentialModel {
        ExponentialModel {
            rate: -((1.0f64 - 0.3).ln()) / 24.0,
        }
    }

    fn safe_model() -> ExponentialModel {
        ExponentialModel { rate: 1e-6 }
    }

    fn statuses(n: usize) -> Vec<NodeStatus> {
        vec![NodeStatus::fresh(); n]
    }

    /// Coverage: loopback finds 6 defects cheaply, stress finds 8 of 10
    /// slowly, GEMM finds 2 that loopback also finds.
    fn coverage() -> CoverageTable {
        let mut table = CoverageTable::new();
        for d in 0..6u64 {
            table.record(BenchmarkId::IbHcaLoopback, d);
        }
        for d in 2..10u64 {
            table.record(BenchmarkId::GpuStress, d);
        }
        table.record(BenchmarkId::GpuGemmFp16, 0);
        table.record(BenchmarkId::GpuGemmFp16, 1);
        table
    }

    #[test]
    fn joint_probability_composes() {
        let model = risky_model();
        let p1 = joint_incident_probability(&model, &statuses(1), 24.0);
        let p4 = joint_incident_probability(&model, &statuses(4), 24.0);
        assert!((p1 - 0.3).abs() < 1e-9);
        assert!((p4 - (1.0 - 0.7f64.powi(4))).abs() < 1e-9);
        assert_eq!(joint_incident_probability(&model, &[], 24.0), 0.0);
    }

    #[test]
    fn skips_validation_when_risk_is_low() {
        let selector = Selector::new(
            Box::new(safe_model()),
            coverage(),
            SelectorConfig::default(),
        );
        assert!(!selector.should_validate(&statuses(8), 24.0));
        assert!(selector.select(&statuses(8), 24.0).is_empty());
    }

    #[test]
    fn selects_cheap_high_coverage_first() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.2);
        assert!(!selected.is_empty());
        // Loopback: 0.6 coverage / 4 min >> stress: 0.8 / 45 min.
        assert_eq!(selected[0], BenchmarkId::IbHcaLoopback);
    }

    #[test]
    fn stops_once_p0_is_met() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        // p(2 nodes) = 0.51; loopback leaves 0.51*0.4 = 0.204 ≤ 0.25.
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.25);
        assert_eq!(selected, vec![BenchmarkId::IbHcaLoopback]);
    }

    #[test]
    fn escalates_to_more_benchmarks_for_tighter_p0() {
        let candidates = [
            BenchmarkId::IbHcaLoopback,
            BenchmarkId::GpuStress,
            BenchmarkId::GpuGemmFp16,
        ];
        let table = coverage();
        let model = risky_model();
        let loose = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.25);
        let tight = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.05);
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn full_set_when_nothing_suffices() {
        // Coverage never reaches 1, p0 = 0: selection ends at the full
        // candidate list without looping forever.
        let mut table = CoverageTable::new();
        table.record(BenchmarkId::CpuLatency, 0);
        table.record(BenchmarkId::DiskSeqRead, 1);
        // A third defect no candidate covers.
        table.record(BenchmarkId::GpuStress, 2);
        let candidates = [BenchmarkId::CpuLatency, BenchmarkId::DiskSeqRead];
        let model = risky_model();
        let selected = select_benchmarks(&model, &statuses(4), 24.0, &table, &candidates, 0.0);
        assert_eq!(selected.len(), 2, "selects everything then stops");
    }

    #[test]
    fn no_history_selects_cheapest_then_stops() {
        // With an empty coverage table nothing reduces p; the algorithm
        // adds one benchmark (Algorithm 1 always admits its first pick)
        // then stops on zero marginal gain.
        let table = CoverageTable::new();
        let model = risky_model();
        let candidates = [BenchmarkId::GpuStress, BenchmarkId::CpuLatency];
        let selected = select_benchmarks(&model, &statuses(2), 24.0, &table, &candidates, 0.1);
        assert_eq!(selected.len(), 1);
    }

    #[test]
    fn assess_maps_risk_onto_lifecycle_events() {
        use anubis_lifecycle::NodeLifecycle;
        let risky = Selector::new(
            Box::new(risky_model()),
            coverage(),
            SelectorConfig::default(),
        );
        let safe = Selector::new(
            Box::new(safe_model()),
            coverage(),
            SelectorConfig::default(),
        );
        let set = statuses(4);
        assert_eq!(risky.assess(&set, 24.0), LifecycleEvent::RiskCrossed);
        assert_eq!(safe.assess(&set, 24.0), LifecycleEvent::RiskCleared);

        // The events drive the machine through the documented path: a
        // crossing flags the node, a later clear releases it.
        let mut life = NodeLifecycle::new();
        life.apply(risky.assess(&set, 24.0)).unwrap();
        assert!(life.state().is_suspect());
        life.apply(safe.assess(&set, 24.0)).unwrap();
        assert!(life.state().is_healthy());
        // On a healthy node a clear is a no-op the caller must gate on.
        assert!(!life.can(LifecycleEvent::RiskCleared));
    }

    #[test]
    fn selector_facade_records_defects() {
        let mut selector = Selector::new(
            Box::new(risky_model()),
            CoverageTable::new(),
            SelectorConfig::default(),
        );
        selector
            .coverage_mut()
            .record(BenchmarkId::IbHcaLoopback, 42);
        assert_eq!(selector.coverage().total_defects(), 1);
        assert!(selector.should_validate(&statuses(4), 24.0));
    }
}

//! Property-based tests for selection and survival invariants.

use anubis_benchsuite::BenchmarkId;
use anubis_selector::{
    model_accuracy, select_benchmarks, select_benchmarks_celf, select_benchmarks_eager,
    CoverageTable, ExponentialModel, ExponentialPerCountModel, NodeStatus, SurvivalModel,
    SurvivalSample,
};
use proptest::prelude::*;

fn coverage_strategy() -> impl Strategy<Value = CoverageTable> {
    prop::collection::vec((0usize..31, 0u64..40), 0..120).prop_map(|records| {
        let mut table = CoverageTable::new();
        for (bench_idx, defect) in records {
            table.record(BenchmarkId::ALL[bench_idx], defect);
        }
        table
    })
}

proptest! {
    /// Selection always returns a subset of the candidates, without
    /// duplicates, and its residual probability never exceeds the
    /// unvalidated probability.
    #[test]
    fn selection_is_a_proper_subset(
        table in coverage_strategy(),
        rate_inv in 20.0f64..2000.0,
        p0 in 0.0f64..0.9,
        nodes in 1usize..16,
    ) {
        let model = ExponentialModel { rate: 1.0 / rate_inv };
        let statuses = vec![NodeStatus::fresh(); nodes];
        let subset = select_benchmarks(&model, &statuses, 36.0, &table, &BenchmarkId::ALL, p0);
        prop_assert!(subset.len() <= BenchmarkId::ALL.len());
        let mut dedup = subset.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), subset.len(), "no duplicates");
        use anubis_selector::select::residual_probability;
        let before = residual_probability(&model, &statuses, 36.0, &table, &[]);
        let after = residual_probability(&model, &statuses, 36.0, &table, &subset);
        prop_assert!(after <= before + 1e-12);
    }

    /// The lazy-greedy (CELF) path returns the eager scan's exact
    /// benchmark sequence — same identities, same order — for arbitrary
    /// coverage histories, candidate lists, risk levels and thresholds.
    /// Runtime ratios in the suite make real-value efficiency ties
    /// common (e.g. marginal 2 over 4 minutes vs 1 over 2), so this also
    /// exercises the keep-the-earliest tie handling at full bit
    /// fidelity.
    #[test]
    fn celf_selection_is_bit_identical_to_eager(
        table in coverage_strategy(),
        candidate_mask in 0u32..(1u32 << 31),
        rate_inv in 20.0f64..2000.0,
        p0 in 0.0f64..0.9,
        nodes in 1usize..16,
    ) {
        let candidates: Vec<BenchmarkId> = BenchmarkId::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| candidate_mask & (1 << i) != 0)
            .map(|(_, &b)| b)
            .collect();
        let model = ExponentialModel { rate: 1.0 / rate_inv };
        let statuses = vec![NodeStatus::fresh(); nodes];
        let eager =
            select_benchmarks_eager(&model, &statuses, 36.0, &table, &candidates, p0);
        let celf = select_benchmarks_celf(&model, &statuses, 36.0, &table, &candidates, p0);
        prop_assert_eq!(celf, eager);
    }

    /// Coverage is monotone and bounded for arbitrary histories.
    #[test]
    fn coverage_is_monotone_and_bounded(table in coverage_strategy(), split in 0usize..31) {
        let all = BenchmarkId::ALL;
        let partial = &all[..split];
        let c_partial = table.coverage(partial);
        let c_full = table.coverage(&all);
        prop_assert!((0.0..=1.0).contains(&c_partial));
        prop_assert!(c_partial <= c_full + 1e-12);
        if table.total_defects() > 0 {
            prop_assert!((c_full - 1.0).abs() < 1e-12, "ALL covers everything recorded");
        }
    }

    /// Survival-model sanity under arbitrary fitted data: probabilities
    /// in [0, 1] and monotone in the horizon; accuracy in [0, 1].
    #[test]
    fn survival_model_sanity(
        durations in prop::collection::vec(1.0f64..2400.0, 4..60),
        counts in prop::collection::vec(0u32..12, 4..60),
        horizon in 1.0f64..500.0,
    ) {
        let samples: Vec<SurvivalSample> = durations
            .iter()
            .zip(counts.iter().cycle())
            .map(|(&duration, &count)| {
                let mut status = NodeStatus::fresh();
                status.advance(100.0);
                for _ in 0..count {
                    status.record_incident(
                        anubis_hwsim::fault::IncidentCategory::GpuCompute,
                    );
                }
                SurvivalSample { status, duration, event: true }
            })
            .collect();
        for model in [
            Box::new(ExponentialModel::fit(&samples)) as Box<dyn SurvivalModel + Sync>,
            Box::new(ExponentialPerCountModel::fit(&samples)),
        ] {
            let status = samples[0].status;
            let p_short = model.incident_probability(&status, horizon);
            let p_long = model.incident_probability(&status, horizon * 2.0);
            prop_assert!((0.0..=1.0).contains(&p_short));
            prop_assert!(p_long >= p_short - 1e-12);
            let tbni = model.expected_tbni(&status);
            prop_assert!(tbni > 0.0 && tbni <= 2400.0);
            let acc = model_accuracy(model.as_ref(), &samples);
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }
}

//! Experiment harness: one module per table/figure of the paper.
//!
//! Every experiment exposes a `Config` with a realistic `Default` and a
//! scaled-down [`quick`](experiments::fig8::Fig8Config::quick)-style
//! preset (so integration tests stay fast in debug builds), a `run`
//! function returning a structured result, and a `Display` rendering that
//! prints the same rows/series the paper reports. The `repro` binary
//! dispatches on experiment ids (`fig1` … `table6`, `appendixA`, `all`).

pub mod experiments;
pub mod table;

pub use experiments::*;

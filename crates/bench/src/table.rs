//! Tiny plain-text table renderer for experiment output.

/// Renders rows as an aligned plain-text table with a header.
///
/// # Examples
///
/// ```
/// use anubis_bench::table::render_table;
///
/// let text = render_table(
///     &["Model", "Accuracy"],
///     &[vec!["Exponential".into(), "75.1%".into()]],
/// );
/// assert!(text.contains("Exponential"));
/// assert!(text.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&render_row(&headers_owned, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let text = render_table(
            &["A", "LongHeader"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1036), "10.36%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn handles_short_rows() {
        let text = render_table(&["A", "B"], &[vec!["only-a".into()]]);
        assert!(text.contains("only-a"));
    }
}

//! Table 6: effectiveness and repeatability in real deployment.
//!
//! The build-out fleet runs the full single-node benchmark set; criteria
//! are learned with Algorithm 2; the table reports, per benchmark group,
//! the fraction of the fleet it filtered as defective and the
//! repeatability among the surviving healthy nodes.

use crate::table::{pct, render_table};
use anubis_benchsuite::{run_set_parallel, BenchmarkId};
use anubis_hwsim::{NodeId, NodeSim};
use anubis_metrics::{mean_pairwise_similarity, Sample};
use anubis_traces::{generate_buildout_fleet, BuildoutConfig};
use anubis_validator::{calculate_criteria, CentroidMethod};
use std::collections::BTreeSet;
use std::fmt;

/// Configuration for the Table 6 reproduction.
#[derive(Debug, Clone)]
pub struct Table6Config {
    /// Fleet size (the paper's dataset: 3k+ VMs; Algorithm 2 is O(n²), so
    /// the default is scaled to keep the run minutes-scale).
    pub vms: u32,
    /// Similarity threshold α.
    pub alpha: f64,
    /// Healthy nodes sampled for the repeatability column.
    pub repeatability_sample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table6Config {
    fn default() -> Self {
        Self {
            vms: 800,
            alpha: 0.95,
            repeatability_sample: 150,
            seed: 2024,
        }
    }
}

impl Table6Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            vms: 150,
            repeatability_sample: 40,
            ..Self::default()
        }
    }
}

/// The benchmark groups Table 6 reports, mapped to our suite ids.
pub fn table6_groups() -> Vec<(&'static str, Vec<BenchmarkId>)> {
    vec![
        ("IB HCA loopback", vec![BenchmarkId::IbHcaLoopback]),
        (
            "H2D/D2H bandwidth",
            vec![BenchmarkId::GpuH2dBandwidth, BenchmarkId::GpuD2hBandwidth],
        ),
        ("BERT models", vec![BenchmarkId::TrainBert]),
        ("CPU latency", vec![BenchmarkId::CpuLatency]),
        (
            "IB single-node all-reduce",
            vec![BenchmarkId::IbSingleNodeAllReduce],
        ),
        ("ResNet models", vec![BenchmarkId::TrainResNet]),
        ("GPT-2 models", vec![BenchmarkId::TrainGpt2]),
        ("LSTM models", vec![BenchmarkId::TrainLstm]),
        ("DenseNet models", vec![BenchmarkId::TrainDenseNet]),
        (
            "MatMul/all-reduce overlap",
            vec![BenchmarkId::MatmulAllReduceOverlap],
        ),
        ("NVLink all-reduce", vec![BenchmarkId::NvlinkAllReduce]),
        (
            "GPU GEMM",
            vec![BenchmarkId::GpuGemmFp32, BenchmarkId::GpuGemmFp16],
        ),
    ]
}

/// One Table 6 row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GroupOutcome {
    /// Benchmark group label.
    pub label: &'static str,
    /// Repeatability among healthy nodes.
    pub repeatability: f64,
    /// Fraction of the fleet this group filtered as defective.
    pub defect_share: f64,
}

/// Result: rows sorted by defect share, plus the overall defect rate.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table6Result {
    /// Per-group rows, descending by defect share.
    pub groups: Vec<GroupOutcome>,
    /// Unique defective nodes / fleet size (paper: 10.36%).
    pub total_defect_rate: f64,
    /// Fleet size used.
    pub vms: u32,
}

/// Runs the experiment.
pub fn run(config: &Table6Config) -> Table6Result {
    let mut fleet: Vec<NodeSim> = generate_buildout_fleet(&BuildoutConfig {
        vms: config.vms,
        seed: config.seed,
    });

    let mut all_defective: BTreeSet<NodeId> = BTreeSet::new();
    let mut groups = Vec::new();
    for (label, benches) in table6_groups() {
        let mut group_defective: BTreeSet<NodeId> = BTreeSet::new();
        let mut repeatabilities = Vec::new();
        for bench in benches {
            // Fan the fleet out across workers: each node still runs the
            // benchmarks in the same per-node order (its RNG stream is
            // untouched), so the samples match the sequential loop exactly.
            let data = run_set_parallel(&[bench], &mut fleet, 0).expect("single-node benchmark");
            let samples: Vec<(NodeId, Sample)> = data
                .samples_for(bench)
                .expect("benchmark just ran")
                .to_vec();
            let raw: Vec<Sample> = samples.iter().map(|(_, s)| s.clone()).collect();
            let result = calculate_criteria(&raw, config.alpha, CentroidMethod::Medoid)
                .expect("non-empty fleet");
            for &idx in &result.defects {
                group_defective.insert(samples[idx].0);
            }
            // Repeatability among healthy nodes (subsampled for O(n²)).
            let healthy: Vec<Sample> = samples
                .iter()
                .enumerate()
                .filter(|(i, _)| !result.defects.contains(i))
                .take(config.repeatability_sample)
                .map(|(_, (_, s))| s.clone())
                .collect();
            repeatabilities.push(mean_pairwise_similarity(&healthy));
        }
        all_defective.extend(&group_defective);
        groups.push(GroupOutcome {
            label,
            repeatability: repeatabilities.iter().sum::<f64>()
                / repeatabilities.len().max(1) as f64,
            defect_share: group_defective.len() as f64 / f64::from(config.vms),
        });
    }
    groups.sort_by(|a, b| b.defect_share.total_cmp(&a.defect_share));
    Table6Result {
        groups,
        total_defect_rate: all_defective.len() as f64 / f64::from(config.vms),
        vms: config.vms,
    }
}

impl fmt::Display for Table6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: effectiveness and repeatability ({} VMs)",
            self.vms
        )?;
        let rows: Vec<Vec<String>> = self
            .groups
            .iter()
            .map(|g| {
                vec![
                    g.label.to_string(),
                    pct(g.repeatability),
                    pct(g.defect_share),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["Benchmark", "Repeatability", "# Defects / # Total"],
                &rows
            )
        )?;
        writeln!(
            f,
            "Total unique defective nodes: {}",
            pct(self.total_defect_rate)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_defect_rate_matches_deployment() {
        let result = run(&Table6Config::quick());
        assert!(
            (0.05..=0.18).contains(&result.total_defect_rate),
            "total defect rate {}",
            result.total_defect_rate
        );
    }

    #[test]
    fn loopback_finds_the_most_defects() {
        let result = run(&Table6Config::quick());
        assert_eq!(
            result.groups[0].label, "IB HCA loopback",
            "{:?}",
            result.groups
        );
        assert!(result.groups[0].defect_share > 0.02);
    }

    #[test]
    fn healthy_repeatability_is_high() {
        let result = run(&Table6Config::quick());
        for g in &result.groups {
            assert!(
                g.repeatability > 0.95,
                "{}: repeatability {}",
                g.label,
                g.repeatability
            );
        }
    }

    #[test]
    fn renders() {
        let text = run(&Table6Config::quick()).to_string();
        assert!(text.contains("Table 6"));
        assert!(text.contains("IB HCA loopback"));
    }
}

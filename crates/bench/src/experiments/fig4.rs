//! Figure 4: mean time between i-th incidents, and job time-to-failure at
//! different scales.

use crate::table::render_table;
use anubis_traces::{
    generate_incident_trace, job_time_to_failure_from, IncidentTrace, IncidentTraceConfig,
};
use std::fmt;

/// Configuration for the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Nodes in the trace (more nodes populate deeper incident indices).
    pub nodes: u32,
    /// Minimum nodes behind a reported index.
    pub min_nodes_per_index: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            nodes: 4000,
            min_nodes_per_index: 30,
            seed: 42,
        }
    }
}

impl Fig4Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            nodes: 600,
            min_nodes_per_index: 10,
            ..Self::default()
        }
    }
}

/// Result: the two Figure 4 panels.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig4Result {
    /// Left panel: `(incident index, mean hours between, node count)`.
    pub mean_gaps: Vec<(usize, f64, usize)>,
    /// Right panel: `(job nodes, time to failure at the 1st / 5th / 10th
    /// incident index)`.
    pub job_ttf: Vec<(usize, [Option<f64>; 3])>,
}

/// Runs the experiment on a longer trace so deep incident indices exist.
pub fn run(config: &Fig4Config) -> Fig4Result {
    let trace: IncidentTrace = generate_incident_trace(&IncidentTraceConfig {
        nodes: config.nodes,
        duration_hours: 4320.0, // 6 months, to populate high indices
        seed: config.seed,
        ..IncidentTraceConfig::default()
    });
    let mean_gaps = trace.mean_gap_by_incident_index(config.min_nodes_per_index);
    // One gap table feeds every right-panel cell; recomputing the
    // whole-trace statistic per cell made this figure quadratic.
    let gap_table = trace.mean_gap_by_incident_index(1);
    let job_ttf = [1usize, 4, 16, 64, 256]
        .iter()
        .map(|&scale| {
            (
                scale,
                [
                    job_time_to_failure_from(&gap_table, 1, scale),
                    job_time_to_failure_from(&gap_table, 5, scale),
                    job_time_to_failure_from(&gap_table, 10, scale),
                ],
            )
        })
        .collect();
    Fig4Result { mean_gaps, job_ttf }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4 (left): mean time between i-th incidents")?;
        let rows: Vec<Vec<String>> = self
            .mean_gaps
            .iter()
            .map(|(i, h, n)| vec![i.to_string(), format!("{h:.1} h"), n.to_string()])
            .collect();
        write!(
            f,
            "{}",
            render_table(&["i-th incident", "Mean gap", "Nodes"], &rows)
        )?;
        writeln!(f, "Figure 4 (right): job time to failure")?;
        let rows: Vec<Vec<String>> = self
            .job_ttf
            .iter()
            .map(|(scale, ttf)| {
                let cell = |v: &Option<f64>| v.map_or("-".to_string(), |h| format!("{h:.1} h"));
                vec![
                    scale.to_string(),
                    cell(&ttf[0]),
                    cell(&ttf[1]),
                    cell(&ttf[2]),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Job nodes", "@1st incident", "@5th", "@10th"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_shrink_with_incident_index() {
        let result = run(&Fig4Config::quick());
        assert!(result.mean_gaps.len() >= 5);
        let first = result.mean_gaps[0].1;
        let last = result.mean_gaps.last().unwrap().1;
        assert!(
            last < first * 0.75,
            "degradation visible: {first:.0}h -> {last:.0}h"
        );
        // First gap near the calibrated 719.4h (selection effects shrink
        // it within a finite window).
        assert!(first > 300.0 && first < 900.0, "first gap {first:.0}h");
    }

    #[test]
    fn job_ttf_shrinks_with_scale_and_index() {
        let result = run(&Fig4Config::quick());
        let at_scale = |s: usize| result.job_ttf.iter().find(|(n, _)| *n == s).unwrap().1;
        let single = at_scale(1)[0].unwrap();
        let big = at_scale(64)[0].unwrap();
        assert!((single / big - 64.0).abs() < 1e-9);
        // Deeper incident index fails sooner.
        if let (Some(first), Some(tenth)) = (at_scale(1)[0], at_scale(1)[2]) {
            assert!(tenth < first);
        }
    }

    #[test]
    fn renders() {
        let text = run(&Fig4Config::quick()).to_string();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("Job nodes"));
    }
}

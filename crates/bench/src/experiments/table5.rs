//! Table 5: repeatability after benchmark-parameter tuning (Appendix B).

use crate::table::{pct, render_table};
use anubis_hwsim::{NodeId, NodeSim, NodeSpec, Precision};
use anubis_metrics::Sample;
use anubis_validator::{select_shared_window, StepWindow};
use anubis_workload::{simulate_training, ModelId, TrainingOptions};
use std::fmt;

/// Model-specific warmup behaviour: JIT compilation and autotuning settle
/// at different speeds per framework path (convolution autotuners are
/// slow, RNN graphs slower still, fused transformer kernels fast).
fn warmup_decay_steps(model: ModelId) -> f64 {
    match model {
        ModelId::Lstm => 16.0,
        ModelId::Vgg11 | ModelId::Vgg13 | ModelId::Vgg16 | ModelId::Vgg19 => 12.0,
        ModelId::ResNet50 | ModelId::ResNet101 | ModelId::ResNet152 => 10.0,
        ModelId::DenseNet169 | ModelId::DenseNet201 => 11.0,
        ModelId::BertLarge => 7.0,
        ModelId::Gpt2Small | ModelId::Gpt2Large => 6.0,
    }
}

/// Model-specific data-pipeline cycle (shuffle-buffer sizes differ with
/// sample size: image pipelines refill more often than token pipelines).
fn cycle_period(model: ModelId) -> usize {
    match model {
        ModelId::Lstm => 40,
        ModelId::BertLarge => 56,
        ModelId::Gpt2Small | ModelId::Gpt2Large => 64,
        _ => 48,
    }
}

/// Configuration for the Table 5 reproduction.
#[derive(Debug, Clone)]
pub struct Table5Config {
    /// Fleet size (the paper's testbed: 64 H100 VMs).
    pub nodes: u32,
    /// Fixed baseline warmup steps (paper: 72).
    pub fixed_warmup: usize,
    /// Fixed baseline measurement steps (paper: 3,072).
    pub fixed_measure: usize,
    /// Similarity threshold α.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table5Config {
    fn default() -> Self {
        Self {
            nodes: 64,
            fixed_warmup: 72,
            fixed_measure: 3072,
            alpha: 0.95,
            seed: 29,
        }
    }
}

impl Table5Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            nodes: 12,
            fixed_warmup: 24,
            fixed_measure: 480,
            ..Self::default()
        }
    }
}

/// Per-model, per-precision repeatability comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModelTuning {
    /// Which model.
    pub model: ModelId,
    /// `[fp32, fp16]` repeatability with the fixed window.
    pub fixed_repeatability: [f64; 2],
    /// `[fp32, fp16]` repeatability with the tuned window.
    pub tuned_repeatability: [f64; 2],
    /// `[fp32, fp16]` fraction of steps saved by tuning.
    pub time_saving: [f64; 2],
    /// `[fp32, fp16]` tuned windows.
    pub windows: [StepWindow; 2],
}

/// Result: one row per representative model.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table5Result {
    /// Rows in Table 5 order.
    pub models: Vec<ModelTuning>,
}

/// Cross-node repeatability of trimmed samples (mean pairwise
/// similarity, the paper's metric).
fn repeatability(series: &[Vec<f64>], window: &StepWindow) -> f64 {
    let samples: Vec<Sample> = series.iter().filter_map(|s| window.apply(s).ok()).collect();
    anubis_metrics::mean_pairwise_similarity(&samples)
}

/// Runs the experiment.
pub fn run(config: &Table5Config) -> Table5Result {
    let total_steps = config.fixed_warmup + config.fixed_measure;
    let models = [
        ModelId::ResNet50,
        ModelId::DenseNet169,
        ModelId::Vgg16,
        ModelId::Lstm,
        ModelId::BertLarge,
        ModelId::Gpt2Small,
    ];
    let mut rows = Vec::new();
    for model in models {
        let cfg = model.config();
        let mut fixed_rep = [0.0f64; 2];
        let mut tuned_rep = [0.0f64; 2];
        let mut saving = [0.0f64; 2];
        let mut windows = [StepWindow {
            warmup: 0,
            measure: 0,
        }; 2];
        for (p, precision) in [Precision::Fp32, Precision::Fp16].into_iter().enumerate() {
            let mut opts = TrainingOptions::validation(total_steps);
            opts.precision = precision;
            opts.warmup_decay_steps = warmup_decay_steps(model);
            opts.cycle_period = cycle_period(model);
            // Every node owns its seed, so the per-node series are
            // independent and fan out across workers in node order.
            let series: Vec<Vec<f64>> =
                anubis_parallel::map_indexed(config.nodes as usize, 0, |i| {
                    let i = i as u32;
                    let mut node = NodeSim::new(
                        NodeId(i),
                        NodeSpec::h100_8x(),
                        config.seed ^ (u64::from(i) << 8),
                    );
                    simulate_training(&mut node, &cfg, &opts)
                });
            let fixed = StepWindow {
                warmup: config.fixed_warmup,
                measure: config.fixed_measure,
            };
            fixed_rep[p] = repeatability(&series, &fixed);
            let (tuned, _) =
                select_shared_window(&series, config.alpha).expect("stable window exists");
            tuned_rep[p] = repeatability(&series, &tuned);
            saving[p] = tuned.time_saving(total_steps);
            windows[p] = tuned;
        }
        rows.push(ModelTuning {
            model,
            fixed_repeatability: fixed_rep,
            tuned_repeatability: tuned_rep,
            time_saving: saving,
            windows,
        });
    }
    Table5Result { models: rows }
}

impl fmt::Display for Table5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5: repeatability after benchmark parameters tuned (FP32 / FP16)"
        )?;
        let rows: Vec<Vec<String>> = self
            .models
            .iter()
            .map(|m| {
                vec![
                    m.model.name().to_string(),
                    format!(
                        "{} / {}",
                        pct(m.fixed_repeatability[0]),
                        pct(m.fixed_repeatability[1])
                    ),
                    format!(
                        "{} / {}",
                        pct(m.tuned_repeatability[0]),
                        pct(m.tuned_repeatability[1])
                    ),
                    format!("{} / {}", pct(m.time_saving[0]), pct(m.time_saving[1])),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["Model", "Fixed params", "Tuned params", "Time saving"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_preserves_repeatability_and_saves_time() {
        let result = run(&Table5Config::quick());
        assert_eq!(result.models.len(), 6);
        for m in &result.models {
            for p in 0..2 {
                assert!(
                    m.fixed_repeatability[p] > 0.95,
                    "{:?} fixed repeatability {:?}",
                    m.model,
                    m.fixed_repeatability
                );
                // Regression under 1.5 percentage points (paper: < 1%).
                assert!(
                    m.tuned_repeatability[p] > m.fixed_repeatability[p] - 0.015,
                    "{:?}: {:?} vs {:?}",
                    m.model,
                    m.tuned_repeatability,
                    m.fixed_repeatability
                );
                assert!(
                    m.time_saving[p] > 0.5,
                    "{:?} saving {:?}",
                    m.model,
                    m.time_saving
                );
            }
        }
    }

    #[test]
    fn tuned_windows_skip_warmup() {
        let result = run(&Table5Config::quick());
        // Every model has a warmup transient; at least some tuned windows
        // must skip initial steps.
        assert!(result.models.iter().any(|m| m.windows[1].warmup > 0));
    }

    #[test]
    fn renders() {
        let text = run(&Table5Config::quick()).to_string();
        assert!(text.contains("Time saving"));
    }
}

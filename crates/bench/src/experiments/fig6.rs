//! Figure 6: why off-the-shelf outlier detection makes a poor defect
//! filter.
//!
//! The point cloud mimics a real micro-benchmark metric across a fleet: a
//! dense cluster of nominal results, a sparse-but-healthy high-performance
//! tail ("not all GPUs are created equal"), and a few genuinely defective
//! slow nodes. LOF flags the sparse healthy tail (density ≠ health) and
//! the one-class SVM draws false boundaries inside the dense interval; the
//! proposed CDF-similarity criteria only flags true regressions.

use crate::table::render_table;
use anubis_hwsim::{NodeId, NodeSim, NodeSpec, Precision};
use anubis_metrics::outlier::{LocalOutlierFactor, OneClassSvm};
use anubis_metrics::Sample;
use anubis_validator::{calculate_criteria, CentroidMethod};
use std::fmt;

/// Configuration for the Figure 6 reproduction.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Healthy nodes measured.
    pub healthy_nodes: u32,
    /// Defective nodes mixed in.
    pub defective_nodes: u32,
    /// RNG seed base.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Self {
            healthy_nodes: 180,
            defective_nodes: 6,
            seed: 21,
        }
    }
}

impl Fig6Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            healthy_nodes: 60,
            defective_nodes: 3,
            ..Self::default()
        }
    }
}

/// Per-method confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct MethodOutcome {
    /// Healthy nodes incorrectly flagged.
    pub false_positives: usize,
    /// Defective nodes missed.
    pub false_negatives: usize,
    /// Defective nodes correctly flagged.
    pub true_positives: usize,
}

/// Result: confusion counts for LOF, one-class SVM and the proposed
/// criteria.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig6Result {
    /// Local Outlier Factor (k = 10, threshold 1.5).
    pub lof: MethodOutcome,
    /// One-class SVM (ν = 0.05, RBF).
    pub ocsvm: MethodOutcome,
    /// Proposed Algorithm 2 criteria (α = 0.95).
    pub criteria: MethodOutcome,
    /// The measured metric per node (for plotting).
    pub measurements: Vec<f64>,
    /// Ground-truth defective flags, parallel to `measurements`.
    pub is_defective: Vec<bool>,
}

fn confusion(flagged: &[usize], truth: &[bool]) -> MethodOutcome {
    let mut outcome = MethodOutcome {
        false_positives: 0,
        false_negatives: 0,
        true_positives: 0,
    };
    let flagged_set: std::collections::BTreeSet<usize> = flagged.iter().copied().collect();
    for (i, &defective) in truth.iter().enumerate() {
        match (defective, flagged_set.contains(&i)) {
            (true, true) => outcome.true_positives += 1,
            (true, false) => outcome.false_negatives += 1,
            (false, true) => outcome.false_positives += 1,
            (false, false) => {}
        }
    }
    outcome
}

/// Runs the experiment.
pub fn run(config: &Fig6Config) -> Fig6Result {
    // GEMM throughput across the fleet. A third of the healthy nodes got a
    // better silicon bin (sparser, higher values).
    let mut measurements = Vec::new();
    let mut truth = Vec::new();
    for i in 0..config.healthy_nodes {
        let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), config.seed);
        let mut value = node.measure_gemm_tflops(Precision::Fp16, 8192);
        if i % 3 == 0 {
            // Golden-sample silicon: 1-2% faster, spread out.
            value *= 1.01 + f64::from(i % 7) * 0.003;
        }
        measurements.push(value);
        truth.push(false);
    }
    for i in 0..config.defective_nodes {
        let mut node = NodeSim::new(
            NodeId(1000 + i),
            NodeSpec::a100_8x(),
            config.seed.wrapping_add(1),
        );
        node.inject_fault(anubis_hwsim::FaultKind::GpuComputeDegraded {
            severity: 0.12 + f64::from(i) * 0.05,
        });
        measurements.push(node.measure_gemm_tflops(Precision::Fp16, 8192));
        truth.push(true);
    }

    let points: Vec<Vec<f64>> = measurements.iter().map(|&v| vec![v]).collect();
    let lof_flags = LocalOutlierFactor::fit(&points, 10)
        .expect("enough points")
        .outlier_indices(1.5);
    let svm = OneClassSvm::fit(&points, 0.05, 0.05).expect("valid parameters");
    let svm_flags: Vec<usize> = (0..points.len())
        .filter(|&i| svm.is_outlier(&points[i]))
        .collect();

    let samples: Vec<Sample> = measurements
        .iter()
        .map(|&v| Sample::scalar(v).expect("positive"))
        .collect();
    let criteria_flags = calculate_criteria(&samples, 0.95, CentroidMethod::Medoid)
        .expect("valid input")
        .defects;

    Fig6Result {
        lof: confusion(&lof_flags, &truth),
        ocsvm: confusion(&svm_flags, &truth),
        criteria: confusion(&criteria_flags, &truth),
        measurements,
        is_defective: truth,
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: outlier-detection strawmen vs the proposed criteria"
        )?;
        let row = |name: &str, m: &MethodOutcome| {
            vec![
                name.to_string(),
                m.false_positives.to_string(),
                m.false_negatives.to_string(),
                m.true_positives.to_string(),
            ]
        };
        let rows = vec![
            row("Local Outlier Factor", &self.lof),
            row("One-Class SVM", &self.ocsvm),
            row("Proposed criteria", &self.criteria),
        ];
        write!(
            f,
            "{}",
            render_table(
                &[
                    "Method",
                    "False positives",
                    "Missed defects",
                    "Caught defects"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strawmen_produce_false_positives() {
        let result = run(&Fig6Config::default());
        assert!(
            result.lof.false_positives > 0,
            "LOF flags sparse healthy points: {:?}",
            result.lof
        );
        assert!(
            result.ocsvm.false_positives > 0,
            "OCSVM draws bad boundaries: {:?}",
            result.ocsvm
        );
    }

    #[test]
    fn proposed_criteria_is_clean() {
        let result = run(&Fig6Config::default());
        assert_eq!(result.criteria.false_positives, 0, "{:?}", result.criteria);
        assert_eq!(result.criteria.false_negatives, 0, "{:?}", result.criteria);
        assert!(result.criteria.true_positives > 0);
    }

    #[test]
    fn ground_truth_shapes_align() {
        let config = Fig6Config::quick();
        let result = run(&config);
        assert_eq!(
            result.measurements.len(),
            (config.healthy_nodes + config.defective_nodes) as usize
        );
        assert_eq!(result.measurements.len(), result.is_defective.len());
    }

    #[test]
    fn renders() {
        let text = run(&Fig6Config::quick()).to_string();
        assert!(text.contains("One-Class SVM"));
    }
}

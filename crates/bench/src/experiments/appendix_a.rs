//! Appendix A: networking-validation scan schedules.

use crate::table::render_table;
use anubis_netsim::{
    full_scan_rounds, quick_scan_rounds, ring_permutation_spread, FatTree, FatTreeConfig,
};
use std::fmt;

/// Configuration for the Appendix A reproduction.
#[derive(Debug, Clone)]
pub struct AppendixAConfig {
    /// Cluster sizes to schedule (each must fit the fat-tree divisibility
    /// constraints of [`FatTreeConfig::figure3_testbed`]).
    pub scales: Vec<usize>,
}

impl Default for AppendixAConfig {
    fn default() -> Self {
        Self {
            scales: vec![24, 48, 96, 192, 384, 768],
        }
    }
}

impl AppendixAConfig {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            scales: vec![24, 96],
        }
    }
}

/// Scheduling cost at one scale.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ScaleOutcome {
    /// Node count.
    pub nodes: usize,
    /// Full-scan rounds (`n − 1`).
    pub full_rounds: usize,
    /// Pairs covered by the full scan.
    pub full_pairs: usize,
    /// Quick-scan rounds (constant in the tree depth).
    pub quick_rounds: usize,
    /// Pairs covered by the quick scan.
    pub quick_pairs: usize,
}

/// Result: one row per scale.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AppendixAResult {
    /// Rows ascending by node count.
    pub scales: Vec<ScaleOutcome>,
    /// Section 2.3 companion: relative ring-bandwidth spread across
    /// sampled node orders on a fabric with one degraded ToR — the reason
    /// per-order validation is infeasible and link scans are used instead.
    pub degraded_ring_spread: f64,
}

/// Runs the experiment.
pub fn run(config: &AppendixAConfig) -> AppendixAResult {
    let scales = config
        .scales
        .iter()
        .map(|&nodes| {
            let full = full_scan_rounds(nodes);
            let mut tree_config = FatTreeConfig::figure3_testbed();
            tree_config.nodes = nodes;
            let tree = FatTree::build(tree_config).expect("scale fits the tree");
            let quick = quick_scan_rounds(&tree).expect("valid tree");
            ScaleOutcome {
                nodes,
                full_rounds: full.len(),
                full_pairs: full.iter().map(Vec::len).sum(),
                quick_rounds: quick.len(),
                quick_pairs: quick.iter().map(Vec::len).sum(),
            }
        })
        .collect();
    // The permutation observation on the 24-node testbed.
    let mut degraded = FatTree::build(FatTreeConfig::figure3_testbed()).expect("testbed");
    degraded.break_tor_uplinks(1, 36).expect("tor exists");
    let nodes: Vec<usize> = (0..16).collect();
    let spread = ring_permutation_spread(&degraded, &nodes, 48, 5).expect("valid node set");
    AppendixAResult {
        scales,
        degraded_ring_spread: spread.relative_spread(),
    }
}

impl fmt::Display for AppendixAResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Appendix A: O(n) full scan vs O(1) topology-aware quick scan"
        )?;
        let rows: Vec<Vec<String>> = self
            .scales
            .iter()
            .map(|s| {
                vec![
                    s.nodes.to_string(),
                    s.full_rounds.to_string(),
                    s.full_pairs.to_string(),
                    s.quick_rounds.to_string(),
                    s.quick_pairs.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &[
                    "Nodes",
                    "Full rounds",
                    "Full pairs",
                    "Quick rounds",
                    "Quick pairs"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "ring-order bandwidth spread on a degraded fabric: {:.1}% (n! orders, only some hit the bad links)",
            self.degraded_ring_spread * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scan_grows_linearly_quick_scan_stays_constant() {
        let result = run(&AppendixAConfig::default());
        for s in &result.scales {
            assert_eq!(s.full_rounds, s.nodes - 1);
            assert_eq!(s.full_pairs, s.nodes * (s.nodes - 1) / 2);
            assert!(
                s.quick_rounds <= 3,
                "quick scan is O(1) in rounds: {}",
                s.quick_rounds
            );
        }
        let first = result.scales.first().unwrap();
        let last = result.scales.last().unwrap();
        assert!(last.full_rounds > first.full_rounds);
        assert_eq!(last.quick_rounds, first.quick_rounds);
    }

    #[test]
    fn quick_scan_touches_every_node() {
        let result = run(&AppendixAConfig::quick());
        for s in &result.scales {
            // Each round pairs at most n/2 pairs; the 2-hop round covers
            // all nodes.
            assert!(s.quick_pairs >= s.nodes / 2);
        }
    }

    #[test]
    fn renders() {
        let text = run(&AppendixAConfig::quick()).to_string();
        assert!(text.contains("Quick rounds"));
        assert!(text.contains("ring-order bandwidth spread"));
    }

    #[test]
    fn permutation_spread_exists_on_degraded_fabric() {
        let result = run(&AppendixAConfig::quick());
        assert!(
            result.degraded_ring_spread > 0.02,
            "orders must differ: {}",
            result.degraded_ring_spread
        );
    }
}

//! Figure 5: GPU-job percentage for diverse workloads.

use crate::table::{pct, render_table};
use anubis_workload::WorkloadMix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Configuration for the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Jobs to sample (the paper analyzed 56k+).
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            jobs: 56_000,
            seed: 5,
        }
    }
}

impl Fig5Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            jobs: 5_000,
            ..Self::default()
        }
    }
}

/// Result: sampled job shares per workload class.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig5Result {
    /// `(class label, sampled share)` rows, descending.
    pub shares: Vec<(String, f64)>,
    /// Share of Transformer-family jobs.
    pub transformer_share: f64,
    /// Fraction of Transformer jobs that are unidentifiable.
    pub unidentified_transformer_fraction: f64,
}

/// Runs the experiment: sample the mix like classifying 56k job logs.
pub fn run(config: &Fig5Config) -> Fig5Result {
    let mix = WorkloadMix::azure_internal();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for _ in 0..config.jobs {
        *counts.entry(mix.sample(&mut rng).label).or_insert(0) += 1;
    }
    let mut shares: Vec<(String, f64)> = counts
        .into_iter()
        .map(|(label, count)| (label.to_string(), count as f64 / config.jobs as f64))
        .collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    let unidentified = shares
        .iter()
        .find(|(l, _)| l == "unidentified Transformer")
        .map_or(0.0, |(_, s)| *s);
    let transformer = mix.transformer_share();
    Fig5Result {
        shares,
        transformer_share: transformer,
        unidentified_transformer_fraction: unidentified / transformer,
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: GPU job mix")?;
        let rows: Vec<Vec<String>> = self
            .shares
            .iter()
            .map(|(l, s)| vec![l.clone(), pct(*s)])
            .collect();
        write!(f, "{}", render_table(&["Workload", "Jobs"], &rows))?;
        writeln!(
            f,
            "Transformers total: {} ({} unidentifiable)",
            pct(self.transformer_share),
            pct(self.unidentified_transformer_fraction)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unidentified_transformers_match_paper() {
        let result = run(&Fig5Config::default());
        assert!(
            (result.unidentified_transformer_fraction - 0.355).abs() < 0.02,
            "paper: 35.5% of Transformers unidentifiable, got {}",
            result.unidentified_transformer_fraction
        );
    }

    #[test]
    fn shares_sum_to_one_and_sorted() {
        let result = run(&Fig5Config::quick());
        let total: f64 = result.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(result.shares.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn renders() {
        let text = run(&Fig5Config::quick()).to_string();
        assert!(text.contains("Transformers total"));
    }
}

//! Figure 9: margin ratios of different criteria methods.
//!
//! 144 MI250X VMs run the end-to-end benchmarks; criteria are computed
//! with the proposed Algorithm 2, IQR fences and k-means, and compared by
//! *margin ratio*: `min_{i ∈ method-defective} d(Sᵢ, S_C) /
//! max_{j ∈ method-healthy} d(Sⱼ, S_C)`. A ratio near 1 means the method
//! drew its boundary through a continuum of marginal-but-healthy nodes; a
//! large ratio means a clear-cut gap.

use crate::table::render_table;
use anubis_hwsim::noise::standard_normal;
use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis_metrics::outlier::{IqrFences, KMeans, KMeansConfig};
use anubis_metrics::{cdf_distance, stats, Sample};
use anubis_validator::{calculate_criteria, CentroidMethod};
use anubis_workload::{simulate_training, ModelId, TrainingOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for the Figure 9 reproduction.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Fleet size (the paper's testbed: 144 MI250X VMs).
    pub nodes: u32,
    /// Nodes with injected defects.
    pub defective_nodes: u32,
    /// Steps recorded per training benchmark.
    pub steps: usize,
    /// Similarity threshold for the proposed method.
    pub alpha: f64,
    /// Centroid method for Algorithm 2 (the DESIGN.md ablation: medoid vs
    /// distribution mean).
    pub centroid: CentroidMethod,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Self {
            nodes: 144,
            defective_nodes: 8,
            steps: 1024,
            alpha: 0.95,
            centroid: CentroidMethod::Medoid,
            seed: 17,
        }
    }
}

impl Fig9Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            nodes: 40,
            defective_nodes: 4,
            steps: 512,
            ..Self::default()
        }
    }
}

/// Margin ratios of the three methods for one model.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModelMargins {
    /// Which model was benchmarked.
    pub model: ModelId,
    /// Proposed Algorithm 2 margin ratio.
    pub proposed: f64,
    /// IQR-fence margin ratio.
    pub iqr: f64,
    /// k-means (k = 2) margin ratio.
    pub kmeans: f64,
}

/// Result: margins per model plus a win count.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig9Result {
    /// One row per end-to-end model.
    pub models: Vec<ModelMargins>,
}

impl Fig9Result {
    /// Number of models where the proposed method has the largest margin.
    pub fn proposed_wins(&self) -> usize {
        self.models
            .iter()
            .filter(|m| m.proposed >= m.iqr && m.proposed >= m.kmeans)
            .count()
    }
}

/// Margin ratio given a method's criteria sample and defect labels.
fn margin_ratio(samples: &[Sample], criteria: &Sample, defective: &[bool]) -> f64 {
    let mut min_defective = f64::INFINITY;
    let mut max_healthy: f64 = 0.0;
    for (sample, &bad) in samples.iter().zip(defective) {
        let d = cdf_distance(sample, criteria);
        if bad {
            min_defective = min_defective.min(d);
        } else {
            max_healthy = max_healthy.max(d);
        }
    }
    if !min_defective.is_finite() || max_healthy <= 0.0 {
        // No defects found, or a perfect zero-distance healthy set: the
        // boundary is undefined; report 1 (no margin).
        return 1.0;
    }
    min_defective / max_healthy
}

/// Runs the experiment.
pub fn run(config: &Fig9Config) -> Fig9Result {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Fleet structure, mirroring a real testbed: a healthy bulk with pure
    // silicon-lottery spread, a handful of *marginal-but-healthy* nodes
    // 0.5-1% slower (warm rack positions — well inside the α margin), and
    // true defects regressing 6-22%. The marginal nodes are exactly the
    // paper's GPT-2 story: the data-driven baselines cut their boundary
    // through the healthy tail, collapsing their margin ratio, while
    // Algorithm 2 keeps everything inside α healthy.
    let warm_nodes = (config.nodes / 16).max(3);
    let mut fleet: Vec<(NodeSim, bool)> = Vec::new();
    for i in 0..config.nodes {
        let mut node = NodeSim::new(NodeId(i), NodeSpec::mi250x_8x(), config.seed ^ u64::from(i));
        let defective = i < config.defective_nodes;
        if defective {
            let severity = 0.08 + 0.14 * f64::from(i) / f64::from(config.defective_nodes.max(1));
            node.inject_fault(FaultKind::GpuComputeDegraded { severity });
        } else if i < config.defective_nodes + warm_nodes {
            let severity =
                0.005 + 0.002 * f64::from(i - config.defective_nodes) / f64::from(warm_nodes);
            node.inject_fault(FaultKind::ThermalThrottle { severity });
        } else {
            // Pure silicon spread from the node's seed; draw the shared
            // RNG anyway to keep the fleet deterministic per seed.
            let _ = standard_normal(&mut rng);
        }
        fleet.push((node, defective));
    }

    // Production pipelines measure *after* the warmup transient
    // (Appendix B); simulate extra steps and trim them.
    const WARMUP_TRIM: usize = 64;
    let opts = TrainingOptions::validation(config.steps + WARMUP_TRIM);
    let models = [
        ModelId::ResNet50,
        ModelId::DenseNet169,
        ModelId::Vgg16,
        ModelId::Lstm,
        ModelId::BertLarge,
        ModelId::Gpt2Small,
    ];
    let mut results = Vec::new();
    for model in models {
        let cfg = model.config();
        // Per-node training runs are independent (each node owns its RNG);
        // chunks return in fleet order, so this matches the sequential
        // loop sample for sample.
        let samples: Vec<Sample> = anubis_parallel::map_chunks_mut(&mut fleet, 8, 0, |_, chunk| {
            chunk
                .iter_mut()
                .map(|(node, _)| {
                    let series = simulate_training(node, &cfg, &opts);
                    Sample::new(series[WARMUP_TRIM..].to_vec()).expect("positive throughput")
                })
                .collect::<Vec<Sample>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Proposed: Algorithm 2.
        let proposed_result =
            calculate_criteria(&samples, config.alpha, config.centroid).expect("valid samples");
        let mut proposed_defective = vec![false; samples.len()];
        for &d in &proposed_result.defects {
            proposed_defective[d] = true;
        }
        let proposed = margin_ratio(&samples, &proposed_result.criteria, &proposed_defective);

        // IQR baseline on average throughput.
        let averages: Vec<f64> = samples.iter().map(Sample::mean).collect();
        let fences = IqrFences::fit(&averages, 1.5).expect("enough nodes");
        let iqr_defective: Vec<bool> = averages.iter().map(|&a| fences.is_low_outlier(a)).collect();
        // S_C: median (by average) of the surviving samples.
        let mut survivors: Vec<usize> = (0..samples.len()).filter(|&i| !iqr_defective[i]).collect();
        survivors.sort_by(|&a, &b| averages[a].total_cmp(&averages[b]));
        let iqr_criteria = samples[survivors[survivors.len() / 2]].clone();
        let iqr = margin_ratio(&samples, &iqr_criteria, &iqr_defective);

        // k-means baseline (k = 2, "default Euclidean distance" on the raw
        // step series — per-step noise across many dimensions is exactly
        // why this baseline draws unstable boundaries).
        let dim = config.steps.min(64);
        let points: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| stats::resample_linear(s.values(), dim))
            .collect();
        let km = KMeans::fit(
            &points,
            KMeansConfig {
                k: 2,
                seed: config.seed,
                ..Default::default()
            },
        )
        .expect("enough points");
        let majority = km.majority_cluster();
        let km_defective: Vec<bool> = km.assignments().iter().map(|&a| a != majority).collect();
        // S_C: element-wise average of the majority cluster.
        let member_points: Vec<&Vec<f64>> = km
            .members_of(majority)
            .into_iter()
            .map(|i| &points[i])
            .collect();
        let mut mean_series = vec![0.0f64; dim];
        for p in &member_points {
            for (m, v) in mean_series.iter_mut().zip(p.iter()) {
                *m += v;
            }
        }
        for m in &mut mean_series {
            *m /= member_points.len() as f64;
        }
        let km_criteria = Sample::new(mean_series).expect("positive throughput");
        let kmeans = margin_ratio(&samples, &km_criteria, &km_defective);

        results.push(ModelMargins {
            model,
            proposed,
            iqr,
            kmeans,
        });
    }
    Fig9Result { models: results }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: margin ratios of criteria methods")?;
        let rows: Vec<Vec<String>> = self
            .models
            .iter()
            .map(|m| {
                vec![
                    m.model.name().to_string(),
                    format!("{:.2}", m.proposed),
                    format!("{:.2}", m.iqr),
                    format!("{:.2}", m.kmeans),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Model", "Proposed", "IQR", "k-means"], &rows)
        )?;
        writeln!(
            f,
            "proposed method wins on {}/{} models",
            self.proposed_wins(),
            self.models.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_method_wins_on_most_models() {
        let result = run(&Fig9Config::default());
        assert_eq!(result.models.len(), 6);
        assert!(
            result.proposed_wins() >= 4,
            "proposed should win on most models: {:?}",
            result.models
        );
    }

    #[test]
    fn margins_are_positive() {
        let result = run(&Fig9Config::quick());
        for m in &result.models {
            assert!(m.proposed > 0.0 && m.iqr > 0.0 && m.kmeans > 0.0, "{m:?}");
        }
    }

    #[test]
    fn proposed_margin_is_clear_cut() {
        let result = run(&Fig9Config::default());
        let best = result
            .models
            .iter()
            .map(|m| m.proposed)
            .fold(0.0f64, f64::max);
        assert!(best > 1.5, "a clear margin exists somewhere: {best}");
    }

    #[test]
    fn renders() {
        let text = run(&Fig9Config::quick()).to_string();
        assert!(text.contains("k-means"));
    }
}

//! Figure 8 + Table 4: simulated node utilization, validation time and
//! MTBI under different benchmark-selection policies.

use crate::table::{pct, render_table};
use anubis_benchsuite::BenchmarkId;
use anubis_cluster::{simulate, ClusterSimConfig, Policy, PolicyKind, SimOutcome};
use anubis_selector::{
    CoverageTable, CoxTimeConfig, CoxTimeModel, ExponentialPerCountModel, Selector, SelectorConfig,
    SurvivalModel,
};
use anubis_traces::{
    generate_allocation_trace, generate_incident_trace, AllocationConfig, IncidentTraceConfig,
};
use std::fmt;

/// Configuration for the Figure 8 / Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Cluster simulation parameters.
    pub sim: ClusterSimConfig,
    /// Use the Cox-Time model for the Selector (the paper's choice);
    /// `false` falls back to the much faster exponential-per-count model.
    pub use_coxtime: bool,
    /// Nodes in the incident trace used to fit the Selector's model.
    pub trace_nodes: u32,
    /// Include the random-subset ablation policy.
    pub include_ablation: bool,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Self {
            sim: ClusterSimConfig::default(),
            use_coxtime: true,
            trace_nodes: 400,
            include_ablation: true,
        }
    }
}

impl Fig8Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            sim: ClusterSimConfig {
                nodes: 48,
                ..Default::default()
            },
            use_coxtime: false,
            trace_nodes: 120,
            include_ablation: false,
        }
    }
}

/// Result: one [`SimOutcome`] per policy plus the paper's headline ratios.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig8Result {
    /// Outcomes keyed by policy.
    pub outcomes: Vec<SimOutcome>,
}

impl Fig8Result {
    /// Outcome of one policy.
    pub fn outcome(&self, kind: PolicyKind) -> Option<&SimOutcome> {
        self.outcomes.iter().find(|o| o.policy == kind)
    }

    /// Selector-vs-absence MTBI improvement factor (paper: 22.61×).
    pub fn mtbi_gain_over_absence(&self) -> f64 {
        let selector = self
            .outcome(PolicyKind::Selector)
            .map_or(0.0, |o| o.mtbi_hours);
        let absence = self
            .outcome(PolicyKind::Absence)
            .map_or(1.0, |o| o.mtbi_hours);
        selector / absence.max(1e-9)
    }

    /// Selector-vs-absence utilization factor (paper: 4.81×).
    pub fn utilization_gain_over_absence(&self) -> f64 {
        let selector = self
            .outcome(PolicyKind::Selector)
            .map_or(0.0, |o| o.avg_utilization);
        let absence = self
            .outcome(PolicyKind::Absence)
            .map_or(1.0, |o| o.avg_utilization);
        selector / absence.max(1e-9)
    }

    /// Validation-time reduction vs the full set (paper: 92.07%).
    pub fn validation_reduction_vs_full_set(&self) -> f64 {
        let selector = self
            .outcome(PolicyKind::Selector)
            .map_or(0.0, |o| o.avg_validation_hours);
        let full = self
            .outcome(PolicyKind::FullSet)
            .map_or(1.0, |o| o.avg_validation_hours);
        1.0 - selector / full.max(1e-9)
    }
}

/// The coverage history the Selector starts with, calibrated to the
/// Table 6 per-benchmark defect shares from the build-out deployment.
pub fn table6_coverage_history() -> CoverageTable {
    let mut table = CoverageTable::new();
    let mut next = 0u64;
    // (benchmark, defect instances per 1000 historical defects). HCA
    // defects also show in the single-node IB all-reduce (overlap).
    let spec: [(BenchmarkId, u64); 12] = [
        (BenchmarkId::IbHcaLoopback, 380),
        (BenchmarkId::GpuH2dBandwidth, 130),
        (BenchmarkId::TrainBert, 100),
        (BenchmarkId::CpuLatency, 85),
        (BenchmarkId::IbSingleNodeAllReduce, 70),
        (BenchmarkId::TrainResNet, 47),
        (BenchmarkId::TrainGpt2, 34),
        (BenchmarkId::TrainLstm, 29),
        (BenchmarkId::TrainDenseNet, 26),
        (BenchmarkId::MatmulAllReduceOverlap, 21),
        (BenchmarkId::NvlinkAllReduce, 19),
        (BenchmarkId::GpuGemmFp16, 15),
    ];
    for (bench, count) in spec {
        for _ in 0..count {
            table.record(bench, next);
            next += 1;
        }
    }
    // Overlapping detections: IB all-reduce also catches a slice of the
    // loopback defects; BERT catches some GEMM-class defects.
    for d in 0..40u64 {
        table.record(BenchmarkId::IbSingleNodeAllReduce, d);
    }
    for d in 510..520u64 {
        table.record(BenchmarkId::TrainBert, d);
    }
    table
}

/// Builds the Selector from the synthetic incident trace.
pub fn build_selector(config: &Fig8Config) -> Selector {
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: config.trace_nodes,
        ..IncidentTraceConfig::default()
    });
    let samples = trace.survival_samples(96.0);
    let model: Box<dyn SurvivalModel + Send + Sync> = if config.use_coxtime {
        let capped: Vec<_> = if samples.len() > 6000 {
            let stride = samples.len().div_ceil(6000);
            samples.iter().step_by(stride).cloned().collect()
        } else {
            samples.clone()
        };
        Box::new(
            CoxTimeModel::fit(&capped, &CoxTimeConfig::default())
                .expect("incident trace contains events"),
        )
    } else {
        Box::new(ExponentialPerCountModel::fit(&samples))
    };
    Selector::new(model, table6_coverage_history(), SelectorConfig::default())
}

/// Runs the simulation for every policy.
pub fn run(config: &Fig8Config) -> Fig8Result {
    let trace = generate_allocation_trace(&AllocationConfig::stressed(config.sim.nodes));
    let selector = build_selector(config);
    let coverage = table6_coverage_history();
    let mut policies: Vec<Policy<'_>> = vec![
        Policy::Absence,
        Policy::FullSet,
        Policy::Selector(&selector),
        Policy::Ideal,
    ];
    if config.include_ablation {
        policies.push(Policy::RandomSubset {
            coverage: &coverage,
            count: 4,
        });
    }
    // Policies simulate independently over the shared (read-only) trace
    // and selector; results come back in policy order.
    let outcomes = anubis_parallel::map_items(&policies, 0, |p| simulate(&config.sim, &trace, p));
    Fig8Result { outcomes }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: average node utilization (30 days)")?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.name().to_string(),
                    pct(o.avg_utilization),
                    format!("{:.2}", o.incidents_per_node),
                    format!("{}", o.jobs_completed),
                    format!("{}", o.jobs_interrupted),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &[
                    "Policy",
                    "Utilization",
                    "Incidents/node",
                    "Jobs done",
                    "Interrupted"
                ],
                &rows
            )
        )?;
        writeln!(f, "\nTable 4: validation time and MTBI per policy")?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.policy.name().to_string(),
                    format!("{:.2} h", o.avg_validation_hours),
                    format!("{:.2} h", o.mtbi_hours),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Policy", "Validation time", "MTBI"], &rows)
        )?;
        writeln!(
            f,
            "\nSelector vs absence: MTBI x{:.2}, utilization x{:.2}; validation cost -{:.1}% vs full set",
            self.mtbi_gain_over_absence(),
            self.utilization_gain_over_absence(),
            self.validation_reduction_vs_full_set() * 100.0
        )?;
        if let Some(selector) = self.outcome(PolicyKind::Selector) {
            writeln!(f, "\nDaily utilization (Selector):")?;
            for (day, util) in selector.daily_utilization.iter().enumerate() {
                writeln!(f, "  day {:>2}: {}", day + 1, pct(*util))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ratios_match_paper_shape() {
        let result = run(&Fig8Config::quick());
        assert!(
            result.mtbi_gain_over_absence() > 5.0,
            "MTBI gain {}",
            result.mtbi_gain_over_absence()
        );
        assert!(
            result.utilization_gain_over_absence() > 2.5,
            "utilization gain {}",
            result.utilization_gain_over_absence()
        );
        assert!(
            result.validation_reduction_vs_full_set() > 0.6,
            "validation reduction {}",
            result.validation_reduction_vs_full_set()
        );
    }

    #[test]
    fn policy_ordering_holds() {
        let result = run(&Fig8Config::quick());
        let util = |k: PolicyKind| result.outcome(k).unwrap().avg_utilization;
        assert!(util(PolicyKind::Ideal) >= util(PolicyKind::Selector));
        assert!(util(PolicyKind::Selector) > util(PolicyKind::FullSet));
        assert!(util(PolicyKind::FullSet) > util(PolicyKind::Absence));
    }

    #[test]
    fn coverage_history_is_calibrated() {
        let table = table6_coverage_history();
        assert!(table.total_defects() >= 900);
        let shares = table.defect_shares();
        assert_eq!(
            shares[0].0,
            BenchmarkId::IbHcaLoopback,
            "loopback finds most defects"
        );
        // A small greedy subset achieves high coverage — the property the
        // Selector exploits.
        let top: Vec<BenchmarkId> = shares.iter().take(5).map(|(b, _)| *b).collect();
        assert!(
            table.coverage(&top) > 0.7,
            "top-5 coverage {}",
            table.coverage(&top)
        );
    }

    #[test]
    fn renders() {
        let text = run(&Fig8Config::quick()).to_string();
        assert!(text.contains("Table 4"));
        assert!(text.contains("ANUBIS Selector"));
    }
}

//! One module per paper table/figure.

pub mod appendix_a;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table3;
pub mod table5;
pub mod table6;

/// Ids of every runnable experiment, as accepted by the `repro` binary.
pub const EXPERIMENT_IDS: [&str; 14] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "appendixA",
];

//! Figure 1: percentage of infrastructure incidents' sources.

use crate::table::{pct, render_table};
use anubis_hwsim::fault::IncidentCategory;
use anubis_traces::{generate_incident_trace, IncidentTraceConfig};
use std::fmt;

/// Configuration for the Figure 1 reproduction.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Nodes in the synthetic ticket month.
    pub nodes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self {
            nodes: 1000,
            seed: 42,
        }
    }
}

impl Fig1Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            nodes: 200,
            ..Self::default()
        }
    }
}

/// Result: incident-source shares, descending.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig1Result {
    /// `(category, share)` rows, descending by share.
    pub shares: Vec<(IncidentCategory, f64)>,
    /// Total incidents observed.
    pub total_incidents: usize,
}

/// Runs the experiment: generate a month of tickets and histogram the
/// sources.
pub fn run(config: &Fig1Config) -> Fig1Result {
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: config.nodes,
        duration_hours: 720.0, // "1-month tickets"
        seed: config.seed,
        ..IncidentTraceConfig::default()
    });
    Fig1Result {
        shares: trace.source_histogram(),
        total_incidents: trace.events.len(),
    }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: incident sources ({} tickets)",
            self.total_incidents
        )?;
        let rows: Vec<Vec<String>> = self
            .shares
            .iter()
            .map(|(c, s)| vec![c.name().to_string(), pct(*s)])
            .collect();
        write!(f, "{}", render_table(&["Component", "Share"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_than_eight_components_and_shares_sum_to_one() {
        let result = run(&Fig1Config::quick());
        assert!(result.shares.len() >= 8, "paper: >8 components appear");
        let total: f64 = result.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Descending order.
        assert!(result.shares.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn gpu_and_ib_dominate() {
        let result = run(&Fig1Config::default());
        let top: Vec<IncidentCategory> = result.shares.iter().take(3).map(|(c, _)| *c).collect();
        assert!(top.contains(&IncidentCategory::GpuCompute));
        assert!(top.contains(&IncidentCategory::IbLink));
    }

    #[test]
    fn renders() {
        let text = run(&Fig1Config::quick()).to_string();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("GPU"));
    }
}

//! Table 3: accuracy of incident-probability models.

use crate::table::{pct, render_table};
use anubis_selector::{
    concordance_index, model_accuracy, CoxTimeConfig, CoxTimeModel, CoxTimeTrainer,
    ExponentialModel, ExponentialPerCountModel, ExponentialPerHourModel, SurvivalModel,
    SurvivalSample,
};
use anubis_traces::{generate_incident_trace, IncidentTraceConfig};
use std::fmt;

/// Configuration for the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Nodes in the incident trace.
    pub nodes: u32,
    /// Snapshot grid in hours (denser grid = more samples; the paper
    /// extracts 46,808).
    pub grid_hours: f64,
    /// Cox-Time training configuration.
    pub coxtime: CoxTimeConfig,
    /// Cap on samples used for Cox-Time training (keeps runtime sane).
    pub max_training_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table3Config {
    fn default() -> Self {
        Self {
            nodes: 1000,
            grid_hours: 62.0,
            coxtime: CoxTimeConfig {
                epochs: 150,
                hidden: vec![64, 64],
                learning_rate: 1e-3,
                controls_per_event: 6,
                baseline_buckets: 160,
                ..CoxTimeConfig::default()
            },
            max_training_samples: 32_000,
            seed: 42,
        }
    }
}

impl Table3Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            nodes: 150,
            grid_hours: 96.0,
            coxtime: CoxTimeConfig {
                epochs: 60,
                hidden: vec![24, 24],
                controls_per_event: 6,
                baseline_buckets: 64,
                ..CoxTimeConfig::default()
            },
            max_training_samples: 4_000,
            ..Self::default()
        }
    }
}

/// Result: per-model TBNI prediction accuracy.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Result {
    /// `(model name, accuracy, concordance index)` rows in the paper's
    /// order. The C-index column is an addition over the paper: it
    /// exposes *ranking* quality, where constant predictors sit at 0.5.
    pub accuracies: Vec<(&'static str, f64, f64)>,
    /// Samples in the extracted dataset.
    pub total_samples: usize,
    /// Samples used for evaluation (events in the 20% split).
    pub test_events: usize,
}

impl Table3Result {
    /// Accuracy of one model by name.
    pub fn accuracy_of(&self, name: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, a, _)| *a)
    }

    /// Concordance index of one model by name.
    pub fn concordance_of(&self, name: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, c)| *c)
    }
}

/// Runs the experiment: extract status/TBNI samples from the synthetic
/// trace, fit all four models on the 80% split, and score them on the
/// held-out 20%.
pub fn run(config: &Table3Config) -> Table3Result {
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: config.nodes,
        seed: config.seed,
        ..IncidentTraceConfig::default()
    });
    let samples = trace.survival_samples(config.grid_hours);
    // Deterministic 80/20 split by index hash.
    let (mut train, mut test): (Vec<SurvivalSample>, Vec<SurvivalSample>) =
        (Vec::new(), Vec::new());
    for (i, sample) in samples.iter().enumerate() {
        if i % 5 == 4 {
            test.push(sample.clone());
        } else {
            train.push(sample.clone());
        }
    }
    let cox_train: Vec<SurvivalSample> = if train.len() > config.max_training_samples {
        let stride = train.len().div_ceil(config.max_training_samples);
        train.iter().step_by(stride).cloned().collect()
    } else {
        train.clone()
    };

    let exponential = ExponentialModel::fit(&train);
    let per_count = ExponentialPerCountModel::fit(&train);
    let per_hour = ExponentialPerHourModel::fit(&train);
    let coxtime = if anubis_parallel::incremental_enabled() {
        // Exercise the incremental machinery end to end: stage the
        // training set through the warm-start trainer in two ingestions.
        // Staged ingestion reconstructs the cold fit's derived state
        // exactly (see `CoxTimeTrainer`), so the rendered table is
        // byte-identical with the toggle on or off.
        let mut trainer = CoxTimeTrainer::new(config.coxtime.clone());
        let mid = cox_train.len() / 2;
        trainer.ingest(&cox_train[..mid]);
        trainer.ingest(&cox_train[mid..]);
        trainer
            .train(config.coxtime.epochs)
            .expect("incident trace contains events");
        trainer.finish().expect("incident trace contains events")
    } else {
        CoxTimeModel::fit(&cox_train, &config.coxtime).expect("incident trace contains events")
    };

    // The full C-index is O(events²); subsample the test events to keep
    // it cheap while staying statistically stable.
    let c_index_sample: Vec<SurvivalSample> = test
        .iter()
        .filter(|s| s.event)
        .step_by((test.len() / 2000).max(1))
        .cloned()
        .collect();
    let score = |model: &(dyn SurvivalModel + Sync)| {
        (
            model_accuracy(model, &test),
            concordance_index(model, &c_index_sample),
        )
    };
    let row = |name: &'static str, (a, c): (f64, f64)| (name, a, c);
    let accuracies = vec![
        row("Exponential Distribution", score(&exponential)),
        row(
            "Exponential Distribution per Incident Count",
            score(&per_count),
        ),
        row("Exponential Distribution per Hour", score(&per_hour)),
        row("Cox-Time Model", score(&coxtime)),
    ];
    Table3Result {
        accuracies,
        total_samples: samples.len(),
        test_events: test.iter().filter(|s| s.event).count(),
    }
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: probability-model accuracy ({} samples, {} test events)",
            self.total_samples, self.test_events
        )?;
        let rows: Vec<Vec<String>> = self
            .accuracies
            .iter()
            .map(|(name, acc, c)| vec![name.to_string(), pct(*acc), format!("{c:.3}")])
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Model", "Accuracy", "C-index"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coxtime_beats_every_baseline() {
        let result = run(&Table3Config::quick());
        let cox = result.accuracy_of("Cox-Time Model").unwrap();
        for (name, acc, _) in &result.accuracies {
            if *name != "Cox-Time Model" {
                assert!(
                    cox > *acc,
                    "Cox-Time ({cox:.3}) must beat {name} ({acc:.3})"
                );
            }
        }
        assert!(cox > 0.7, "Cox-Time accuracy {cox}");
        // Ranking quality: Cox-Time clearly beats the constant predictors.
        let cox_c = result.concordance_of("Cox-Time Model").unwrap();
        let exp_c = result.concordance_of("Exponential Distribution").unwrap();
        assert!(
            (exp_c - 0.5).abs() < 1e-9,
            "constant predictor C-index {exp_c}"
        );
        assert!(cox_c > 0.6, "Cox-Time C-index {cox_c}");
    }

    #[test]
    fn accuracies_are_probabilities() {
        let result = run(&Table3Config::quick());
        for (name, acc, c) in &result.accuracies {
            assert!((0.0..=1.0).contains(acc), "{name}: {acc}");
            assert!((0.0..=1.0).contains(c), "{name}: C-index {c}");
        }
        assert!(result.test_events > 50);
    }

    #[test]
    fn renders() {
        let text = run(&Table3Config::quick()).to_string();
        assert!(text.contains("Cox-Time Model"));
    }
}

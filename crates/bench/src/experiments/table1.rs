//! Table 1: row-remapping impact on end-to-end workloads.

use crate::table::{pct, render_table};
use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec};
use anubis_workload::{simulate_training, ModelId, TrainingOptions};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Fleet size.
    pub nodes: u32,
    /// Fraction of nodes with 1–10 correctable errors (paper: 3.19%).
    pub low_ce_fraction: f64,
    /// Fraction of nodes with >10 correctable errors (paper: 0.18%).
    pub high_ce_fraction: f64,
    /// End-to-end regression threshold (relative throughput loss).
    pub regression_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            nodes: 6000,
            low_ce_fraction: 0.0319,
            high_ce_fraction: 0.0018,
            regression_threshold: 0.02,
            seed: 33,
        }
    }
}

impl Table1Config {
    /// A fast preset for tests (higher remap fractions so buckets are
    /// populated).
    pub fn quick() -> Self {
        Self {
            nodes: 400,
            low_ce_fraction: 0.1,
            high_ce_fraction: 0.05,
            ..Self::default()
        }
    }
}

/// One CE-bucket row of Table 1.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RemapBucket {
    /// Nodes in this bucket.
    pub nodes: usize,
    /// Bucket share of the full fleet.
    pub node_ratio: f64,
    /// Fraction of bucket nodes with an end-to-end regression.
    pub regression_ratio: f64,
}

/// Result: the two Table 1 buckets.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table1Result {
    /// 1–10 correctable errors.
    pub low_ce: RemapBucket,
    /// >10 correctable errors.
    pub high_ce: RemapBucket,
}

/// Runs the experiment: inject row remaps at fleet-calibrated rates,
/// train a memory-sensitive CNN end to end, and compare each node's mean
/// step throughput against a healthy reference.
pub fn run(config: &Table1Config) -> Table1Result {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let model = ModelId::ResNet50.config();
    let opts = TrainingOptions::validation(48);
    let reference = {
        let mut node = NodeSim::new(NodeId(u32::MAX), NodeSpec::a100_8x(), config.seed);
        let series = simulate_training(&mut node, &model, &opts);
        series[16..].iter().sum::<f64>() / (series.len() - 16) as f64
    };

    let mut buckets = [(0usize, 0usize), (0usize, 0usize)]; // (nodes, regressed)
    for i in 0..config.nodes {
        let draw: f64 = rng.random();
        let errors = if draw < config.high_ce_fraction {
            rng.random_range(11..40)
        } else if draw < config.high_ce_fraction + config.low_ce_fraction {
            rng.random_range(1..=10)
        } else {
            continue;
        };
        let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), config.seed ^ u64::from(i));
        node.inject_fault(FaultKind::RowRemapErrors {
            correctable_errors: errors,
        });
        let series = simulate_training(&mut node, &model, &opts);
        let throughput = series[16..].iter().sum::<f64>() / (series.len() - 16) as f64;
        let regressed = throughput < reference * (1.0 - config.regression_threshold);
        let bucket = usize::from(errors > 10);
        buckets[bucket].0 += 1;
        if regressed {
            buckets[bucket].1 += 1;
        }
    }

    let to_bucket = |(nodes, regressed): (usize, usize)| RemapBucket {
        nodes,
        node_ratio: nodes as f64 / config.nodes as f64,
        regression_ratio: if nodes > 0 {
            regressed as f64 / nodes as f64
        } else {
            0.0
        },
    };
    Table1Result {
        low_ce: to_bucket(buckets[0]),
        high_ce: to_bucket(buckets[1]),
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: row-remapping impact on end-to-end workloads")?;
        let rows = vec![
            vec![
                "row remapping node ratio of all nodes".to_string(),
                pct(self.low_ce.node_ratio),
                pct(self.high_ce.node_ratio),
            ],
            vec![
                "regression node ratio of remapping nodes".to_string(),
                pct(self.low_ce.regression_ratio),
                pct(self.high_ce.regression_ratio),
            ],
        ];
        write!(
            f,
            "{}",
            render_table(&["correctable errors", "1~10", ">10"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_ce_nodes_mostly_regress() {
        let result = run(&Table1Config::quick());
        assert!(
            result.high_ce.nodes > 5,
            "bucket populated: {}",
            result.high_ce.nodes
        );
        assert!(
            result.high_ce.regression_ratio > 0.6,
            ">10 CE regression ratio {}",
            result.high_ce.regression_ratio
        );
        assert!(
            result.low_ce.regression_ratio < 0.2,
            "1-10 CE regression ratio {}",
            result.low_ce.regression_ratio
        );
        // The paper's 77.8-point gap in direction.
        assert!(result.high_ce.regression_ratio > result.low_ce.regression_ratio + 0.4);
    }

    #[test]
    fn fleet_ratios_match_config() {
        let config = Table1Config::quick();
        let result = run(&config);
        assert!((result.low_ce.node_ratio - config.low_ce_fraction).abs() < 0.05);
        assert!((result.high_ce.node_ratio - config.high_ce_fraction).abs() < 0.05);
    }

    #[test]
    fn renders() {
        let text = run(&Table1Config::quick()).to_string();
        assert!(text.contains("Table 1"));
        assert!(text.contains(">10"));
    }
}

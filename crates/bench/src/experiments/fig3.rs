//! Figure 3: cumulative distribution of 2-node all-reduce bandwidth on a
//! 24-node fat-tree testbed under different redundancy ratios.

use anubis_hwsim::NoiseModel;
use anubis_netsim::{concurrent_pair_bandwidths, full_scan_rounds, FatTree, FatTreeConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Uplinks to break on the degraded ToRs (the masking budget is 4, so
    /// anything above that violates the ≥50%-redundant-links-up rule).
    pub broken_uplinks: u32,
    /// How many ToR switches are degraded in scenario (a).
    pub degraded_tors: usize,
    /// RNG seed for measurement noise.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            broken_uplinks: 6,
            degraded_tors: 2,
            seed: 3,
        }
    }
}

impl Fig3Config {
    /// Test preset (same scale — the testbed is already small).
    pub fn quick() -> Self {
        Self::default()
    }
}

/// Result: pair-bandwidth samples for both scenarios.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig3Result {
    /// Scenario (a): several ToRs below 50% redundant links up.
    pub degraded_bandwidths: Vec<f64>,
    /// Scenario (b): all ToRs at or above 50% (same broken count but
    /// within the masking budget).
    pub healthy_bandwidths: Vec<f64>,
}

impl Fig3Result {
    /// Empirical CDF points `(bandwidth, fraction <=)` of a scenario.
    pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / sorted.len() as f64))
            .collect()
    }

    /// Fraction of pairs below `threshold` GB/s in the degraded scenario.
    pub fn degraded_fraction_below(&self, threshold: f64) -> f64 {
        self.degraded_bandwidths
            .iter()
            .filter(|&&b| b < threshold)
            .count() as f64
            / self.degraded_bandwidths.len().max(1) as f64
    }
}

/// Runs the experiment: all 2-node pairs (full circle-method scan, each
/// round's 12 pairs running simultaneously) on the 24-node testbed, once
/// with two ToRs past the redundancy budget and once with every ToR
/// within it.
pub fn run(config: &Fig3Config) -> Fig3Result {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let noise = NoiseModel::NETWORK;
    let mut run_scenario = |break_past_budget: bool| -> Vec<f64> {
        let mut tree =
            FatTree::build(FatTreeConfig::figure3_testbed()).expect("testbed config is valid");
        let budget = tree.tor_uplinks(0).expect("tor 0 exists").masking_budget();
        for tor in 0..config.degraded_tors {
            let broken = if break_past_budget {
                config.broken_uplinks.max(budget + 1)
            } else {
                budget
            };
            tree.break_tor_uplinks(tor, broken).expect("tor exists");
        }
        let mut bandwidths = Vec::new();
        for round in full_scan_rounds(tree.nodes()) {
            let bws = concurrent_pair_bandwidths(&tree, &round).expect("pairs are valid nodes");
            // Real measurements carry run-to-run noise; the congestion
            // model is deterministic, so apply the network noise profile.
            bandwidths.extend(bws.into_iter().map(|bw| noise.apply(bw, &mut rng)));
        }
        bandwidths
    };
    Fig3Result {
        degraded_bandwidths: run_scenario(true),
        healthy_bandwidths: run_scenario(false),
    }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: 2-node all-reduce bus bandwidth CDF (GB/s)")?;
        let describe = |label: &str, values: &[f64], f: &mut fmt::Formatter<'_>| {
            let cdf = Fig3Result::cdf(values);
            let at = |q: f64| cdf[((cdf.len() - 1) as f64 * q) as usize].0;
            writeln!(
                f,
                "  {label}: p5 {:.1}, p25 {:.1}, p50 {:.1}, p95 {:.1}",
                at(0.05),
                at(0.25),
                at(0.5),
                at(0.95)
            )
        };
        describe(
            "(a) ToRs < 50% redundant links up ",
            &self.degraded_bandwidths,
            f,
        )?;
        describe(
            "(b) all ToRs >= 50% redundant up  ",
            &self.healthy_bandwidths,
            f,
        )?;
        writeln!(
            f,
            "  degraded pairs below 180 GB/s: {:.1}%",
            self.degraded_fraction_below(180.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_redundancy_creates_a_slow_tail() {
        let result = run(&Fig3Config::default());
        assert!(
            result.degraded_fraction_below(180.0) > 0.1,
            "a visible fraction of pairs regress: {}",
            result.degraded_fraction_below(180.0)
        );
        // The healthy scenario has no such tail even though links are
        // broken (within the masking budget).
        let healthy_below = result
            .healthy_bandwidths
            .iter()
            .filter(|&&b| b < 180.0)
            .count();
        assert_eq!(healthy_below, 0, "masked breakage must not regress");
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let result = run(&Fig3Config::quick());
        let cdf = Fig3Result::cdf(&result.degraded_bandwidths);
        assert_eq!(cdf.len(), 276, "all 24*23/2 pairs measured");
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renders() {
        let text = run(&Fig3Config::quick()).to_string();
        assert!(text.contains("Figure 3"));
        assert!(text.contains("p50"));
    }
}

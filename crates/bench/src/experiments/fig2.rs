//! Figure 2: incidents troubleshooting-duration distribution.

use crate::table::{pct, render_table};
use anubis_traces::TicketDurationModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Tickets to sample.
    pub tickets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Self {
            tickets: 50_000,
            seed: 7,
        }
    }
}

impl Fig2Config {
    /// A fast preset for tests.
    pub fn quick() -> Self {
        Self {
            tickets: 5_000,
            ..Self::default()
        }
    }
}

/// Result: exceedance fractions at the paper's thresholds.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig2Result {
    /// `(threshold hours, label, fraction of tickets above)` rows.
    pub exceedance: Vec<(f64, &'static str, f64)>,
    /// Median ticket duration in hours.
    pub median_hours: f64,
}

/// Runs the experiment: sample ticket durations and build the tail
/// distribution.
pub fn run(config: &Fig2Config) -> Fig2Result {
    let model = TicketDurationModel::figure2();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut draws: Vec<f64> = (0..config.tickets)
        .map(|_| model.sample(&mut rng))
        .collect();
    draws.sort_by(f64::total_cmp);
    let frac_above =
        |hours: f64| draws.iter().filter(|&&d| d > hours).count() as f64 / draws.len() as f64;
    let thresholds: [(f64, &'static str); 5] = [
        (1.0, "> 1 hour"),
        (6.0, "> 6 hours"),
        (24.0, "> 1 day"),
        (168.0, "> 1 week"),
        (336.0, "> 2 weeks"),
    ];
    Fig2Result {
        exceedance: thresholds
            .iter()
            .map(|&(h, l)| (h, l, frac_above(h)))
            .collect(),
        median_hours: draws[draws.len() / 2],
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2: troubleshooting durations (median {:.1} h)",
            self.median_hours
        )?;
        let rows: Vec<Vec<String>> = self
            .exceedance
            .iter()
            .map(|(_, label, frac)| vec![label.to_string(), pct(*frac)])
            .collect();
        write!(f, "{}", render_table(&["Duration", "Tickets"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_tails() {
        let result = run(&Fig2Config::default());
        let over_day = result
            .exceedance
            .iter()
            .find(|(h, _, _)| *h == 24.0)
            .unwrap()
            .2;
        let over_2w = result
            .exceedance
            .iter()
            .find(|(h, _, _)| *h == 336.0)
            .unwrap()
            .2;
        assert!((over_day - 0.381).abs() < 0.015, "1-day tail {over_day}");
        assert!((over_2w - 0.103).abs() < 0.01, "2-week tail {over_2w}");
    }

    #[test]
    fn exceedance_is_monotone() {
        let result = run(&Fig2Config::quick());
        assert!(result.exceedance.windows(2).all(|w| w[0].2 >= w[1].2));
        assert!(result.median_hours > 1.0);
    }

    #[test]
    fn renders() {
        let text = run(&Fig2Config::quick()).to_string();
        assert!(text.contains("> 1 day"));
    }
}

//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--json]
//! repro all [--quick] [--json]
//! repro list
//! ```
//!
//! Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig8 fig9 table1 table3
//! table4 table5 table6 appendixA. (`table4` is produced together with
//! `fig8` — both come from the same simulation.)

use anubis_bench::experiments::{
    appendix_a, fig1, fig2, fig3, fig4, fig5, fig6, fig8, fig9, table1, table3, table5, table6,
    EXPERIMENT_IDS,
};
use anubis_metrics::json::to_json;
use std::time::Instant;

/// Output format of one experiment run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// The paper-style aligned tables.
    Text,
    /// Machine-readable JSON (one object per experiment).
    Json,
}

fn render<T: serde::Serialize + std::fmt::Display>(value: &T, format: Format) -> String {
    match format {
        Format::Text => value.to_string(),
        Format::Json => to_json(value).expect("experiment results are serializable"),
    }
}

fn run_one(id: &str, quick: bool, centroid_mean: bool, format: Format) -> Result<String, String> {
    let output = match id {
        "fig1" => {
            let cfg = if quick {
                fig1::Fig1Config::quick()
            } else {
                Default::default()
            };
            render(&fig1::run(&cfg), format)
        }
        "fig2" => {
            let cfg = if quick {
                fig2::Fig2Config::quick()
            } else {
                Default::default()
            };
            render(&fig2::run(&cfg), format)
        }
        "fig3" => {
            let cfg = if quick {
                fig3::Fig3Config::quick()
            } else {
                Default::default()
            };
            render(&fig3::run(&cfg), format)
        }
        "fig4" => {
            let cfg = if quick {
                fig4::Fig4Config::quick()
            } else {
                Default::default()
            };
            render(&fig4::run(&cfg), format)
        }
        "fig5" => {
            let cfg = if quick {
                fig5::Fig5Config::quick()
            } else {
                Default::default()
            };
            render(&fig5::run(&cfg), format)
        }
        "fig6" => {
            let cfg = if quick {
                fig6::Fig6Config::quick()
            } else {
                Default::default()
            };
            render(&fig6::run(&cfg), format)
        }
        "fig8" | "table4" => {
            let cfg = if quick {
                fig8::Fig8Config::quick()
            } else {
                Default::default()
            };
            render(&fig8::run(&cfg), format)
        }
        "fig9" => {
            let mut cfg = if quick {
                fig9::Fig9Config::quick()
            } else {
                Default::default()
            };
            if centroid_mean {
                cfg.centroid = anubis_validator::CentroidMethod::DistributionMean;
            }
            render(&fig9::run(&cfg), format)
        }
        "table1" => {
            let cfg = if quick {
                table1::Table1Config::quick()
            } else {
                Default::default()
            };
            render(&table1::run(&cfg), format)
        }
        "table3" => {
            let cfg = if quick {
                table3::Table3Config::quick()
            } else {
                Default::default()
            };
            render(&table3::run(&cfg), format)
        }
        "table5" => {
            let cfg = if quick {
                table5::Table5Config::quick()
            } else {
                Default::default()
            };
            render(&table5::run(&cfg), format)
        }
        "table6" => {
            let cfg = if quick {
                table6::Table6Config::quick()
            } else {
                Default::default()
            };
            render(&table6::run(&cfg), format)
        }
        "appendixA" | "appendixa" => {
            let cfg = if quick {
                appendix_a::AppendixAConfig::quick()
            } else {
                Default::default()
            };
            render(&appendix_a::run(&cfg), format)
        }
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(output)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let centroid_mean = args.iter().any(|a| a == "--centroid-mean");
    let format = if args.iter().any(|a| a == "--json") {
        Format::Json
    } else {
        Format::Text
    };
    let target = args.iter().find(|a| !a.starts_with("--")).cloned();

    let Some(target) = target else {
        eprintln!("usage: repro <experiment|all|list> [--quick] [--centroid-mean] [--json]");
        eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
        std::process::exit(2);
    };

    if target == "list" {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }

    // `table4` is rendered as part of fig8; avoid running the simulation
    // twice under `all`.
    let ids: Vec<&str> = if target == "all" {
        EXPERIMENT_IDS
            .iter()
            .copied()
            .filter(|&id| id != "table4")
            .collect()
    } else {
        vec![target.as_str()]
    };

    for id in ids {
        let started = Instant::now();
        match run_one(id, quick, centroid_mean, format) {
            Ok(output) => {
                if format == Format::Json {
                    println!("{output}");
                } else {
                    println!("=== {id} ({:.1}s) ===", started.elapsed().as_secs_f64());
                    println!("{output}");
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
                std::process::exit(2);
            }
        }
    }
}

//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--json] [--trace[=PATH]] [--out[=PATH]]
//! repro all [--quick] [--json]
//! repro fleetd [--nodes N] [--shards S] [--ticks T] [--seed X]
//!              [--threads K] [--jsonl[=PATH]] [--trace[=PATH]] [--out[=PATH]]
//! repro list
//! ```
//!
//! Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig8 fig9 table1 table3
//! table4 table5 table6 appendixA. (`table4` is produced together with
//! `fig8` — both come from the same simulation.)
//!
//! `--trace` records a deterministic `anubis-obs` virtual-time trace of
//! the run (default `target/trace.jsonl`; summarize with `cargo xtask
//! profile <path>`). `--out` additionally writes the rendered output to a
//! file (default `target/repro_output.txt`). Both accept `--flag=PATH` or
//! `--flag PATH` (with the experiment named first); output files default
//! under `target/` to keep the repo root clean.
//!
//! `repro fleetd` runs the `anubis-fleetd` continuous-validation service.
//! Its stdout (end-of-run summary) and `--jsonl` per-tick trace are
//! byte-deterministic — identical for any `ANUBIS_THREADS` / `--threads`
//! value and any `--shards` count — while wall-clock throughput figures
//! (events/s, nodes validated/s) go to stderr. CI's service-smoke step
//! byte-compares two runs at different thread counts.

use anubis_bench::experiments::{
    appendix_a, fig1, fig2, fig3, fig4, fig5, fig6, fig8, fig9, table1, table3, table5, table6,
    EXPERIMENT_IDS,
};
use anubis_metrics::json::to_json;
use anubis_obs::wall::Stopwatch;
use std::path::PathBuf;

/// Output format of one experiment run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// The paper-style aligned tables.
    Text,
    /// Machine-readable JSON (one object per experiment).
    Json,
}

fn render<T: serde::Serialize + std::fmt::Display>(value: &T, format: Format) -> String {
    match format {
        Format::Text => value.to_string(),
        Format::Json => to_json(value).expect("experiment results are serializable"),
    }
}

fn run_one(id: &str, quick: bool, centroid_mean: bool, format: Format) -> Result<String, String> {
    let output = match id {
        "fig1" => {
            let cfg = if quick {
                fig1::Fig1Config::quick()
            } else {
                Default::default()
            };
            render(&fig1::run(&cfg), format)
        }
        "fig2" => {
            let cfg = if quick {
                fig2::Fig2Config::quick()
            } else {
                Default::default()
            };
            render(&fig2::run(&cfg), format)
        }
        "fig3" => {
            let cfg = if quick {
                fig3::Fig3Config::quick()
            } else {
                Default::default()
            };
            render(&fig3::run(&cfg), format)
        }
        "fig4" => {
            let cfg = if quick {
                fig4::Fig4Config::quick()
            } else {
                Default::default()
            };
            render(&fig4::run(&cfg), format)
        }
        "fig5" => {
            let cfg = if quick {
                fig5::Fig5Config::quick()
            } else {
                Default::default()
            };
            render(&fig5::run(&cfg), format)
        }
        "fig6" => {
            let cfg = if quick {
                fig6::Fig6Config::quick()
            } else {
                Default::default()
            };
            render(&fig6::run(&cfg), format)
        }
        "fig8" | "table4" => {
            let cfg = if quick {
                fig8::Fig8Config::quick()
            } else {
                Default::default()
            };
            render(&fig8::run(&cfg), format)
        }
        "fig9" => {
            let mut cfg = if quick {
                fig9::Fig9Config::quick()
            } else {
                Default::default()
            };
            if centroid_mean {
                cfg.centroid = anubis_validator::CentroidMethod::DistributionMean;
            }
            render(&fig9::run(&cfg), format)
        }
        "table1" => {
            let cfg = if quick {
                table1::Table1Config::quick()
            } else {
                Default::default()
            };
            render(&table1::run(&cfg), format)
        }
        "table3" => {
            let cfg = if quick {
                table3::Table3Config::quick()
            } else {
                Default::default()
            };
            render(&table3::run(&cfg), format)
        }
        "table5" => {
            let cfg = if quick {
                table5::Table5Config::quick()
            } else {
                Default::default()
            };
            render(&table5::run(&cfg), format)
        }
        "table6" => {
            let cfg = if quick {
                table6::Table6Config::quick()
            } else {
                Default::default()
            };
            render(&table6::run(&cfg), format)
        }
        "appendixA" | "appendixa" => {
            let cfg = if quick {
                appendix_a::AppendixAConfig::quick()
            } else {
                Default::default()
            };
            render(&appendix_a::run(&cfg), format)
        }
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(output)
}

/// Parsed command line.
struct Cli {
    quick: bool,
    centroid_mean: bool,
    format: Format,
    target: Option<String>,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
}

/// Parses `--flag`, `--flag=PATH`, and `--flag PATH` (the space form only
/// consumes the next token once the experiment has been named, so
/// `repro --trace table3` still treats `table3` as the experiment).
fn optional_path(
    rest: &str,
    args: &[String],
    i: &mut usize,
    target_seen: bool,
    default: &str,
) -> Option<PathBuf> {
    if let Some(explicit) = rest.strip_prefix('=') {
        return Some(PathBuf::from(explicit));
    }
    if !rest.is_empty() {
        return None; // e.g. `--tracey`: not this flag.
    }
    if target_seen {
        if let Some(next) = args.get(*i + 1).filter(|a| !a.starts_with("--")) {
            *i += 1;
            return Some(PathBuf::from(next));
        }
    }
    Some(PathBuf::from(default))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        centroid_mean: false,
        format: Format::Text,
        target: None,
        trace: None,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" => cli.quick = true,
            "--centroid-mean" => cli.centroid_mean = true,
            "--json" => cli.format = Format::Json,
            _ if arg.starts_with("--trace") => {
                match optional_path(
                    &arg["--trace".len()..],
                    args,
                    &mut i,
                    cli.target.is_some(),
                    "target/trace.jsonl",
                ) {
                    Some(path) => cli.trace = Some(path),
                    None => return Err(format!("unknown flag `{arg}`")),
                }
            }
            _ if arg.starts_with("--out") => {
                match optional_path(
                    &arg["--out".len()..],
                    args,
                    &mut i,
                    cli.target.is_some(),
                    "target/repro_output.txt",
                ) {
                    Some(path) => cli.out = Some(path),
                    None => return Err(format!("unknown flag `{arg}`")),
                }
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ if cli.target.is_none() => cli.target = Some(arg.to_owned()),
            _ => return Err(format!("unexpected argument `{arg}`")),
        }
        i += 1;
    }
    Ok(cli)
}

/// Writes `contents` to `path`, creating parent directories.
fn write_file(path: &PathBuf, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("write {}: {e}", path.display()))
}

fn usage_exit(message: Option<&str>) -> ! {
    if let Some(message) = message {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: repro <experiment|all|list> [--quick] [--centroid-mean] [--json] [--trace[=PATH]] [--out[=PATH]]"
    );
    eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
    std::process::exit(2);
}

/// Parsed `repro fleetd` command line.
struct FleetdCli {
    config: anubis_fleetd::FleetdConfig,
    jsonl: Option<PathBuf>,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
}

/// Parses the `fleetd` subcommand's flags (`--flag N` and `--flag=N`
/// forms for the numeric knobs).
fn parse_fleetd_args(args: &[String]) -> Result<FleetdCli, String> {
    fn numeric<T: std::str::FromStr>(
        flag: &str,
        arg: &str,
        args: &[String],
        i: &mut usize,
    ) -> Result<Option<T>, String> {
        let rest = match arg.strip_prefix(flag) {
            Some(rest) => rest,
            None => return Ok(None),
        };
        let raw = if let Some(explicit) = rest.strip_prefix('=') {
            explicit.to_owned()
        } else if rest.is_empty() {
            *i += 1;
            match args.get(*i) {
                Some(next) => next.clone(),
                None => return Err(format!("`{flag}` needs a value")),
            }
        } else {
            return Ok(None); // e.g. `--nodesy`: not this flag.
        };
        match raw.parse::<T>() {
            Ok(value) => Ok(Some(value)),
            Err(_) => Err(format!("`{flag}` needs a number, got `{raw}`")),
        }
    }

    let mut cli = FleetdCli {
        config: anubis_fleetd::FleetdConfig::default(),
        jsonl: None,
        trace: None,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(n) = numeric::<u32>("--nodes", arg, args, &mut i)? {
            cli.config.nodes = n;
        } else if let Some(s) = numeric::<u32>("--shards", arg, args, &mut i)? {
            cli.config.shards = s;
        } else if let Some(t) = numeric::<u32>("--ticks", arg, args, &mut i)? {
            cli.config.ticks = t;
        } else if let Some(x) = numeric::<u64>("--seed", arg, args, &mut i)? {
            cli.config.seed = x;
        } else if let Some(k) = numeric::<usize>("--threads", arg, args, &mut i)? {
            cli.config.threads = k;
        } else if let Some(rest) = arg.strip_prefix("--jsonl") {
            match optional_path(rest, args, &mut i, true, "target/fleetd.jsonl") {
                Some(path) => cli.jsonl = Some(path),
                None => return Err(format!("unknown flag `{arg}`")),
            }
        } else if let Some(rest) = arg.strip_prefix("--trace") {
            match optional_path(rest, args, &mut i, true, "target/fleetd-trace.jsonl") {
                Some(path) => cli.trace = Some(path),
                None => return Err(format!("unknown flag `{arg}`")),
            }
        } else if let Some(rest) = arg.strip_prefix("--out") {
            match optional_path(rest, args, &mut i, true, "target/fleetd-summary.txt") {
                Some(path) => cli.out = Some(path),
                None => return Err(format!("unknown flag `{arg}`")),
            }
        } else {
            return Err(format!("unknown fleetd argument `{arg}`"));
        }
        i += 1;
    }
    Ok(cli)
}

/// Runs the continuous-validation service and reports. Deterministic
/// output (summary, per-tick JSONL) goes to stdout and `--jsonl`;
/// wall-clock throughput goes to stderr only.
fn run_fleetd(args: &[String]) -> ! {
    let cli = match parse_fleetd_args(args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: repro fleetd [--nodes N] [--shards S] [--ticks T] [--seed X] \
                 [--threads K] [--jsonl[=PATH]] [--trace[=PATH]] [--out[=PATH]]"
            );
            std::process::exit(2);
        }
    };
    if cli.trace.is_some() {
        anubis_obs::enable();
    }
    let ticks = cli.config.ticks;
    let mut fleet = anubis_fleetd::Coordinator::new(cli.config);
    let mut jsonl = String::new();
    let want_jsonl = cli.jsonl.is_some();
    let started = Stopwatch::start();
    let summary = fleet.run(ticks, |tick| {
        if want_jsonl {
            tick.write_jsonl(&mut jsonl);
        }
    });
    let elapsed = started.elapsed_secs().max(1e-9);

    let rendered = summary.render();
    print!("{rendered}");
    let mut failed = false;
    if let Some(path) = &cli.out {
        match write_file(path, &rendered) {
            Ok(()) => eprintln!("summary written to {}", path.display()),
            Err(message) => {
                eprintln!("error: {message}");
                failed = true;
            }
        }
    }
    if let Some(path) = &cli.jsonl {
        match write_file(path, &jsonl) {
            Ok(()) => eprintln!("tick trace written to {}", path.display()),
            Err(message) => {
                eprintln!("error: {message}");
                failed = true;
            }
        }
    }
    if let Some(path) = &cli.trace {
        let trace = anubis_obs::drain();
        anubis_obs::disable();
        match write_file(path, &trace.to_jsonl()) {
            Ok(()) => eprintln!(
                "obs trace written to {} ({} records, {} dropped)",
                path.display(),
                trace.records.len(),
                trace.dropped
            ),
            Err(message) => {
                eprintln!("error: {message}");
                failed = true;
            }
        }
    }

    let node_ticks = f64::from(summary.nodes) * f64::from(summary.ticks);
    let events = summary.incidents + summary.samples + summary.jobs_started + summary.repairs;
    eprintln!(
        "fleetd: {} nodes x {} ticks ({} shards) in {:.2}s — {:.0} node-ticks/s, {:.0} events/s, {:.0} nodes validated/s",
        summary.nodes,
        summary.ticks,
        summary.shards,
        elapsed,
        node_ticks / elapsed,
        events as f64 / elapsed,
        summary.validations as f64 / elapsed,
    );
    std::process::exit(i32::from(failed));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "fleetd") {
        run_fleetd(&args[1..]);
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => usage_exit(Some(&message)),
    };
    let Some(target) = cli.target.clone() else {
        usage_exit(None);
    };

    if target == "list" {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return;
    }

    if cli.trace.is_some() {
        anubis_obs::enable();
    }

    // `table4` is rendered as part of fig8; avoid running the simulation
    // twice under `all`.
    let ids: Vec<&str> = if target == "all" {
        EXPERIMENT_IDS
            .iter()
            .copied()
            .filter(|&id| id != "table4")
            .collect()
    } else {
        vec![target.as_str()]
    };

    let mut collected = String::new();
    for id in ids {
        let started = Stopwatch::start();
        // Span names must be `'static`: map the requested id back onto the
        // experiment table (unknown ids fail inside `run_one` anyway).
        let span_name = EXPERIMENT_IDS
            .iter()
            .copied()
            .find(|e| e.eq_ignore_ascii_case(id))
            .unwrap_or("experiment");
        let result = {
            let _span = anubis_obs::span!(span_name);
            run_one(id, cli.quick, cli.centroid_mean, cli.format)
        };
        match result {
            Ok(output) => {
                let rendered = if cli.format == Format::Json {
                    format!("{output}\n")
                } else {
                    format!("=== {id} ({:.1}s) ===\n{output}\n", started.elapsed_secs())
                };
                print!("{rendered}");
                if cli.out.is_some() {
                    collected.push_str(&rendered);
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("experiments: {}", EXPERIMENT_IDS.join(" "));
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &cli.out {
        if let Err(message) = write_file(path, &collected) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        eprintln!("output written to {}", path.display());
    }
    if let Some(path) = &cli.trace {
        let trace = anubis_obs::drain();
        anubis_obs::disable();
        let jsonl = trace.to_jsonl();
        if let Err(message) = write_file(path, &jsonl) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        eprintln!(
            "trace written to {} ({} records, {} dropped; summarize with `cargo xtask profile {}`)",
            path.display(),
            trace.records.len(),
            trace.dropped,
            path.display()
        );
    }
}

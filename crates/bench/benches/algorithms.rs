//! Criterion benches for the hot algorithms: CDF similarity, criteria
//! clustering, greedy benchmark selection, Cox-Time prediction, the
//! network scan schedulers and the cluster simulator.

use anubis_benchsuite::{run_set, run_set_parallel, BenchmarkId};
use anubis_cluster::{simulate, ClusterSimConfig, Policy};
use anubis_metrics::{
    cdf_distance, one_sided_distance, pairwise_similarity_matrix_threads, Direction, Sample,
};
use anubis_netsim::{
    concurrent_pair_bandwidths, full_scan_rounds, quick_scan_rounds, FatTree, FatTreeConfig,
};
use anubis_selector::{
    select_benchmarks_celf, select_benchmarks_eager, CoverageTable, CoxTimeConfig, CoxTimeModel,
    CoxTimeTrainer, ExponentialModel, NodeStatus, SurvivalModel, SurvivalSample,
};
use anubis_traces::{
    generate_allocation_trace, generate_incident_trace, AllocationConfig, IncidentTraceConfig,
};
use anubis_validator::{calculate_criteria, CentroidMethod, CriteriaCache};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn series_sample(seed: u64, len: usize) -> Sample {
    let values: Vec<f64> = (0..len)
        .map(|i| 100.0 + (((i as u64 * 2654435761) ^ seed) % 1000) as f64 / 500.0)
        .collect();
    Sample::new(values).unwrap()
}

fn bench_distance(c: &mut Criterion) {
    let a = series_sample(1, 512);
    let b = series_sample(2, 512);
    c.bench_function("cdf_distance/512x512", |bencher| {
        bencher.iter(|| black_box(cdf_distance(black_box(&a), black_box(&b))));
    });
    c.bench_function("one_sided_distance/512x512", |bencher| {
        bencher.iter(|| {
            black_box(one_sided_distance(
                black_box(&a),
                black_box(&b),
                Direction::HigherIsBetter,
            ))
        });
    });
}

fn bench_criteria(c: &mut Criterion) {
    let samples: Vec<Sample> = (0..96).map(|i| series_sample(i, 128)).collect();
    c.bench_function("criteria/algorithm2/96nodes", |bencher| {
        bencher.iter(|| {
            black_box(
                calculate_criteria(black_box(&samples), 0.95, CentroidMethod::Medoid).unwrap(),
            )
        });
    });
    c.bench_function("criteria/distribution-mean/96nodes", |bencher| {
        bencher.iter(|| {
            black_box(
                calculate_criteria(black_box(&samples), 0.95, CentroidMethod::DistributionMean)
                    .unwrap(),
            )
        });
    });
    // Steady-state incremental path: 95 nodes already absorbed, bench the
    // cost of folding in the 96th and re-deriving the criteria. This is
    // the per-benchmark-run cost during continuous validation, vs the
    // full O(n²) recluster above.
    let mut warm = CriteriaCache::new(0.95, CentroidMethod::Medoid).unwrap();
    warm.extend(&samples[..95]);
    c.bench_function("criteria/incremental/96nodes", |bencher| {
        bencher.iter_batched(
            || warm.clone(),
            |mut cache| {
                cache.extend(black_box(&samples[95..]));
                black_box(cache.result().unwrap())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_similarity_matrix(c: &mut Criterion) {
    let samples: Vec<Sample> = (0..64).map(|i| series_sample(i, 256)).collect();
    for threads in [1usize, 8] {
        c.bench_function(
            &format!("similarity-matrix/64x256/{threads}threads"),
            |bencher| {
                bencher.iter(|| {
                    black_box(pairwise_similarity_matrix_threads(
                        black_box(&samples),
                        threads,
                    ))
                });
            },
        );
    }
}

fn bench_selection(c: &mut Criterion) {
    let mut coverage = CoverageTable::new();
    for (i, bench) in BenchmarkId::ALL.iter().enumerate() {
        for d in 0..(5 + i as u64 * 3) {
            coverage.record(*bench, d * 7 % 211);
        }
    }
    let model = ExponentialModel { rate: 1.0 / 120.0 };
    let statuses = vec![NodeStatus::fresh(); 16];
    // The eager O(k·n) rescan — kept as the reference kernel so the
    // baseline keeps measuring the same algorithm it always did.
    c.bench_function("selection/algorithm1/31benchmarks", |bencher| {
        bencher.iter(|| {
            black_box(select_benchmarks_eager(
                &model,
                black_box(&statuses),
                36.0,
                &coverage,
                &BenchmarkId::ALL,
                0.05,
            ))
        });
    });
    // CELF lazy-greedy: byte-identical output, fewer marginal-gain
    // evaluations per round.
    c.bench_function("selection/celf/31benchmarks", |bencher| {
        bencher.iter(|| {
            black_box(select_benchmarks_celf(
                &model,
                black_box(&statuses),
                36.0,
                &coverage,
                &BenchmarkId::ALL,
                0.05,
            ))
        });
    });
}

fn bench_coxtime(c: &mut Criterion) {
    let trace = generate_incident_trace(&IncidentTraceConfig {
        nodes: 60,
        ..IncidentTraceConfig::default()
    });
    let samples: Vec<SurvivalSample> = trace.survival_samples(96.0);
    let model = CoxTimeModel::fit(
        &samples,
        &CoxTimeConfig {
            epochs: 4,
            hidden: vec![16, 16],
            baseline_buckets: 32,
            ..Default::default()
        },
    )
    .expect("incident trace contains events");
    // One full training epoch (forward + backward + optimizer) over the
    // trace, exercising the chunk-parallel gradient path end to end.
    for threads in [1usize, 8] {
        let config = CoxTimeConfig {
            epochs: 1,
            hidden: vec![32, 32],
            baseline_buckets: 16,
            threads,
            ..Default::default()
        };
        c.bench_function(&format!("coxtime/fit-epoch/{threads}threads"), |bencher| {
            bencher.iter(|| black_box(CoxTimeModel::fit(black_box(&samples), &config)));
        });
    }
    // Warm-start refit: a trained trainer absorbs a small delta of new
    // intervals and runs one more epoch, vs re-fitting from scratch.
    let (base, delta) = samples.split_at(samples.len() - samples.len() / 16);
    let mut trainer = CoxTimeTrainer::new(CoxTimeConfig {
        epochs: 1,
        hidden: vec![16, 16],
        baseline_buckets: 32,
        ..Default::default()
    });
    trainer.ingest(base);
    trainer.train(2).expect("incident trace contains events");
    c.bench_function("coxtime/warmstart", |bencher| {
        bencher.iter_batched(
            || trainer.clone(),
            |mut t| black_box(t.refit(black_box(delta), 1).unwrap()),
            BatchSize::SmallInput,
        );
    });
    let status = samples[0].status;
    c.bench_function("coxtime/expected_tbni", |bencher| {
        bencher.iter(|| black_box(model.expected_tbni(black_box(&status))));
    });
    c.bench_function("coxtime/incident_probability", |bencher| {
        bencher.iter(|| black_box(model.incident_probability(black_box(&status), 36.0)));
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("scan/full/256nodes", |bencher| {
        bencher.iter(|| black_box(full_scan_rounds(black_box(256))));
    });
    let mut cfg = FatTreeConfig::figure3_testbed();
    cfg.nodes = 768;
    let tree = FatTree::build(cfg).unwrap();
    c.bench_function("scan/quick/768nodes", |bencher| {
        bencher.iter(|| black_box(quick_scan_rounds(black_box(&tree)).unwrap()));
    });
    let small = FatTree::build(FatTreeConfig::figure3_testbed()).unwrap();
    let pairs: Vec<(usize, usize)> = (0..12).map(|i| (i, i + 12)).collect();
    c.bench_function("congestion/24node-pairs", |bencher| {
        bencher.iter(|| black_box(concurrent_pair_bandwidths(&small, black_box(&pairs)).unwrap()));
    });
}

fn bench_executor(c: &mut Criterion) {
    use anubis_hwsim::{NodeId, NodeSim, NodeSpec};
    let set = [
        BenchmarkId::GpuGemmFp16,
        BenchmarkId::CpuLatency,
        BenchmarkId::IbHcaLoopback,
        BenchmarkId::GpuH2dBandwidth,
    ];
    let fleet = || -> Vec<NodeSim> {
        (0..16)
            .map(|i| NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 3))
            .collect()
    };
    let members: Vec<usize> = (0..16).collect();
    c.bench_function("executor/sequential/16nodes-4benchmarks", |bencher| {
        bencher.iter_batched(
            fleet,
            |mut nodes| black_box(run_set(&set, &mut nodes, &members, None).unwrap()),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("executor/parallel-8/16nodes-4benchmarks", |bencher| {
        bencher.iter_batched(
            fleet,
            |mut nodes| black_box(run_set_parallel(&set, &mut nodes, 8).unwrap()),
            BatchSize::SmallInput,
        );
    });
}

fn bench_json(c: &mut Criterion) {
    use anubis_metrics::json::to_json;
    let sample = series_sample(9, 1024);
    c.bench_function("json/serialize-1024-sample", |bencher| {
        bencher.iter(|| black_box(to_json(black_box(&sample)).unwrap()));
    });
}

fn bench_cluster_sim(c: &mut Criterion) {
    let config = ClusterSimConfig {
        nodes: 32,
        horizon_hours: 240.0,
        ..Default::default()
    };
    let trace = generate_allocation_trace(&AllocationConfig {
        duration_hours: 240.0,
        ..AllocationConfig::stressed(32)
    });
    c.bench_function("cluster-sim/absence/32nodes-10days", |bencher| {
        bencher.iter_batched(
            || (config.clone(), trace.clone()),
            |(cfg, t)| black_box(simulate(&cfg, &t, &Policy::Absence)),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_distance,
    bench_criteria,
    bench_similarity_matrix,
    bench_selection,
    bench_coxtime,
    bench_network,
    bench_executor,
    bench_json,
    bench_cluster_sim
);
criterion_main!(benches);

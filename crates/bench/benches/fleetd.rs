//! Criterion kernels for the fleetd service loop, enforced by
//! `cargo xtask perfgate` (`fleetd/tick`, `fleetd/merge`).

use anubis_fleetd::{Coordinator, FleetdConfig};
use anubis_metrics::EcdfSketch;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// A warmed-up coordinator: enough ticks that incidents, jobs, repairs
/// and an established criteria threshold are all in play, so the benched
/// tick is a steady-state one rather than a cold-fleet no-op.
fn warm_fleet() -> Coordinator {
    let cfg = FleetdConfig {
        nodes: 4096,
        shards: 8,
        ticks: 0,
        threads: 1, // single-threaded: measure the loop, not the pool
        ..FleetdConfig::default()
    };
    let mut fleet = Coordinator::new(cfg);
    for _ in 0..40 {
        fleet.step();
    }
    fleet
}

fn bench_tick(c: &mut Criterion) {
    let warm = warm_fleet();
    c.bench_function("fleetd/tick/4096nodes-8shards", |bencher| {
        bencher.iter_batched(
            || warm.clone(),
            |mut fleet| black_box(fleet.step()),
            BatchSize::SmallInput,
        );
    });
}

fn bench_merge(c: &mut Criterion) {
    // 16 shard sketches of ~4096 validation scores each — the shape of a
    // periodic criteria refresh on a large fleet.
    let sketches: Vec<EcdfSketch> = (0..16u64)
        .map(|s| {
            let mut sketch = EcdfSketch::new();
            for i in 0..4096u64 {
                let x = (i.wrapping_mul(2654435761).wrapping_add(s * 97)) % 10_000;
                sketch.append(90.0 + x as f64 / 1000.0);
            }
            sketch
        })
        .collect();
    c.bench_function("fleetd/merge/16x4096", |bencher| {
        bencher.iter(|| black_box(EcdfSketch::merged(black_box(&sketches))));
    });
}

criterion_group!(benches, bench_tick, bench_merge);
criterion_main!(benches);

//! Trace records and the stable JSONL export.
//!
//! [`Trace::to_jsonl`] is the machine-readable interface consumed by
//! `cargo xtask profile` and anything downstream; its line formats are a
//! schema (versioned by [`Trace::SCHEMA_VERSION`]) and covered by golden
//! tests below. Serialization is hand-rolled — no external dependency,
//! no `HashMap` iteration, `f64` rendered via `Display` (shortest
//! round-trip form) — so equal traces always produce equal bytes.
//!
//! Line formats, one JSON object per line:
//!
//! ```text
//! {"schema":1,"records":N,"dropped":D,"counters":C,"hists":H}   header
//! {"seq":0,"vt":1.5,"ev":"enter","target":"...","name":"..."}   record
//! {"counter":"...","target":"...","total":N}                    counter
//! {"hist":"...","target":"...","edges":[..],"counts":[..],"total":N}
//! ```

use std::fmt::Write as _;

/// What a ring-buffer record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Enter,
    /// A span closed.
    Exit,
    /// An instantaneous event.
    Point,
}

impl RecordKind {
    /// The `ev` field value in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Enter => "enter",
            RecordKind::Exit => "exit",
            RecordKind::Point => "point",
        }
    }
}

/// One ring-buffer record: a span boundary or an instantaneous event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Monotonic per-thread sequence number (restarts at 0 on drain).
    pub seq: u64,
    /// Virtual simulation time when the record was made.
    pub vt: f64,
    /// Record flavor.
    pub kind: RecordKind,
    /// Emitting module path (`module_path!()` at the instrumentation site).
    pub target: &'static str,
    /// Span or event name.
    pub name: &'static str,
}

/// Final value of one named counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterTotal {
    /// Emitting module path.
    pub target: &'static str,
    /// Counter name.
    pub name: &'static str,
    /// Saturating sum of all deltas.
    pub total: i64,
}

/// Snapshot of one named histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Emitting module path.
    pub target: &'static str,
    /// Histogram name.
    pub name: &'static str,
    /// Bucket edges (see [`crate::hist`]).
    pub edges: &'static [f64],
    /// Per-bucket counts; one longer than `edges`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
}

/// A drained per-thread trace: records in chronological order plus
/// aggregate counters and histograms (each sorted by `(target, name)`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Ring-buffer records, oldest first.
    pub records: Vec<Record>,
    /// Records overwritten because the ring was full.
    pub dropped: u64,
    /// Counter totals, sorted by `(target, name)`.
    pub counters: Vec<CounterTotal>,
    /// Histogram snapshots, sorted by `(target, name)`.
    pub hists: Vec<HistogramSnapshot>,
}

impl Trace {
    /// Version stamped into the header line; bump when a line format
    /// changes incompatibly.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Renders the trace as JSONL (header, records, counters, histograms;
    /// one JSON object per line, trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 80);
        self.append_jsonl(&mut out);
        out
    }

    /// Appends the JSONL rendering to a caller-owned (typically pooled)
    /// buffer — the allocation-free path, arena-clean under `cargo xtask
    /// analyze` pass A008: every field renders through `fmt::Write`
    /// directly into `out`.
    pub fn append_jsonl(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{{\"schema\":{},\"records\":{},\"dropped\":{},\"counters\":{},\"hists\":{}}}",
            Self::SCHEMA_VERSION,
            self.records.len(),
            self.dropped,
            self.counters.len(),
            self.hists.len(),
        );
        for r in &self.records {
            let _ = write!(out, "{{\"seq\":{},\"vt\":", r.seq);
            push_f64(out, r.vt);
            let _ = write!(out, ",\"ev\":\"{}\",\"target\":\"", r.kind.as_str());
            push_escaped(out, r.target);
            out.push_str("\",\"name\":\"");
            push_escaped(out, r.name);
            out.push_str("\"}\n");
        }
        for c in &self.counters {
            out.push_str("{\"counter\":\"");
            push_escaped(out, c.name);
            out.push_str("\",\"target\":\"");
            push_escaped(out, c.target);
            let _ = writeln!(out, "\",\"total\":{}}}", c.total);
        }
        for h in &self.hists {
            out.push_str("{\"hist\":\"");
            push_escaped(out, h.name);
            out.push_str("\",\"target\":\"");
            push_escaped(out, h.target);
            out.push_str("\",\"edges\":[");
            for (i, &edge) in h.edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, edge);
            }
            out.push_str("],\"counts\":[");
            for (i, count) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{count}");
            }
            let _ = writeln!(out, "],\"total\":{}}}", h.total);
        }
    }
}

/// Writes `v` as a JSON number. `Display` for `f64` is the shortest
/// round-trip decimal form, which is deterministic; non-finite values
/// (not representable in JSON) degrade to `0`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Minimal JSON string escaping. Targets and names are Rust identifiers
/// and path literals in practice, so this is almost always a pass-through.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            records: vec![
                Record {
                    seq: 0,
                    vt: 0.0,
                    kind: RecordKind::Enter,
                    target: "anubis_cluster::sim",
                    name: "cluster.simulate",
                },
                Record {
                    seq: 1,
                    vt: 1.5,
                    kind: RecordKind::Point,
                    target: "anubis_cluster::sim",
                    name: "sim.job_interrupted",
                },
                Record {
                    seq: 2,
                    vt: 24.0,
                    kind: RecordKind::Exit,
                    target: "anubis_cluster::sim",
                    name: "cluster.simulate",
                },
            ],
            dropped: 0,
            counters: vec![CounterTotal {
                target: "anubis_cluster::sim",
                name: "sim.incidents",
                total: 3,
            }],
            hists: vec![HistogramSnapshot {
                target: "anubis_validator::validator",
                name: "validator.duration_minutes",
                edges: &[1.0, 5.0],
                counts: vec![0, 2, 1],
                total: 3,
            }],
        }
    }

    /// Golden test: the exact bytes of every line format. A change here is
    /// a schema change — bump [`Trace::SCHEMA_VERSION`] and update the
    /// profile reader in xtask.
    #[test]
    fn jsonl_schema_is_stable() {
        let expected = concat!(
            "{\"schema\":1,\"records\":3,\"dropped\":0,\"counters\":1,\"hists\":1}\n",
            "{\"seq\":0,\"vt\":0,\"ev\":\"enter\",\"target\":\"anubis_cluster::sim\",\"name\":\"cluster.simulate\"}\n",
            "{\"seq\":1,\"vt\":1.5,\"ev\":\"point\",\"target\":\"anubis_cluster::sim\",\"name\":\"sim.job_interrupted\"}\n",
            "{\"seq\":2,\"vt\":24,\"ev\":\"exit\",\"target\":\"anubis_cluster::sim\",\"name\":\"cluster.simulate\"}\n",
            "{\"counter\":\"sim.incidents\",\"target\":\"anubis_cluster::sim\",\"total\":3}\n",
            "{\"hist\":\"validator.duration_minutes\",\"target\":\"anubis_validator::validator\",\"edges\":[1,5],\"counts\":[0,2,1],\"total\":3}\n",
        );
        assert_eq!(sample_trace().to_jsonl(), expected);
    }

    #[test]
    fn equal_traces_serialize_to_equal_bytes() {
        assert_eq!(sample_trace().to_jsonl(), sample_trace().to_jsonl());
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn non_finite_times_degrade_to_zero() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "0");
    }
}

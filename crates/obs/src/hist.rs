//! Fixed-bucket histograms.
//!
//! Bucket edges are a `&'static [f64]` chosen at the instrumentation
//! site, so recording never allocates and two runs always agree on the
//! bucket layout. With `n` edges there are `n + 1` buckets: bucket `i`
//! counts values `v <= edges[i]` (first match wins), and the final bucket
//! is the overflow for values above every edge. Non-finite values land in
//! the overflow bucket, deterministically.

/// A fixed-bucket histogram (see the module docs for bucket semantics).
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: &'static [f64],
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given ascending bucket edges.
    pub fn new(edges: &'static [f64]) -> Self {
        Self {
            edges,
            counts: vec![0; edges.len() + 1],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let mut idx = self.edges.len();
        for (i, &edge) in self.edges.iter().enumerate() {
            if value <= edge {
                idx = i;
                break;
            }
        }
        if let Some(count) = self.counts.get_mut(idx) {
            *count += 1;
        }
        self.total += 1;
    }

    /// The bucket edges this histogram was created with.
    pub fn edges(&self) -> &'static [f64] {
        self.edges
    }

    /// Per-bucket counts; `counts().len() == edges().len() + 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &[f64] = &[1.0, 5.0, 15.0];

    #[test]
    fn values_land_in_the_first_matching_bucket() {
        let mut h = Histogram::new(EDGES);
        for v in [0.0, 1.0, 1.5, 5.0, 14.9, 15.0, 15.1, 1e9] {
            h.record(v);
        }
        // <=1: {0.0, 1.0}; <=5: {1.5, 5.0}; <=15: {14.9, 15.0}; over: rest.
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn edge_values_are_inclusive() {
        let mut h = Histogram::new(EDGES);
        h.record(1.0);
        h.record(5.0);
        h.record(15.0);
        assert_eq!(h.counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn non_finite_values_overflow() {
        let mut h = Histogram::new(EDGES);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY); // <= every edge: first bucket
        assert_eq!(h.counts(), &[1, 0, 0, 2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn empty_edges_mean_a_single_bucket() {
        let mut h = Histogram::new(&[]);
        h.record(42.0);
        assert_eq!(h.counts(), &[1]);
    }
}

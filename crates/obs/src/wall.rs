//! Wall-clock timing, feature-gated behind `wallclock`.
//!
//! This module is the workspace's **only** sanctioned `std::time` facade:
//! the textual determinism lint allowlists it, and the xtask A004 pass
//! treats this crate as the timing facade while flagging direct
//! `Instant`/`SystemTime` use anywhere else. Wall-clock readings are for
//! operator-facing progress output only (e.g. the repro binary's
//! per-experiment runtime header); they must never flow into results or
//! trace records — traces carry virtual time exclusively.

use std::time::Instant;

/// A started wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current wall-clock instant.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_non_negative_and_increases() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}

//! Deterministic observability for the anubis workspace.
//!
//! Every simulation in this workspace promises bit-for-bit reproducible
//! output, so the observability tier must never read a clock on a result
//! path. This crate records **virtual simulation time** — a value the
//! instrumented code sets explicitly via [`set_time`] — together with a
//! monotonic per-thread sequence number, into a preallocated per-thread
//! ring buffer. Recording is a pair of thread-local writes; when tracing
//! is disabled (the default) every entry point is a cheap early return.
//!
//! # Determinism contract
//!
//! * Records carry `(seq, vt)` only; wall-clock time never appears in a
//!   trace. Wall-clock timing for operator-facing progress output lives
//!   behind the `wallclock` cargo feature in [`wall`] and is the single
//!   sanctioned `Instant` facade (xtask pass A004 exempts this crate and
//!   flags direct `Instant`/`SystemTime` use everywhere else).
//! * State is thread-local and recording must be enabled per thread, so
//!   worker threads spawned by `anubis-parallel` never record. The
//!   executor's inline (single-worker) path additionally holds a
//!   [`suppress`] guard, making traces *byte-identical at any
//!   `ANUBIS_THREADS` value by construction*: work routed through the
//!   executor is invisible to the trace no matter where it ran.
//! * [`Trace::to_jsonl`](trace::Trace::to_jsonl) renders counters and
//!   histograms in `BTreeMap` order and records in ring order, so equal
//!   traces serialize to equal bytes.
//!
//! # Example
//!
//! ```
//! anubis_obs::enable_with_capacity(64);
//! anubis_obs::set_time(12.5);
//! {
//!     let _span = anubis_obs::span!("demo.step");
//!     anubis_obs::counter!("demo.items", 3);
//! }
//! let trace = anubis_obs::drain();
//! assert_eq!(trace.records.len(), 2); // enter + exit
//! assert_eq!(trace.counters[0].total, 3);
//! anubis_obs::disable();
//! ```

pub mod hist;
pub mod trace;
#[cfg(feature = "wallclock")]
pub mod wall;

pub use hist::Histogram;
pub use trace::{CounterTotal, HistogramSnapshot, Record, RecordKind, Trace};

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Default ring-buffer capacity (records) used by [`enable`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Per-thread recording state. All fields are reset by
/// [`enable_with_capacity`]; the ring buffer is preallocated there so the
/// record path never allocates.
struct Recorder {
    enabled: bool,
    suppress_depth: u32,
    seq: u64,
    vt: f64,
    capacity: usize,
    buf: Vec<Record>,
    /// Next overwrite position once the ring is full.
    head: usize,
    dropped: u64,
    counters: BTreeMap<(&'static str, &'static str), i64>,
    hists: BTreeMap<(&'static str, &'static str), Histogram>,
}

impl Recorder {
    fn new() -> Self {
        Self {
            enabled: false,
            suppress_depth: 0,
            seq: 0,
            vt: 0.0,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn recording(&self) -> bool {
        self.enabled && self.suppress_depth == 0
    }

    fn push(&mut self, kind: RecordKind, target: &'static str, name: &'static str) {
        let record = Record {
            seq: self.seq,
            vt: self.vt,
            kind,
            target,
            name,
        };
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            // Ring full: overwrite the oldest record and account for it.
            *slot = record;
            self.head += 1;
            if self.head >= self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Trace {
        // Chronological order: the ring's oldest record sits at `head`
        // once the buffer has wrapped.
        let mut records = Vec::with_capacity(self.buf.len());
        records.extend(self.buf.iter().skip(self.head).copied());
        records.extend(self.buf.iter().take(self.head).copied());
        let counters = self
            .counters
            .iter()
            .map(|(&(target, name), &total)| CounterTotal {
                target,
                name,
                total,
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(&(target, name), h)| HistogramSnapshot {
                target,
                name,
                edges: h.edges(),
                counts: h.counts().to_vec(),
                total: h.total(),
            })
            .collect();
        let trace = Trace {
            records,
            dropped: self.dropped,
            counters,
            hists,
        };
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
        self.seq = 0;
        self.counters.clear();
        self.hists.clear();
        trace
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
}

/// Runs `f` against this thread's recorder. Returns `None` (and does
/// nothing) if the thread-local is unavailable (thread teardown) or
/// already borrowed (reentrant call from a `Drop`); recording is a
/// best-effort side channel and must never panic.
fn with<R>(f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
    RECORDER
        .try_with(|cell| cell.try_borrow_mut().ok().map(|mut r| f(&mut r)))
        .ok()
        .flatten()
}

/// Enables recording on the current thread with [`DEFAULT_CAPACITY`].
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Enables recording on the current thread, resetting all prior state and
/// preallocating a ring buffer of `capacity` records (clamped to ≥ 1).
/// Virtual time restarts at `0.0` and sequence numbers at `0`.
pub fn enable_with_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    let _ = with(|r| {
        *r = Recorder::new();
        r.enabled = true;
        r.capacity = capacity;
        r.buf = Vec::with_capacity(capacity);
    });
}

/// Disables recording on the current thread and releases its buffers.
pub fn disable() {
    let _ = with(|r| *r = Recorder::new());
}

/// Whether recording is enabled (and not suppressed) on this thread.
pub fn is_enabled() -> bool {
    with(|r| r.recording()).unwrap_or(false)
}

/// Sets the current virtual time stamped onto subsequent records.
/// Instrumented event loops call this with their simulation clock.
pub fn set_time(vt: f64) {
    let _ = with(|r| r.vt = vt);
}

/// Advances the current virtual time by `dt`.
pub fn advance_time(dt: f64) {
    let _ = with(|r| r.vt += dt);
}

/// The current virtual time (0.0 when recording was never enabled).
pub fn time() -> f64 {
    with(|r| r.vt).unwrap_or(0.0)
}

/// RAII guard suppressing recording on this thread while alive.
///
/// Used by `anubis-parallel` on its inline execution path so that work
/// which *may* run on a worker thread (where recording is never enabled)
/// is equally invisible when it happens to run on the caller's thread —
/// the trace cannot depend on the resolved thread count.
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        let _ = with(|r| r.suppress_depth = r.suppress_depth.saturating_sub(1));
    }
}

/// Suppresses recording on this thread until the returned guard drops.
/// Nests; spans opened *before* suppression still record their exit.
#[must_use = "suppression ends when the guard drops"]
pub fn suppress() -> SuppressGuard {
    let _ = with(|r| r.suppress_depth = r.suppress_depth.saturating_add(1));
    SuppressGuard(())
}

/// RAII span guard: records `Exit` on drop iff the matching `Enter` was
/// recorded, keeping traces balanced across suppression boundaries.
#[must_use = "a span ends when its guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    armed: bool,
    target: &'static str,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            // Forced: the exit pairs an already-recorded enter even if
            // suppression began while the span was open.
            let _ = with(|r| {
                if r.enabled {
                    r.push(RecordKind::Exit, self.target, self.name);
                }
            });
        }
    }
}

/// Opens a span; prefer the [`span!`] macro, which fills `target` with the
/// caller's module path.
pub fn span_scope(target: &'static str, name: &'static str) -> SpanGuard {
    let armed = with(|r| {
        if r.recording() {
            r.push(RecordKind::Enter, target, name);
            true
        } else {
            false
        }
    })
    .unwrap_or(false);
    SpanGuard {
        armed,
        target,
        name,
    }
}

/// Records an instantaneous event; prefer the [`event!`] macro.
pub fn point(target: &'static str, name: &'static str) {
    let _ = with(|r| {
        if r.recording() {
            r.push(RecordKind::Point, target, name);
        }
    });
}

/// Adds `delta` to a named counter; prefer the [`counter!`] macro.
/// Counters are aggregates: they appear once in the drained trace, not in
/// the record ring.
pub fn add(target: &'static str, name: &'static str, delta: i64) {
    let _ = with(|r| {
        if r.recording() {
            let total = r.counters.entry((target, name)).or_insert(0);
            *total = total.saturating_add(delta);
        }
    });
}

/// Records `value` into a fixed-bucket histogram with the given bucket
/// `edges` (see [`Histogram`]); prefer the [`hist!`] macro. The first
/// `observe` for a name fixes its edges; later calls reuse them.
pub fn observe(target: &'static str, name: &'static str, value: f64, edges: &'static [f64]) {
    let _ = with(|r| {
        if r.recording() {
            r.hists
                .entry((target, name))
                .or_insert_with(|| Histogram::new(edges))
                .record(value);
        }
    });
}

/// Drains this thread's trace: returns all buffered records (in
/// chronological ring order), counter totals and histogram snapshots, then
/// clears them. Recording stays enabled; virtual time is preserved.
pub fn drain() -> Trace {
    with(Recorder::drain).unwrap_or_default()
}

/// Opens a span named `$name` with the caller's `module_path!()` as the
/// target. Returns a [`SpanGuard`]; bind it (`let _span = ...`) so the
/// span covers the intended scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_scope(::core::module_path!(), $name)
    };
}

/// Records an instantaneous event named `$name` with the caller's
/// `module_path!()` as the target.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::point(::core::module_path!(), $name)
    };
}

/// Adds `$delta` (an `i64`) to the counter named `$name` under the
/// caller's `module_path!()`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::add(::core::module_path!(), $name, $delta)
    };
}

/// Records `$value` (an `f64`) into the fixed-bucket histogram named
/// `$name` with bucket `$edges` (a `&'static [f64]`), under the caller's
/// `module_path!()`.
#[macro_export]
macro_rules! hist {
    ($name:expr, $value:expr, $edges:expr) => {
        $crate::observe(::core::module_path!(), $name, $value, $edges)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        disable();
        set_time(5.0);
        let _span = span!("noop");
        counter!("noop.count", 1);
        let trace = drain();
        assert!(trace.records.is_empty());
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn spans_counters_and_events_round_trip() {
        enable_with_capacity(16);
        set_time(1.0);
        {
            let _span = span!("outer");
            advance_time(0.5);
            event!("tick");
            counter!("ticks", 2);
            counter!("ticks", 3);
        }
        let trace = drain();
        disable();
        let kinds: Vec<RecordKind> = trace.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![RecordKind::Enter, RecordKind::Point, RecordKind::Exit]
        );
        assert_eq!(trace.records[0].vt, 1.0);
        assert_eq!(trace.records[2].vt, 1.5);
        assert_eq!(trace.records[0].target, module_path!());
        assert_eq!(trace.counters.len(), 1);
        assert_eq!(trace.counters[0].name, "ticks");
        assert_eq!(trace.counters[0].total, 5);
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        enable_with_capacity(4);
        for i in 0..10 {
            set_time(f64::from(i));
            event!("tick");
        }
        let trace = drain();
        disable();
        assert_eq!(trace.records.len(), 4);
        assert_eq!(trace.dropped, 6);
        // The survivors are the newest four, in chronological order.
        let seqs: Vec<u64> = trace.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(trace.records[0].vt, 6.0);
        assert_eq!(trace.records[3].vt, 9.0);
    }

    #[test]
    fn suppression_nests_and_balances_open_spans() {
        enable_with_capacity(16);
        let span_outer = span!("outer");
        {
            let _quiet = suppress();
            let _deeper = suppress();
            let _span_inner = span!("inner"); // not recorded
            event!("hidden");
            counter!("hidden.count", 1);
        }
        event!("visible");
        drop(span_outer); // records its exit after suppression ended
        let trace = drain();
        disable();
        let names: Vec<&str> = trace.records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["outer", "visible", "outer"]);
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn exit_is_forced_for_spans_opened_before_suppression() {
        enable_with_capacity(16);
        let span = span!("crossing");
        let _quiet = suppress();
        drop(span); // suppressed scope, but the enter was recorded
        let trace = drain();
        disable();
        let kinds: Vec<RecordKind> = trace.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![RecordKind::Enter, RecordKind::Exit]);
    }

    #[test]
    fn drain_resets_but_keeps_recording_enabled() {
        enable_with_capacity(8);
        event!("first");
        let first = drain();
        assert_eq!(first.records.len(), 1);
        event!("second");
        let second = drain();
        disable();
        assert_eq!(second.records.len(), 1);
        assert_eq!(second.records[0].seq, 0, "drain restarts sequence numbers");
        assert_eq!(second.records[0].name, "second");
    }

    #[test]
    fn histograms_aggregate_per_name() {
        enable_with_capacity(8);
        const EDGES: &[f64] = &[1.0, 10.0];
        hist!("latency", 0.5, EDGES);
        hist!("latency", 5.0, EDGES);
        hist!("latency", 50.0, EDGES);
        let trace = drain();
        disable();
        assert_eq!(trace.hists.len(), 1);
        assert_eq!(trace.hists[0].counts, vec![1, 1, 1]);
        assert_eq!(trace.hists[0].total, 3);
    }
}

//! Reset-per-tick scratch allocator for the simulation hot loops.
//!
//! The `cargo xtask analyze` pass A008 proves which allocation sites in
//! the hot paths are *scope-local temporaries* — buffers that are filled,
//! read, and dropped inside one call, never returned, stored, or captured.
//! This crate is where those buffers go instead of the global allocator:
//! an [`Arena<B>`] keeps a pool of reusable buffers, [`Arena::take`] hands
//! out an **empty** one (recycled if the pool has one, freshly defaulted
//! otherwise), and [`Arena::give`] (or a dropped [`Scope`] guard) clears
//! it and returns it to the pool. After a short warm-up every take is a
//! pool hit and the steady state performs zero heap allocation.
//!
//! # Determinism
//!
//! Recycling is invisible to results by construction: a taken buffer is
//! always empty, so the only thing reuse changes is *capacity* — never
//! contents. Code converted to the arena produces byte-identical output
//! to its allocating form at any `ANUBIS_THREADS` / `ANUBIS_INCREMENTAL`
//! setting (the arena is single-threaded; parallel workers own one arena
//! each, mirroring the `anubis-parallel` chunk contract).
//!
//! # Discipline
//!
//! Functions converted to arena scratch are registered in the analyzer's
//! `arena_clean_entries`; any direct allocation reappearing in them is an
//! *enforced* A008 finding the baseline never absorbs. Calls into this
//! crate are sanctioned — pooled growth inside the arena does not count
//! against the caller.
//!
//! [`Arena::reset`] marks a tick boundary: it publishes per-epoch debug
//! stats (takes, pool misses, high-water live count) through
//! `anubis-obs` counters in debug builds and starts a new epoch. All
//! scopes must have ended by then; the live count going into a reset is
//! observable via [`Arena::live`].
//!
//! # Examples
//!
//! ```
//! use anubis_arena::Arena;
//!
//! let arena: Arena<Vec<u32>> = Arena::new();
//! {
//!     let mut scratch = arena.scope();
//!     scratch.extend([1, 2, 3]);
//!     assert_eq!(scratch.len(), 3);
//! } // scope drops: buffer is cleared and pooled
//! let reused = arena.take();
//! assert!(reused.is_empty());
//! assert!(reused.capacity() >= 3, "capacity survives the round-trip");
//! arena.give(reused);
//! ```

use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};

/// A poolable scratch buffer: constructible empty, clearable in place
/// (keeping its backing storage), and able to report that storage for
/// high-water statistics.
pub trait Scratch: Default {
    /// Empties the buffer without releasing its backing storage.
    fn reset(&mut self);
    /// Backing storage currently held, in elements (or bytes for
    /// [`String`]). Only used for statistics.
    fn capacity_units(&self) -> usize;
}

impl<T> Scratch for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
    fn capacity_units(&self) -> usize {
        self.capacity()
    }
}

impl Scratch for String {
    fn reset(&mut self) {
        self.clear();
    }
    fn capacity_units(&self) -> usize {
        self.capacity()
    }
}

/// A pool of reusable scratch buffers of one type.
///
/// Interior mutability (the pool is a `RefCell`, counters are `Cell`s)
/// lets several [`Scope`] guards from the same arena overlap; the type is
/// deliberately `!Sync` — share arenas per thread, never across threads.
#[derive(Debug, Default)]
pub struct Arena<B: Scratch> {
    free: RefCell<Vec<B>>,
    live: Cell<usize>,
    high_water: Cell<usize>,
    takes: Cell<i64>,
    misses: Cell<i64>,
}

impl<B: Scratch> Arena<B> {
    /// An empty arena; the pool fills as buffers are given back.
    #[must_use]
    pub fn new() -> Self {
        Self {
            free: RefCell::new(Vec::new()),
            live: Cell::new(0),
            high_water: Cell::new(0),
            takes: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// An arena pre-warmed with `n` default (empty) buffers, so even the
    /// first tick takes pool hits.
    #[must_use]
    pub fn with_pool(n: usize) -> Self {
        let arena = Self::new();
        if let Ok(mut free) = arena.free.try_borrow_mut() {
            free.resize_with(n, B::default);
        }
        arena
    }

    /// Hands out an empty buffer: recycled from the pool when one is
    /// available, freshly defaulted otherwise (a *pool miss*).
    pub fn take(&self) -> B {
        let recycled = self.free.try_borrow_mut().ok().and_then(|mut f| f.pop());
        let buf = match recycled {
            Some(buf) => buf,
            None => {
                self.misses.set(self.misses.get().saturating_add(1));
                B::default()
            }
        };
        self.takes.set(self.takes.get().saturating_add(1));
        let live = self.live.get() + 1;
        self.live.set(live);
        if live > self.high_water.get() {
            self.high_water.set(live);
        }
        buf
    }

    /// Clears `buf` and returns it to the pool.
    pub fn give(&self, mut buf: B) {
        buf.reset();
        self.live.set(self.live.get().saturating_sub(1));
        if let Ok(mut free) = self.free.try_borrow_mut() {
            free.push(buf);
        }
    }

    /// Takes a buffer wrapped in an RAII guard that gives it back on
    /// drop. Guards from the same arena may overlap.
    pub fn scope(&self) -> Scope<'_, B> {
        Scope {
            arena: self,
            buf: self.take(),
        }
    }

    /// Buffers currently handed out (taken and not yet given back).
    #[must_use]
    pub fn live(&self) -> usize {
        self.live.get()
    }

    /// Buffers currently resting in the pool.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.try_borrow().map_or(0, |f| f.len())
    }

    /// Highest simultaneous live count this epoch.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water.get()
    }

    /// Takes this epoch that missed the pool and hit the allocator.
    #[must_use]
    pub fn misses(&self) -> i64 {
        self.misses.get()
    }

    /// Total backing storage resting in the pool, in
    /// [`Scratch::capacity_units`].
    #[must_use]
    pub fn pooled_capacity_units(&self) -> usize {
        self.free
            .try_borrow()
            .map_or(0, |f| f.iter().map(Scratch::capacity_units).sum())
    }

    /// Tick boundary: publishes this epoch's debug counters (debug builds
    /// only — release and result bytes are unaffected) and starts a new
    /// epoch. Call once per simulation tick, after all scopes have ended.
    pub fn reset(&self) {
        #[cfg(debug_assertions)]
        {
            anubis_obs::counter!("arena.takes", self.takes.get());
            anubis_obs::counter!("arena.misses", self.misses.get());
            let hw = i64::try_from(self.high_water.get()).unwrap_or(i64::MAX);
            anubis_obs::counter!("arena.high_water_sum", hw);
        }
        self.takes.set(0);
        self.misses.set(0);
        self.high_water.set(self.live.get());
    }
}

/// RAII guard for one taken buffer: derefs to the buffer and gives it
/// back (cleared) to its [`Arena`] on drop.
#[derive(Debug)]
pub struct Scope<'a, B: Scratch> {
    arena: &'a Arena<B>,
    buf: B,
}

impl<B: Scratch> Deref for Scope<'_, B> {
    type Target = B;
    fn deref(&self) -> &B {
        &self.buf
    }
}

impl<B: Scratch> DerefMut for Scope<'_, B> {
    fn deref_mut(&mut self) -> &mut B {
        &mut self.buf
    }
}

impl<B: Scratch> Drop for Scope<'_, B> {
    fn drop(&mut self) {
        self.arena.give(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_always_empty_and_recycles_capacity() {
        let arena: Arena<Vec<u64>> = Arena::new();
        let mut a = arena.take();
        a.extend(0..100);
        let cap = a.capacity();
        arena.give(a);
        let b = arena.take();
        assert!(b.is_empty(), "recycled buffers must come back empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round-trip");
        arena.give(b);
    }

    #[test]
    fn pool_miss_then_hit_accounting() {
        let arena: Arena<String> = Arena::new();
        let s = arena.take();
        assert_eq!(arena.misses(), 1, "empty pool: first take misses");
        arena.give(s);
        let s = arena.take();
        assert_eq!(arena.misses(), 1, "second take is a pool hit");
        arena.give(s);
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn with_pool_prewarms() {
        let arena: Arena<Vec<u8>> = Arena::with_pool(3);
        assert_eq!(arena.pooled(), 3);
        let a = arena.take();
        let b = arena.take();
        let c = arena.take();
        assert_eq!(arena.misses(), 0, "all three takes hit the pool");
        assert_eq!(arena.live(), 3);
        assert_eq!(arena.high_water(), 3);
        arena.give(a);
        arena.give(b);
        arena.give(c);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn overlapping_scopes_share_the_arena() {
        let arena: Arena<Vec<u32>> = Arena::new();
        {
            let mut xs = arena.scope();
            let mut ys = arena.scope();
            xs.push(1);
            ys.push(2);
            assert_eq!(arena.live(), 2);
            assert_eq!((xs[0], ys[0]), (1, 2));
        }
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn reset_starts_a_new_epoch() {
        let arena: Arena<Vec<u32>> = Arena::new();
        let a = arena.take();
        arena.give(a);
        assert_eq!(arena.high_water(), 1);
        arena.reset();
        assert_eq!(arena.high_water(), 0, "high-water restarts at live");
        assert_eq!(arena.misses(), 0);
    }

    #[test]
    fn string_scratch_capacity_units() {
        let arena: Arena<String> = Arena::new();
        let mut s = arena.take();
        s.push_str("hello world");
        let cap = s.capacity();
        arena.give(s);
        assert_eq!(arena.pooled_capacity_units(), cap);
    }
}

//! Measurement-noise models.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Multiplicative log-normal measurement noise.
///
/// Real benchmark measurements fluctuate run to run; the paper quotes
/// MLPerf's ±2.5% (stable vision) and ±5% (higher-variance) classes and
/// builds the whole criteria machinery around coping with this variance.
/// `NoiseModel` draws factors `exp(σ·z)` with `z ~ N(0, 1)` so measurements
/// stay positive and the relative spread is `≈ σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Log-scale standard deviation (≈ relative standard deviation).
    pub sigma: f64,
}

impl NoiseModel {
    /// A tight micro-benchmark noise profile (±0.3%).
    pub const MICRO: Self = Self { sigma: 0.003 };
    /// A stable end-to-end training-step profile (±0.6%).
    pub const TRAINING_STEP: Self = Self { sigma: 0.006 };
    /// A higher-variance profile for network benchmarks (±2%).
    pub const NETWORK: Self = Self { sigma: 0.02 };

    /// Creates a model with the given relative standard deviation.
    pub fn new(sigma: f64) -> Self {
        Self {
            sigma: sigma.max(0.0),
        }
    }

    /// Draws one multiplicative noise factor.
    pub fn factor(&self, rng: &mut ChaCha8Rng) -> f64 {
        (self.sigma * standard_normal(rng)).exp()
    }

    /// Applies noise to a nominal value.
    pub fn apply(&self, nominal: f64, rng: &mut ChaCha8Rng) -> f64 {
        nominal * self.factor(rng)
    }
}

/// Draws a standard normal via the Box–Muller transform.
///
/// `rand` core ships no Gaussian sampler (that lives in `rand_distr`, which
/// is outside the sanctioned dependency set), so we implement the classic
/// two-uniform transform here.
pub fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from a log-normal with median `exp(mu)`.
pub fn log_normal(rng: &mut ChaCha8Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Draws from an exponential distribution with the given rate.
pub fn exponential(rng: &mut ChaCha8Rng, rate: f64) -> f64 {
    debug_assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Draws from a Weibull distribution with shape `k` and scale `lambda`.
///
/// `k > 1` gives an increasing hazard (wear-out), the regime the paper's
/// degrading nodes live in.
pub fn weibull(rng: &mut ChaCha8Rng, shape: f64, scale: f64) -> f64 {
    debug_assert!(shape > 0.0 && scale > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>();
    scale * (-u.ln()).powf(1.0 / shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaCha8Rng {
        crate::testutil::seeded_rng(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng();
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn noise_factor_stays_near_one() {
        let mut rng = rng();
        let model = NoiseModel::new(0.01);
        for _ in 0..1000 {
            let f = model.factor(&mut rng);
            assert!(f > 0.9 && f < 1.1, "1% noise factor out of range: {f}");
        }
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = rng();
        let model = NoiseModel::new(0.0);
        assert_eq!(model.apply(123.0, &mut rng), 123.0);
    }

    #[test]
    fn negative_sigma_clamped() {
        assert_eq!(NoiseModel::new(-0.5).sigma, 0.0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = rng();
        let rate = 0.25;
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut rng = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| weibull(&mut rng, 1.0, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.4, "mean {mean}");
    }

    #[test]
    fn weibull_wearout_concentrates() {
        let mut rng = rng();
        let n = 10_000;
        let draws: Vec<f64> = (0..n).map(|_| weibull(&mut rng, 4.0, 100.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let cv = {
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
            var.sqrt() / mean
        };
        // Shape 4 Weibull has CV ≈ 0.28, far tighter than exponential's 1.
        assert!(cv < 0.4, "cv {cv}");
    }
}

//! Hardware SKU specifications.

/// Numeric precision of a compute kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit IEEE floating point.
    Fp32,
    /// 16-bit floating point (tensor-core path).
    Fp16,
}

/// GPU generation, used for SKU presets and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// NVIDIA A100 80 GB SXM.
    A100,
    /// NVIDIA H100 80 GB SXM.
    H100,
    /// AMD Instinct MI250X 120 GB.
    Mi250x,
}

/// Per-GPU hardware parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Peak dense FP32 throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// Peak FP16 tensor throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_bandwidth_gbps: f64,
    /// HBM capacity in GB.
    pub hbm_capacity_gb: f64,
    /// Number of HBM banks with spare rows (row-remapping domains).
    pub hbm_banks: u32,
    /// Spare rows per bank available for row remapping.
    pub spare_rows_per_bank: u32,
    /// Aggregate per-GPU scale-up fabric (NVLink/xGMI) bandwidth in GB/s.
    pub nvlink_bandwidth_gbps: f64,
    /// Number of scale-up fabric links per GPU.
    pub nvlink_links: u32,
    /// Kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
    /// L2 cache size in MB (the shared resource behind the overlap defect).
    pub l2_cache_mb: f64,
}

/// Host CPU/memory parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Physical core count.
    pub cores: u32,
    /// Idle DRAM load latency in nanoseconds.
    pub memory_latency_ns: f64,
    /// DRAM bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
}

/// Local NVMe parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    /// Sequential read bandwidth in MB/s.
    pub seq_read_mbps: f64,
    /// Sequential write bandwidth in MB/s.
    pub seq_write_mbps: f64,
    /// 4 KiB random read IOPS.
    pub rand_read_iops: f64,
    /// 4 KiB random write IOPS.
    pub rand_write_iops: f64,
}

/// A full node (VM) specification.
///
/// # Examples
///
/// ```
/// use anubis_hwsim::NodeSpec;
///
/// let spec = NodeSpec::a100_8x();
/// assert_eq!(spec.gpus, 8);
/// assert_eq!(spec.nics, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable SKU name.
    pub name: &'static str,
    /// GPU generation.
    pub generation: GpuGeneration,
    /// GPUs per node.
    pub gpus: usize,
    /// Per-GPU parameters.
    pub gpu: GpuSpec,
    /// Host parameters.
    pub cpu: CpuSpec,
    /// PCIe bandwidth per GPU in GB/s (host↔device path).
    pub pcie_bandwidth_gbps: f64,
    /// InfiniBand HCAs per node.
    pub nics: usize,
    /// Per-HCA bandwidth in Gb/s (line rate).
    pub nic_bandwidth_gbps: f64,
    /// Local disk parameters.
    pub disk: DiskSpec,
}

impl NodeSpec {
    /// Azure-style ND A100 v4 node: 8× A100 80 GB, 8× HDR 200 Gb/s.
    pub fn a100_8x() -> Self {
        Self {
            name: "ND96amsr_A100",
            generation: GpuGeneration::A100,
            gpus: 8,
            gpu: GpuSpec {
                fp32_tflops: 19.5,
                fp16_tflops: 312.0,
                hbm_bandwidth_gbps: 2039.0,
                hbm_capacity_gb: 80.0,
                hbm_banks: 512,
                spare_rows_per_bank: 8,
                nvlink_bandwidth_gbps: 600.0,
                nvlink_links: 12,
                kernel_launch_us: 4.0,
                l2_cache_mb: 40.0,
            },
            cpu: CpuSpec {
                cores: 96,
                memory_latency_ns: 95.0,
                memory_bandwidth_gbps: 380.0,
            },
            pcie_bandwidth_gbps: 26.0,
            nics: 8,
            nic_bandwidth_gbps: 200.0,
            disk: DiskSpec {
                seq_read_mbps: 3200.0,
                seq_write_mbps: 2600.0,
                rand_read_iops: 550_000.0,
                rand_write_iops: 420_000.0,
            },
        }
    }

    /// H100 v5-style node: 8× H100 80 GB SXM, 8× NDR 400 Gb/s.
    pub fn h100_8x() -> Self {
        Self {
            name: "ND96isr_H100",
            generation: GpuGeneration::H100,
            gpus: 8,
            gpu: GpuSpec {
                fp32_tflops: 67.0,
                fp16_tflops: 989.0,
                hbm_bandwidth_gbps: 3350.0,
                hbm_capacity_gb: 80.0,
                hbm_banks: 640,
                spare_rows_per_bank: 8,
                nvlink_bandwidth_gbps: 900.0,
                nvlink_links: 18,
                kernel_launch_us: 3.5,
                l2_cache_mb: 50.0,
            },
            cpu: CpuSpec {
                cores: 96,
                memory_latency_ns: 90.0,
                memory_bandwidth_gbps: 460.0,
            },
            pcie_bandwidth_gbps: 55.0,
            nics: 8,
            nic_bandwidth_gbps: 400.0,
            disk: DiskSpec {
                seq_read_mbps: 7000.0,
                seq_write_mbps: 5200.0,
                rand_read_iops: 1_000_000.0,
                rand_write_iops: 800_000.0,
            },
        }
    }

    /// MI250X testbed node: 8× MI250X 120 GB, 8× HDR 200 Gb/s.
    pub fn mi250x_8x() -> Self {
        Self {
            name: "ND96_MI250X",
            generation: GpuGeneration::Mi250x,
            gpus: 8,
            gpu: GpuSpec {
                fp32_tflops: 47.9,
                fp16_tflops: 383.0,
                hbm_bandwidth_gbps: 3276.0,
                hbm_capacity_gb: 128.0,
                hbm_banks: 512,
                spare_rows_per_bank: 8,
                nvlink_bandwidth_gbps: 500.0,
                nvlink_links: 8,
                kernel_launch_us: 4.5,
                l2_cache_mb: 16.0,
            },
            cpu: CpuSpec {
                cores: 96,
                memory_latency_ns: 100.0,
                memory_bandwidth_gbps: 400.0,
            },
            pcie_bandwidth_gbps: 26.0,
            nics: 8,
            nic_bandwidth_gbps: 200.0,
            disk: DiskSpec {
                seq_read_mbps: 3200.0,
                seq_write_mbps: 2600.0,
                rand_read_iops: 550_000.0,
                rand_write_iops: 420_000.0,
            },
        }
    }

    /// Peak TFLOPS per GPU for a precision.
    pub fn peak_tflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.gpu.fp32_tflops,
            Precision::Fp16 => self.gpu.fp16_tflops,
        }
    }

    /// Aggregate node FP16 TFLOPS (all GPUs).
    pub fn node_peak_tflops(&self, precision: Precision) -> f64 {
        self.peak_tflops(precision) * self.gpus as f64
    }

    /// Aggregate inter-node network bandwidth in GB/s (all HCAs, line rate
    /// converted from Gb/s).
    pub fn node_network_gbytes_per_s(&self) -> f64 {
        self.nics as f64 * self.nic_bandwidth_gbps / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_plausible() {
        for spec in [
            NodeSpec::a100_8x(),
            NodeSpec::h100_8x(),
            NodeSpec::mi250x_8x(),
        ] {
            assert_eq!(spec.gpus, 8);
            assert!(spec.gpu.fp16_tflops > spec.gpu.fp32_tflops);
            assert!(spec.gpu.hbm_bandwidth_gbps > 1000.0);
            assert!(spec.nic_bandwidth_gbps >= 200.0);
            assert!(
                spec.gpu.spare_rows_per_bank > 0,
                "row remapping needs spare rows"
            );
        }
    }

    #[test]
    fn h100_outperforms_a100() {
        let (a, h) = (NodeSpec::a100_8x(), NodeSpec::h100_8x());
        assert!(h.peak_tflops(Precision::Fp16) > a.peak_tflops(Precision::Fp16));
        assert!(h.node_network_gbytes_per_s() > a.node_network_gbytes_per_s());
    }

    #[test]
    fn aggregate_helpers() {
        let spec = NodeSpec::a100_8x();
        assert_eq!(spec.node_peak_tflops(Precision::Fp16), 312.0 * 8.0);
        assert_eq!(spec.node_network_gbytes_per_s(), 8.0 * 200.0 / 8.0);
    }
}

//! Component health and redundancy masking.

/// A redundant resource group (e.g. ToR uplinks, HBM spare rows, NVLink
/// lanes).
///
/// The paper's key observation (Section 2.2) is that redundancy *masks*
/// degradation: capacity only drops once failures eat past the masking
/// budget. For Azure's over-provisioned InfiniBand uplinks "more than half
/// of the redundant links must be functional" before congestion shows, so
/// the default masking budget is half the redundant units.
///
/// # Examples
///
/// ```
/// use anubis_hwsim::RedundantGroup;
///
/// // 8 uplinks of which 2 are redundant (25% over-provisioning).
/// let mut group = RedundantGroup::new(8, 2);
/// assert_eq!(group.capacity_factor(), 1.0);
/// group.break_units(1); // within the masking budget (half of 2)
/// assert_eq!(group.capacity_factor(), 1.0);
/// group.break_units(1); // past the budget: capacity degrades
/// assert!(group.capacity_factor() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundantGroup {
    total: u32,
    redundant: u32,
    broken: u32,
}

impl RedundantGroup {
    /// Creates a group of `total` units of which `redundant` are extra
    /// capacity beyond what full performance needs.
    ///
    /// # Panics
    ///
    /// Panics if `redundant >= total`; a group must have some required
    /// capacity.
    pub fn new(total: u32, redundant: u32) -> Self {
        assert!(
            redundant < total,
            "redundant units must be fewer than total"
        );
        Self {
            total,
            redundant,
            broken: 0,
        }
    }

    /// Units currently working.
    pub fn working(&self) -> u32 {
        self.total - self.broken
    }

    /// Units currently broken.
    pub fn broken(&self) -> u32 {
        self.broken
    }

    /// Total units.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Breaks up to `count` additional units (saturating at `total`).
    pub fn break_units(&mut self, count: u32) {
        self.broken = (self.broken + count).min(self.total);
    }

    /// Repairs up to `count` broken units.
    pub fn repair_units(&mut self, count: u32) {
        self.broken = self.broken.saturating_sub(count);
    }

    /// Repairs everything.
    pub fn repair_all(&mut self) {
        self.broken = 0;
    }

    /// The number of failures that are fully masked: half the redundancy.
    pub fn masking_budget(&self) -> u32 {
        self.redundant / 2
    }

    /// Effective capacity multiplier in `(0, 1]`.
    ///
    /// Failures within the masking budget cost nothing; beyond it, capacity
    /// falls proportionally to the working units relative to the critical
    /// level `total − masking_budget`.
    pub fn capacity_factor(&self) -> f64 {
        if self.broken <= self.masking_budget() {
            return 1.0;
        }
        let critical = (self.total - self.masking_budget()) as f64;
        (self.working() as f64 / critical).clamp(0.0, 1.0)
    }

    /// Whether hidden damage exists: some units are broken but performance
    /// is still fully masked — the paper's "gray" state.
    pub fn has_hidden_damage(&self) -> bool {
        self.broken > 0 && self.capacity_factor() == 1.0
    }
}

/// Aggregate health of a single hardware component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentHealth {
    /// Direct performance multiplier in `(0, 1]` (1 = nominal).
    pub performance: f64,
    /// Optional redundancy in front of the component.
    pub redundancy: Option<RedundantGroup>,
}

impl ComponentHealth {
    /// A fully healthy component without redundancy.
    pub fn nominal() -> Self {
        Self {
            performance: 1.0,
            redundancy: None,
        }
    }

    /// A healthy component guarded by a redundant group.
    pub fn with_redundancy(group: RedundantGroup) -> Self {
        Self {
            performance: 1.0,
            redundancy: Some(group),
        }
    }

    /// Effective multiplier combining direct degradation and redundancy
    /// loss.
    pub fn effective_factor(&self) -> f64 {
        let red = self
            .redundancy
            .as_ref()
            .map_or(1.0, RedundantGroup::capacity_factor);
        (self.performance * red).clamp(0.0, 1.0)
    }

    /// Degrades direct performance multiplicatively.
    pub fn degrade(&mut self, factor: f64) {
        self.performance = (self.performance * factor.clamp(0.0, 1.0)).max(0.0);
    }

    /// Restores nominal performance and repairs all redundancy.
    pub fn repair(&mut self) {
        self.performance = 1.0;
        if let Some(group) = &mut self.redundancy {
            group.repair_all();
        }
    }
}

impl Default for ComponentHealth {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Row-remapping state of one GPU's HBM (Section 2.2, Table 1).
///
/// A100-class GPUs transparently remap degraded rows onto spare rows. The
/// remapping itself is invisible to software, but the paper found nodes with
/// more than 10 remapped correctable errors regress end-to-end with 83.3%
/// probability (vs. 5.6% for 1–10 errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowRemapState {
    /// Total correctable errors absorbed by remapping.
    pub correctable_errors: u32,
    /// Spare rows consumed.
    pub remapped_rows: u32,
}

impl RowRemapState {
    /// Records `errors` new correctable errors, each consuming a spare row.
    pub fn record_errors(&mut self, errors: u32) {
        self.correctable_errors += errors;
        self.remapped_rows += errors;
    }

    /// Clears the state (GPU replacement / full repair).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The paper's high-risk predicate: more than 10 correctable errors.
    pub fn is_high_risk(&self) -> bool {
        self.correctable_errors > 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_masks_then_degrades() {
        let mut g = RedundantGroup::new(8, 4); // masking budget = 2
        assert_eq!(g.masking_budget(), 2);
        g.break_units(2);
        assert_eq!(g.capacity_factor(), 1.0);
        assert!(g.has_hidden_damage());
        g.break_units(1);
        let f = g.capacity_factor();
        assert!(f < 1.0 && f > 0.0, "factor {f}");
        assert!(!g.has_hidden_damage());
    }

    #[test]
    fn capacity_factor_monotone_in_breaks() {
        let mut g = RedundantGroup::new(10, 4);
        let mut last = g.capacity_factor();
        for _ in 0..10 {
            g.break_units(1);
            let f = g.capacity_factor();
            assert!(f <= last + 1e-12);
            last = f;
        }
        assert_eq!(g.working(), 0);
        assert_eq!(g.capacity_factor(), 0.0);
    }

    #[test]
    fn repair_restores_full_capacity() {
        let mut g = RedundantGroup::new(6, 2);
        g.break_units(4);
        assert!(g.capacity_factor() < 1.0);
        g.repair_units(1);
        assert_eq!(g.broken(), 3);
        g.repair_all();
        assert_eq!(g.capacity_factor(), 1.0);
        assert_eq!(g.working(), 6);
    }

    #[test]
    #[should_panic(expected = "redundant units must be fewer")]
    fn rejects_all_redundant_group() {
        RedundantGroup::new(4, 4);
    }

    #[test]
    fn component_health_combines_sources() {
        let mut h = ComponentHealth::with_redundancy(RedundantGroup::new(4, 2));
        assert_eq!(h.effective_factor(), 1.0);
        h.degrade(0.8);
        assert!((h.effective_factor() - 0.8).abs() < 1e-12);
        h.redundancy.as_mut().unwrap().break_units(2);
        assert!(h.effective_factor() < 0.8);
        h.repair();
        assert_eq!(h.effective_factor(), 1.0);
    }

    #[test]
    fn row_remap_risk_threshold() {
        let mut r = RowRemapState::default();
        r.record_errors(5);
        assert!(!r.is_high_risk());
        r.record_errors(6);
        assert!(r.is_high_risk());
        assert_eq!(r.remapped_rows, 11);
        r.reset();
        assert_eq!(r.correctable_errors, 0);
    }
}

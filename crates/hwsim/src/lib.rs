//! Simulated AI hardware substrate.
//!
//! The paper evaluates on real A100/H100/MI250X fleets; this crate replaces
//! that hardware with a component-level performance simulator so the whole
//! validation pipeline (benchmarks → criteria → selection → cluster
//! simulation) can run anywhere. The simulator is *not* a cycle-accurate
//! model — it reproduces the statistical phenomena the paper's system
//! depends on:
//!
//! - every measurable quantity (GEMM throughput, copy bandwidth, collective
//!   bus bandwidth, latencies, disk IO, end-to-end step time) derives from
//!   component specs × health × noise, so defects shift result
//!   *distributions* the way real gray failures do;
//! - redundancy masks early degradation (HBM spare rows, redundant links),
//!   so components accumulate hidden damage before any benchmark moves —
//!   the paper's central observation (Section 2.2);
//! - some defects only appear under composite patterns (the
//!   computation/communication overlap regression of Section 2.1);
//! - healthy nodes still differ slightly ("not all GPUs are created
//!   equal"), and every measurement carries multiplicative noise.
//!
//! The entry point is [`NodeSim`]; [`spec`] holds SKU presets; [`fault`]
//! the injectable defect library.

// Panic-freedom: this crate runs in the fleet-facing validation path.
// The xtask lint enforces the same invariant lexically; this makes the
// compiler enforce it too (tests may unwrap freely).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;
pub mod health;
pub mod node;
pub mod noise;
pub mod perf;
pub mod spec;
pub mod testutil;
pub mod wear;

pub use fault::{FaultImpact, FaultKind};
pub use health::{ComponentHealth, RedundantGroup};
pub use node::{NodeId, NodeSim};
pub use noise::NoiseModel;
pub use spec::{GpuGeneration, NodeSpec, Precision};
pub use wear::WearModel;

//! Injectable hardware defects and their performance impact.

/// Incident source categories, matching the paper's Figure 1 breakdown of
/// one month of Azure tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub enum IncidentCategory {
    /// GPU compute (SM/clock) problems, incl. thermal throttling.
    GpuCompute,
    /// GPU HBM problems (row remapping, bandwidth loss).
    GpuMemory,
    /// Intra-node scale-up fabric (NVLink/xGMI).
    NvLink,
    /// Inter-node InfiniBand links (cable/transceiver BER).
    IbLink,
    /// Host NIC / HCA.
    Nic,
    /// PCIe host↔device path.
    Pcie,
    /// Host CPU / DRAM.
    CpuMemory,
    /// Local disk.
    Disk,
    /// Software / driver / firmware issues.
    Software,
}

impl IncidentCategory {
    /// All categories in a stable order.
    pub const ALL: [IncidentCategory; 9] = [
        IncidentCategory::GpuCompute,
        IncidentCategory::GpuMemory,
        IncidentCategory::NvLink,
        IncidentCategory::IbLink,
        IncidentCategory::Nic,
        IncidentCategory::Pcie,
        IncidentCategory::CpuMemory,
        IncidentCategory::Disk,
        IncidentCategory::Software,
    ];

    /// Index of this category in [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            Self::GpuCompute => 0,
            Self::GpuMemory => 1,
            Self::NvLink => 2,
            Self::IbLink => 3,
            Self::Nic => 4,
            Self::Pcie => 5,
            Self::CpuMemory => 6,
            Self::Disk => 7,
            Self::Software => 8,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::GpuCompute => "GPU",
            Self::GpuMemory => "GPU memory",
            Self::NvLink => "NVLink",
            Self::IbLink => "IB link",
            Self::Nic => "NIC",
            Self::Pcie => "PCIe",
            Self::CpuMemory => "CPU/memory",
            Self::Disk => "Disk",
            Self::Software => "Software",
        }
    }
}

/// A concrete injectable defect.
///
/// Severities are performance-loss fractions in `(0, 1)`: 0.2 means the
/// affected path runs at 80% of nominal.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum FaultKind {
    /// SM/clock degradation: GEMM and end-to-end compute slow down.
    GpuComputeDegraded {
        /// Fractional compute slowdown in `[0, 1]`.
        severity: f64,
    },
    /// Sustained thermal throttling (warm rack position).
    ThermalThrottle {
        /// Fractional throttling intensity in `[0, 1]`.
        severity: f64,
    },
    /// HBM bandwidth loss visible to copy and memory-bound kernels.
    GpuMemoryBandwidthDegraded {
        /// Fractional bandwidth loss in `[0, 1]`.
        severity: f64,
    },
    /// New correctable errors absorbed by row remapping. May or may not
    /// produce an end-to-end regression (Table 1); the draw happens at
    /// injection time inside [`crate::NodeSim`].
    RowRemapErrors {
        /// Count of newly absorbed correctable errors.
        correctable_errors: u32,
    },
    /// Broken NVLink/xGMI lanes (redundancy-masked until past budget).
    NvLinkLanesDown {
        /// Number of lanes out of service.
        lanes: u32,
    },
    /// PCIe link downgrade (e.g. x16 → x8).
    PcieDowngrade {
        /// Fractional link-width loss in `[0, 1]`.
        severity: f64,
    },
    /// High bit-error-rate InfiniBand link: retransmits eat bandwidth.
    IbLinkBer {
        /// Fractional goodput loss from retransmits in `[0, 1]`.
        severity: f64,
    },
    /// HCA device problem visible in loopback.
    HcaDegraded {
        /// Fractional HCA throughput loss in `[0, 1]`.
        severity: f64,
    },
    /// Host DRAM latency regression (bad DIMM / NUMA misconfig).
    CpuMemoryLatency {
        /// Fractional latency increase in `[0, 1]`.
        severity: f64,
    },
    /// Slow local disk.
    DiskSlow {
        /// Fractional disk throughput loss in `[0, 1]`.
        severity: f64,
    },
    /// The Section 2.1 gray failure: computation and communication are
    /// individually nominal, but L2-cache interference degrades their
    /// overlap.
    OverlapInterference {
        /// Fractional overlap-efficiency loss in `[0, 1]`.
        severity: f64,
    },
    /// Kernel-launch path regression (driver/software).
    KernelLaunchOverhead {
        /// Fractional launch-overhead increase in `[0, 1]`.
        severity: f64,
    },
}

impl FaultKind {
    /// The incident category this fault belongs to.
    pub fn category(&self) -> IncidentCategory {
        match self {
            Self::GpuComputeDegraded { .. } | Self::ThermalThrottle { .. } => {
                IncidentCategory::GpuCompute
            }
            Self::GpuMemoryBandwidthDegraded { .. } | Self::RowRemapErrors { .. } => {
                IncidentCategory::GpuMemory
            }
            Self::NvLinkLanesDown { .. } => IncidentCategory::NvLink,
            Self::PcieDowngrade { .. } => IncidentCategory::Pcie,
            Self::IbLinkBer { .. } => IncidentCategory::IbLink,
            Self::HcaDegraded { .. } => IncidentCategory::Nic,
            Self::CpuMemoryLatency { .. } => IncidentCategory::CpuMemory,
            Self::DiskSlow { .. } => IncidentCategory::Disk,
            Self::OverlapInterference { .. } | Self::KernelLaunchOverhead { .. } => {
                IncidentCategory::Software
            }
        }
    }
}

/// Multiplicative impact of active faults on each measurable path.
///
/// Throughput-like factors are `<= 1` (1 = nominal); latency-like factors
/// are `>= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultImpact {
    /// GEMM / compute throughput factor.
    pub compute: f64,
    /// HBM bandwidth factor.
    pub hbm_bandwidth: f64,
    /// NVLink/xGMI collective bandwidth factor.
    pub nvlink_bandwidth: f64,
    /// PCIe H2D/D2H bandwidth factor.
    pub pcie_bandwidth: f64,
    /// Inter-node network bandwidth factor.
    pub network_bandwidth: f64,
    /// HCA loopback bandwidth factor.
    pub hca_loopback: f64,
    /// Host memory latency factor (≥ 1).
    pub cpu_latency: f64,
    /// Disk throughput/IOPS factor.
    pub disk: f64,
    /// Extra penalty applied only when compute and communication overlap.
    pub overlap: f64,
    /// Kernel-launch latency factor (≥ 1).
    pub kernel_launch: f64,
}

impl FaultImpact {
    /// No impact at all.
    pub const NONE: Self = Self {
        compute: 1.0,
        hbm_bandwidth: 1.0,
        nvlink_bandwidth: 1.0,
        pcie_bandwidth: 1.0,
        network_bandwidth: 1.0,
        hca_loopback: 1.0,
        cpu_latency: 1.0,
        disk: 1.0,
        overlap: 1.0,
        kernel_launch: 1.0,
    };

    /// Combines two impacts multiplicatively.
    pub fn combine(&self, other: &Self) -> Self {
        Self {
            compute: self.compute * other.compute,
            hbm_bandwidth: self.hbm_bandwidth * other.hbm_bandwidth,
            nvlink_bandwidth: self.nvlink_bandwidth * other.nvlink_bandwidth,
            pcie_bandwidth: self.pcie_bandwidth * other.pcie_bandwidth,
            network_bandwidth: self.network_bandwidth * other.network_bandwidth,
            hca_loopback: self.hca_loopback * other.hca_loopback,
            cpu_latency: self.cpu_latency * other.cpu_latency,
            disk: self.disk * other.disk,
            overlap: self.overlap * other.overlap,
            kernel_launch: self.kernel_launch * other.kernel_launch,
        }
    }

    /// Whether any path deviates from nominal.
    pub fn is_noticeable(&self) -> bool {
        *self != Self::NONE
    }
}

impl Default for FaultImpact {
    fn default() -> Self {
        Self::NONE
    }
}

fn keep(severity: f64) -> f64 {
    (1.0 - severity).clamp(0.0, 1.0)
}

impl FaultKind {
    /// Deterministic part of the fault's impact.
    ///
    /// [`FaultKind::RowRemapErrors`] and [`FaultKind::NvLinkLanesDown`]
    /// return [`FaultImpact::NONE`] here; their effect depends on node
    /// state (remap history, redundancy budget) and randomness, which
    /// [`crate::NodeSim::inject_fault`] resolves.
    pub fn base_impact(&self) -> FaultImpact {
        let mut impact = FaultImpact::NONE;
        match *self {
            Self::GpuComputeDegraded { severity } => impact.compute = keep(severity),
            Self::ThermalThrottle { severity } => {
                // Throttling hits sustained compute and, mildly, HBM.
                impact.compute = keep(severity);
                impact.hbm_bandwidth = keep(severity * 0.3);
            }
            Self::GpuMemoryBandwidthDegraded { severity } => impact.hbm_bandwidth = keep(severity),
            Self::RowRemapErrors { .. } => {}
            Self::NvLinkLanesDown { .. } => {}
            Self::PcieDowngrade { severity } => impact.pcie_bandwidth = keep(severity),
            Self::IbLinkBer { severity } => {
                impact.network_bandwidth = keep(severity);
                impact.hca_loopback = keep(severity * 0.5);
            }
            Self::HcaDegraded { severity } => {
                impact.hca_loopback = keep(severity);
                impact.network_bandwidth = keep(severity * 0.8);
            }
            Self::CpuMemoryLatency { severity } => {
                impact.cpu_latency = 1.0 / keep(severity).max(1e-3);
            }
            Self::DiskSlow { severity } => impact.disk = keep(severity),
            Self::OverlapInterference { severity } => impact.overlap = keep(severity),
            Self::KernelLaunchOverhead { severity } => {
                impact.kernel_launch = 1.0 / keep(severity).max(1e-3);
            }
        }
        impact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_all_faults() {
        let faults = [
            FaultKind::GpuComputeDegraded { severity: 0.1 },
            FaultKind::ThermalThrottle { severity: 0.1 },
            FaultKind::GpuMemoryBandwidthDegraded { severity: 0.1 },
            FaultKind::RowRemapErrors {
                correctable_errors: 12,
            },
            FaultKind::NvLinkLanesDown { lanes: 2 },
            FaultKind::PcieDowngrade { severity: 0.5 },
            FaultKind::IbLinkBer { severity: 0.3 },
            FaultKind::HcaDegraded { severity: 0.3 },
            FaultKind::CpuMemoryLatency { severity: 0.2 },
            FaultKind::DiskSlow { severity: 0.4 },
            FaultKind::OverlapInterference { severity: 0.25 },
            FaultKind::KernelLaunchOverhead { severity: 0.5 },
        ];
        for fault in faults {
            // Every fault maps to a category with a printable name.
            assert!(!fault.category().name().is_empty());
        }
    }

    #[test]
    fn overlap_fault_touches_only_overlap_path() {
        let impact = FaultKind::OverlapInterference { severity: 0.3 }.base_impact();
        assert!((impact.overlap - 0.7).abs() < 1e-12);
        assert_eq!(impact.compute, 1.0);
        assert_eq!(impact.nvlink_bandwidth, 1.0);
        assert_eq!(impact.network_bandwidth, 1.0);
    }

    #[test]
    fn latency_faults_increase_latency_factors() {
        let impact = FaultKind::CpuMemoryLatency { severity: 0.2 }.base_impact();
        assert!(impact.cpu_latency > 1.2);
        let launch = FaultKind::KernelLaunchOverhead { severity: 0.5 }.base_impact();
        assert!((launch.kernel_launch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn impacts_combine_multiplicatively() {
        let a = FaultKind::GpuComputeDegraded { severity: 0.2 }.base_impact();
        let b = FaultKind::GpuComputeDegraded { severity: 0.5 }.base_impact();
        let combined = a.combine(&b);
        assert!((combined.compute - 0.4).abs() < 1e-12);
        assert!(combined.is_noticeable());
        assert!(!FaultImpact::NONE.is_noticeable());
    }

    #[test]
    fn stateful_faults_have_no_base_impact() {
        assert_eq!(
            FaultKind::RowRemapErrors {
                correctable_errors: 20
            }
            .base_impact(),
            FaultImpact::NONE
        );
        assert_eq!(
            FaultKind::NvLinkLanesDown { lanes: 3 }.base_impact(),
            FaultImpact::NONE
        );
    }

    #[test]
    fn category_ordering_is_stable() {
        assert_eq!(IncidentCategory::ALL.len(), 9);
        let mut sorted = IncidentCategory::ALL;
        sorted.sort();
        assert_eq!(sorted, IncidentCategory::ALL);
    }
}

//! The simulated GPU node.

use crate::fault::{FaultImpact, FaultKind, IncidentCategory};
use crate::health::{RedundantGroup, RowRemapState};
use crate::noise::{standard_normal, NoiseModel};
use crate::perf;
use crate::spec::{NodeSpec, Precision};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Identifier of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{:04}", self.0)
    }
}

/// Disk benchmark mode (the FIO micro-benchmarks in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskMode {
    /// Sequential read bandwidth (MB/s).
    SeqRead,
    /// Sequential write bandwidth (MB/s).
    SeqWrite,
    /// Random 4 KiB read (kIOPS).
    RandRead,
    /// Random 4 KiB write (kIOPS).
    RandWrite,
}

/// A simulated GPU node (VM).
///
/// Holds the SKU spec, the per-node "silicon lottery" offsets, active
/// faults with their aggregated impact, stateful redundancy (NVLink lanes,
/// HBM row remapping), and a deterministic RNG for measurement noise.
///
/// All `measure_*` methods return noisy observations like a real benchmark
/// run would; the `effective_*` methods expose the underlying true rates
/// for the workload simulator.
///
/// # Examples
///
/// ```
/// use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec, Precision};
///
/// let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 42);
/// let healthy = node.measure_gemm_tflops(Precision::Fp16, 8192);
/// node.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.3 });
/// let degraded = node.measure_gemm_tflops(Precision::Fp16, 8192);
/// assert!(degraded < healthy * 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct NodeSim {
    id: NodeId,
    spec: NodeSpec,
    rng: ChaCha8Rng,
    silicon_compute: f64,
    silicon_bandwidth: f64,
    faults: Vec<FaultKind>,
    impact: FaultImpact,
    nvlink: RedundantGroup,
    row_remap: RowRemapState,
    remap_regression: Option<f64>,
    uptime_hours: f64,
}

impl NodeSim {
    /// Creates a healthy node with deterministic per-node variation.
    pub fn new(id: NodeId, spec: NodeSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (u64::from(id.0) << 32));
        // "Not all GPUs are created equal": fixed ±0.25%-scale offsets
        // (larger position/thermal effects are modelled as faults).
        let silicon_compute = (0.0025 * standard_normal(&mut rng)).exp();
        let silicon_bandwidth = (0.0025 * standard_normal(&mut rng)).exp();
        let lanes = spec.gpu.nvlink_links * spec.gpus as u32;
        // A quarter of the scale-up lanes are redundancy.
        let nvlink = RedundantGroup::new(lanes, lanes / 4);
        Self {
            id,
            spec,
            rng,
            silicon_compute,
            silicon_bandwidth,
            faults: Vec::new(),
            impact: FaultImpact::NONE,
            nvlink,
            row_remap: RowRemapState::default(),
            remap_regression: None,
            uptime_hours: 0.0,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Hardware spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Hours of simulated uptime.
    pub fn uptime_hours(&self) -> f64 {
        self.uptime_hours
    }

    /// Advances simulated wall-clock time.
    pub fn advance_hours(&mut self, hours: f64) {
        self.uptime_hours += hours.max(0.0);
    }

    /// Currently active faults (stateful faults included).
    pub fn active_faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Row-remapping state of the node's HBM.
    pub fn row_remap(&self) -> RowRemapState {
        self.row_remap
    }

    /// NVLink redundancy state.
    pub fn nvlink_group(&self) -> RedundantGroup {
        self.nvlink
    }

    /// Injects a fault; stateful faults (row remapping, NVLink lanes)
    /// resolve their probabilistic/ redundancy-masked effect here.
    pub fn inject_fault(&mut self, fault: FaultKind) {
        match fault {
            FaultKind::RowRemapErrors { correctable_errors } => {
                self.row_remap.record_errors(correctable_errors);
                if self.remap_regression.is_none() {
                    // Table 1: >10 CEs regress with p = 0.833; 1–10 with
                    // p = 0.056.
                    let p = if self.row_remap.is_high_risk() {
                        0.833
                    } else {
                        0.056
                    };
                    if self.rng.random::<f64>() < p {
                        let severity = self.rng.random_range(0.08..0.25);
                        self.remap_regression = Some(severity);
                    }
                }
            }
            FaultKind::NvLinkLanesDown { lanes } => {
                self.nvlink.break_units(lanes);
            }
            _ => {}
        }
        self.faults.push(fault);
        self.recompute_impact();
    }

    /// Repairs all faults in a category, mirroring targeted mitigation.
    pub fn repair_category(&mut self, category: IncidentCategory) {
        self.faults.retain(|f| f.category() != category);
        if category == IncidentCategory::GpuMemory {
            self.row_remap.reset();
            self.remap_regression = None;
        }
        if category == IncidentCategory::NvLink {
            self.nvlink.repair_all();
        }
        self.recompute_impact();
    }

    /// Full restoration: the hot-buffer swap / out-for-repair outcome.
    pub fn repair_all(&mut self) {
        self.faults.clear();
        self.row_remap.reset();
        self.remap_regression = None;
        self.nvlink.repair_all();
        self.recompute_impact();
    }

    fn recompute_impact(&mut self) {
        let mut impact = FaultImpact::NONE;
        for fault in &self.faults {
            impact = impact.combine(&fault.base_impact());
        }
        if let Some(severity) = self.remap_regression {
            impact.hbm_bandwidth *= 1.0 - severity;
        }
        impact.nvlink_bandwidth *= self.nvlink.capacity_factor();
        self.impact = impact;
    }

    /// Aggregated fault impact over all measurable paths.
    pub fn impact(&self) -> &FaultImpact {
        &self.impact
    }

    /// Whether any benchmarkable path currently deviates from nominal.
    pub fn has_detectable_defect(&self) -> bool {
        self.impact.is_noticeable()
    }

    /// Whether damage exists that no benchmark can currently see (masked
    /// redundancy loss or benign row remaps) — the paper's gray state.
    pub fn has_hidden_damage(&self) -> bool {
        let nvlink_hidden = self.nvlink.has_hidden_damage();
        let remap_hidden = self.row_remap.correctable_errors > 0 && self.remap_regression.is_none();
        nvlink_hidden || remap_hidden
    }

    // ------------------------------------------------------------------
    // Effective (true) rates, consumed by the workload simulator.
    // ------------------------------------------------------------------

    /// True achievable TFLOPS per GPU for large GEMMs.
    pub fn effective_tflops(&self, precision: Precision) -> f64 {
        self.spec.peak_tflops(precision) * self.silicon_compute * self.impact.compute
    }

    /// True HBM bandwidth in GB/s.
    pub fn effective_hbm_gbps(&self) -> f64 {
        self.spec.gpu.hbm_bandwidth_gbps * self.silicon_bandwidth * self.impact.hbm_bandwidth
    }

    /// True scale-up fabric bandwidth in GB/s per GPU.
    pub fn effective_nvlink_gbps(&self) -> f64 {
        self.spec.gpu.nvlink_bandwidth_gbps * self.silicon_bandwidth * self.impact.nvlink_bandwidth
    }

    /// True aggregate inter-node bandwidth in GB/s.
    pub fn effective_network_gbytes_per_s(&self) -> f64 {
        self.spec.node_network_gbytes_per_s() * self.impact.network_bandwidth
    }

    /// True PCIe bandwidth in GB/s.
    pub fn effective_pcie_gbps(&self) -> f64 {
        self.spec.pcie_bandwidth_gbps * self.impact.pcie_bandwidth
    }

    /// Extra multiplicative penalty on overlapped compute+communication.
    pub fn overlap_factor(&self) -> f64 {
        self.impact.overlap
    }

    /// True kernel-launch overhead in µs.
    pub fn effective_kernel_launch_us(&self) -> f64 {
        self.spec.gpu.kernel_launch_us * self.impact.kernel_launch
    }

    // ------------------------------------------------------------------
    // Noisy measurements (what a benchmark run observes).
    // ------------------------------------------------------------------

    fn noisy(&mut self, nominal: f64, model: NoiseModel) -> f64 {
        model.apply(nominal, &mut self.rng)
    }

    /// Measures a square GEMM of dimension `n`, returning TFLOPS.
    pub fn measure_gemm_tflops(&mut self, precision: Precision, n: usize) -> f64 {
        let nominal = self.effective_tflops(precision) * perf::gemm_efficiency(n);
        self.noisy(nominal, NoiseModel::MICRO)
    }

    /// Measures kernel launch latency in µs (latency metric: lower is
    /// better).
    pub fn measure_kernel_launch_us(&mut self) -> f64 {
        let nominal = self.effective_kernel_launch_us();
        self.noisy(nominal, NoiseModel::new(0.01))
    }

    /// Host→device copy bandwidth in GB/s.
    pub fn measure_h2d_gbps(&mut self) -> f64 {
        let nominal = self.effective_pcie_gbps() * 0.92;
        self.noisy(nominal, NoiseModel::MICRO)
    }

    /// Device→host copy bandwidth in GB/s (slightly below H2D).
    pub fn measure_d2h_gbps(&mut self) -> f64 {
        let nominal = self.effective_pcie_gbps() * 0.88;
        self.noisy(nominal, NoiseModel::MICRO)
    }

    /// On-device copy bandwidth in GB/s (reads+writes HBM).
    pub fn measure_gpu_copy_gbps(&mut self) -> f64 {
        let nominal = self.effective_hbm_gbps() * 0.87;
        self.noisy(nominal, NoiseModel::MICRO)
    }

    /// Intra-node all-reduce bus bandwidth over NVLink/xGMI in GB/s.
    pub fn measure_nvlink_allreduce_gbps(&mut self, message_bytes: u64) -> f64 {
        let eff = perf::bandwidth_efficiency(message_bytes, 4 << 20)
            * perf::ring_allreduce_factor(self.spec.gpus);
        let nominal = self.effective_nvlink_gbps() * eff;
        self.noisy(nominal, NoiseModel::new(0.008))
    }

    /// Single-node all-reduce over the IB HCAs (loopback through the NIC
    /// rail) in GB/s.
    pub fn measure_ib_single_node_allreduce_gbps(&mut self) -> f64 {
        let nominal = self.effective_network_gbytes_per_s() * 0.9 * self.impact.hca_loopback;
        self.noisy(nominal, NoiseModel::new(0.008))
    }

    /// HCA loopback bandwidth in Gb/s (per-HCA line-rate check).
    pub fn measure_hca_loopback_gbps(&mut self) -> f64 {
        let nominal = self.spec.nic_bandwidth_gbps * 0.96 * self.impact.hca_loopback;
        self.noisy(nominal, NoiseModel::MICRO)
    }

    /// Host memory latency in ns (lower is better).
    pub fn measure_cpu_latency_ns(&mut self) -> f64 {
        let nominal = self.spec.cpu.memory_latency_ns * self.impact.cpu_latency;
        self.noisy(nominal, NoiseModel::new(0.012))
    }

    /// Disk benchmark measurement (MB/s for sequential, kIOPS for random).
    pub fn measure_disk(&mut self, mode: DiskMode) -> f64 {
        let nominal = match mode {
            DiskMode::SeqRead => self.spec.disk.seq_read_mbps,
            DiskMode::SeqWrite => self.spec.disk.seq_write_mbps,
            DiskMode::RandRead => self.spec.disk.rand_read_iops / 1000.0,
            DiskMode::RandWrite => self.spec.disk.rand_write_iops / 1000.0,
        } * self.impact.disk;
        self.noisy(nominal, NoiseModel::new(0.015))
    }

    /// GPU burn: sustained GEMM throughput after thermal saturation, in
    /// TFLOPS. Throttling faults bite harder here than in short GEMMs.
    pub fn measure_gpu_burn_tflops(&mut self, precision: Precision) -> f64 {
        let sustained = self.effective_tflops(precision) * 0.93 * self.impact.compute.powf(0.5);
        self.noisy(sustained, NoiseModel::new(0.008))
    }

    /// The Section 2.1 composite: achieved TFLOPS of a GEMM while an
    /// all-reduce runs concurrently. Healthy nodes keep ~92% of standalone
    /// throughput; overlap-interference faults show up *only* here.
    pub fn measure_overlap_matmul_allreduce_tflops(&mut self, precision: Precision) -> f64 {
        let standalone = self.effective_tflops(precision) * perf::gemm_efficiency(4096);
        let comm_pressure = self.impact.nvlink_bandwidth.powf(0.25);
        let nominal = standalone * 0.92 * self.overlap_factor() * comm_pressure;
        self.noisy(nominal, NoiseModel::new(0.008))
    }

    /// Sharded MatMul: a tensor-parallel style kernel bound by both compute
    /// and NVLink.
    pub fn measure_sharding_matmul_tflops(&mut self, precision: Precision) -> f64 {
        let compute = self.effective_tflops(precision) * perf::gemm_efficiency(4096);
        let comm_limit = self.impact.nvlink_bandwidth.powf(0.5);
        self.noisy(compute * 0.85 * comm_limit, NoiseModel::new(0.008))
    }

    /// Draws a noise factor from the node's RNG (for composite simulations
    /// that need consistent randomness).
    pub fn draw_noise(&mut self, model: NoiseModel) -> f64 {
        model.factor(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(seed: u64) -> NodeSim {
        NodeSim::new(NodeId(1), NodeSpec::a100_8x(), seed)
    }

    #[test]
    fn healthy_measurements_near_nominal() {
        let mut n = node(7);
        let gemm = n.measure_gemm_tflops(Precision::Fp16, 8192);
        // Peak 312 × eff(8192)≈0.978×0.98 ≈ 299; allow silicon+noise slack.
        assert!(gemm > 280.0 && gemm < 310.0, "gemm {gemm}");
        let h2d = n.measure_h2d_gbps();
        assert!(h2d > 22.0 && h2d < 25.0, "h2d {h2d}");
        let lat = n.measure_cpu_latency_ns();
        assert!(lat > 90.0 && lat < 100.0, "latency {lat}");
    }

    #[test]
    fn compute_fault_only_hits_compute_paths() {
        let mut n = node(9);
        let h2d_before = n.measure_h2d_gbps();
        n.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.4 });
        let gemm = n.measure_gemm_tflops(Precision::Fp16, 8192);
        assert!(gemm < 200.0, "degraded gemm {gemm}");
        let h2d_after = n.measure_h2d_gbps();
        assert!((h2d_after - h2d_before).abs() / h2d_before < 0.02);
    }

    #[test]
    fn overlap_defect_invisible_to_standalone_benchmarks() {
        let mut n = node(11);
        let gemm_before = n.measure_gemm_tflops(Precision::Fp16, 8192);
        let nvlink_before = n.measure_nvlink_allreduce_gbps(64 << 20);
        let overlap_before = n.measure_overlap_matmul_allreduce_tflops(Precision::Fp16);
        n.inject_fault(FaultKind::OverlapInterference { severity: 0.3 });
        let gemm_after = n.measure_gemm_tflops(Precision::Fp16, 8192);
        let nvlink_after = n.measure_nvlink_allreduce_gbps(64 << 20);
        let overlap_after = n.measure_overlap_matmul_allreduce_tflops(Precision::Fp16);
        assert!(
            (gemm_after - gemm_before).abs() / gemm_before < 0.02,
            "GEMM unaffected"
        );
        assert!(
            (nvlink_after - nvlink_before).abs() / nvlink_before < 0.05,
            "all-reduce unaffected"
        );
        assert!(overlap_after < overlap_before * 0.8, "overlap regresses");
    }

    #[test]
    fn nvlink_redundancy_masks_few_lanes() {
        let mut n = node(13);
        let before = n.measure_nvlink_allreduce_gbps(64 << 20);
        // 96 lanes, 24 redundant, masking budget 12.
        n.inject_fault(FaultKind::NvLinkLanesDown { lanes: 10 });
        let masked = n.measure_nvlink_allreduce_gbps(64 << 20);
        assert!(
            (masked - before).abs() / before < 0.05,
            "masked: {before} -> {masked}"
        );
        assert!(n.has_hidden_damage());
        assert!(!n.has_detectable_defect());
        n.inject_fault(FaultKind::NvLinkLanesDown { lanes: 30 });
        let broken = n.measure_nvlink_allreduce_gbps(64 << 20);
        assert!(broken < before * 0.9, "visible: {before} -> {broken}");
        assert!(n.has_detectable_defect());
    }

    #[test]
    fn row_remap_small_counts_rarely_regress() {
        // With 1–10 CEs only ~5.6% of nodes regress.
        let mut regressed = 0;
        for seed in 0..300 {
            let mut n = NodeSim::new(NodeId(seed), NodeSpec::a100_8x(), u64::from(seed));
            n.inject_fault(FaultKind::RowRemapErrors {
                correctable_errors: 5,
            });
            if n.has_detectable_defect() {
                regressed += 1;
            }
        }
        let rate = f64::from(regressed) / 300.0;
        assert!(rate > 0.01 && rate < 0.12, "low-CE regression rate {rate}");
    }

    #[test]
    fn row_remap_high_counts_mostly_regress() {
        let mut regressed = 0;
        for seed in 0..300 {
            let mut n = NodeSim::new(NodeId(seed), NodeSpec::a100_8x(), u64::from(seed));
            n.inject_fault(FaultKind::RowRemapErrors {
                correctable_errors: 15,
            });
            if n.has_detectable_defect() {
                regressed += 1;
            }
        }
        let rate = f64::from(regressed) / 300.0;
        assert!(rate > 0.72 && rate < 0.93, "high-CE regression rate {rate}");
    }

    #[test]
    fn repair_restores_nominal() {
        let mut n = node(17);
        n.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.5 });
        n.inject_fault(FaultKind::NvLinkLanesDown { lanes: 40 });
        n.inject_fault(FaultKind::RowRemapErrors {
            correctable_errors: 30,
        });
        assert!(n.has_detectable_defect());
        n.repair_all();
        assert!(!n.has_detectable_defect());
        assert!(!n.has_hidden_damage());
        assert!(n.active_faults().is_empty());
        let gemm = n.measure_gemm_tflops(Precision::Fp16, 8192);
        assert!(gemm > 280.0, "restored gemm {gemm}");
    }

    #[test]
    fn category_repair_is_targeted() {
        let mut n = node(19);
        n.inject_fault(FaultKind::GpuComputeDegraded { severity: 0.3 });
        n.inject_fault(FaultKind::DiskSlow { severity: 0.5 });
        n.repair_category(IncidentCategory::Disk);
        assert_eq!(n.active_faults().len(), 1);
        assert!(n.has_detectable_defect(), "GPU fault remains");
        let disk = n.measure_disk(DiskMode::SeqRead);
        assert!(disk > 3000.0, "disk restored: {disk}");
    }

    #[test]
    fn uptime_advances_monotonically() {
        let mut n = node(23);
        n.advance_hours(5.0);
        n.advance_hours(-3.0); // ignored
        n.advance_hours(2.5);
        assert!((n.uptime_hours() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = node(99);
        let mut b = node(99);
        for _ in 0..5 {
            assert_eq!(
                a.measure_gemm_tflops(Precision::Fp32, 4096),
                b.measure_gemm_tflops(Precision::Fp32, 4096)
            );
        }
    }

    #[test]
    fn different_nodes_differ_slightly() {
        let a = NodeSim::new(NodeId(1), NodeSpec::a100_8x(), 5);
        let b = NodeSim::new(NodeId(2), NodeSpec::a100_8x(), 5);
        let ta = a.effective_tflops(Precision::Fp16);
        let tb = b.effective_tflops(Precision::Fp16);
        assert_ne!(ta, tb);
        assert!((ta - tb).abs() / ta < 0.05, "silicon lottery is small");
    }

    #[test]
    fn latency_faults_raise_latency() {
        let mut n = node(29);
        let before = n.measure_cpu_latency_ns();
        n.inject_fault(FaultKind::CpuMemoryLatency { severity: 0.3 });
        let after = n.measure_cpu_latency_ns();
        assert!(after > before * 1.3, "{before} -> {after}");
    }
}

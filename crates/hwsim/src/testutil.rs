//! Shared test support.
//!
//! Deterministic RNG construction used by unit tests across the workspace
//! (previously copy-pasted into each crate's test module). Kept in the
//! library proper — rather than behind `#[cfg(test)]` — so downstream
//! crates' tests can reuse it.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic [`ChaCha8Rng`] for tests, seeded from a fixed value.
///
/// Every simulation and test in the workspace derives its randomness from
/// an explicit seed; this is the single place tests construct theirs.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

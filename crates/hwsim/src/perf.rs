//! Analytic performance kernels.
//!
//! Closed-form efficiency models mapping operation parameters to achievable
//! fractions of peak hardware rates. The constants are tuned to typical
//! published numbers (cuBLAS GEMM efficiency, NCCL bus-bandwidth curves)
//! so that simulated measurements sit in realistic ranges; the validation
//! pipeline only depends on their *relative* behaviour.

/// Fraction of peak FLOPS a dense GEMM of square dimension `n` achieves.
///
/// Small GEMMs are launch/memory bound; large ones approach peak. The curve
/// is `n³ / (n³ + n_half³)` with `n_half = 1024`, giving ~50% efficiency at
/// n = 1024 and >97% at n = 4096.
pub fn gemm_efficiency(n: usize) -> f64 {
    let n = n as f64;
    let n_half = 1024.0f64;
    let cubed = n * n * n;
    let half_cubed = n_half * n_half * n_half;
    0.98 * cubed / (cubed + half_cubed)
}

/// Fraction of peak bandwidth a transfer of `bytes` achieves.
///
/// Follows the classic half-saturation model: tiny messages pay latency,
/// large ones saturate the pipe. `half_saturation_bytes` is the message size
/// achieving 50% of peak.
pub fn bandwidth_efficiency(bytes: u64, half_saturation_bytes: u64) -> f64 {
    let b = bytes as f64;
    let h = half_saturation_bytes as f64;
    0.97 * b / (b + h)
}

/// Ring all-reduce *algorithm* bandwidth factor for `n` ranks.
///
/// A ring moves `2(n−1)/n` times the data per rank; bus bandwidth, the
/// NCCL-style metric, normalizes by that factor, so the achievable bus
/// bandwidth is flat in `n` up to protocol overheads that grow mildly.
pub fn ring_allreduce_factor(ranks: usize) -> f64 {
    if ranks <= 1 {
        return 1.0;
    }
    // Protocol overhead: ~1.5% per additional rank, capped.
    let overhead = 1.0 - 0.015 * ((ranks - 2) as f64).min(10.0);
    overhead.max(0.8)
}

/// All-to-all traffic factor: each rank exchanges with all others, so the
/// effective per-rank bandwidth divides across `n−1` flows and stresses the
/// bisection.
pub fn all_to_all_factor(ranks: usize) -> f64 {
    if ranks <= 1 {
        return 1.0;
    }
    (ranks as f64 - 1.0) / ranks as f64
}

/// Seconds to compute `flops` at `tflops` × 10¹² FLOP/s.
pub fn compute_time_s(flops: f64, tflops: f64) -> f64 {
    if tflops <= 0.0 {
        return f64::INFINITY;
    }
    flops / (tflops * 1e12)
}

/// Seconds to move `bytes` at `gbps` × 10⁹ B/s.
pub fn transfer_time_s(bytes: f64, gbytes_per_s: f64) -> f64 {
    if gbytes_per_s <= 0.0 {
        return f64::INFINITY;
    }
    bytes / (gbytes_per_s * 1e9)
}

/// Overlapped execution time for a compute phase and a communication phase
/// with overlap fraction `overlap` in `[0, 1]`.
///
/// `overlap = 1` means perfect overlap, `max(c, m)`; `overlap = 0` means
/// fully serialized, `c + m`.
pub fn overlapped_time_s(compute_s: f64, comm_s: f64, overlap: f64) -> f64 {
    let overlap = overlap.clamp(0.0, 1.0);
    let serial = compute_s + comm_s;
    let parallel = compute_s.max(comm_s);
    serial + (parallel - serial) * overlap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_efficiency_grows_with_size() {
        assert!(gemm_efficiency(256) < gemm_efficiency(1024));
        assert!(gemm_efficiency(1024) < gemm_efficiency(8192));
        assert!((gemm_efficiency(1024) - 0.49).abs() < 0.01);
        assert!(gemm_efficiency(8192) > 0.95);
        assert!(gemm_efficiency(16384) <= 0.98);
    }

    #[test]
    fn bandwidth_saturates_with_message_size() {
        let half = 1 << 20;
        assert!((bandwidth_efficiency(half, half) - 0.485).abs() < 0.01);
        assert!(bandwidth_efficiency(1 << 30, half) > 0.95);
        assert!(bandwidth_efficiency(1024, half) < 0.01);
    }

    #[test]
    fn ring_factor_degrades_gently() {
        assert_eq!(ring_allreduce_factor(1), 1.0);
        assert!(ring_allreduce_factor(2) > ring_allreduce_factor(8));
        assert!(ring_allreduce_factor(64) >= 0.8);
    }

    #[test]
    fn all_to_all_bisection_pressure() {
        assert_eq!(all_to_all_factor(1), 1.0);
        assert_eq!(all_to_all_factor(2), 0.5);
        assert!((all_to_all_factor(8) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn time_helpers() {
        assert!((compute_time_s(1e12, 1.0) - 1.0).abs() < 1e-12);
        assert!((transfer_time_s(1e9, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(compute_time_s(1.0, 0.0), f64::INFINITY);
        assert_eq!(transfer_time_s(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn overlap_interpolates_between_serial_and_parallel() {
        let serial = overlapped_time_s(2.0, 3.0, 0.0);
        let parallel = overlapped_time_s(2.0, 3.0, 1.0);
        let half = overlapped_time_s(2.0, 3.0, 0.5);
        assert_eq!(serial, 5.0);
        assert_eq!(parallel, 3.0);
        assert_eq!(half, 4.0);
    }
}

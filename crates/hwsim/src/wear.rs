//! Gradual wear: stochastic fault onset under sustained use.
//!
//! Section 2.2's core observation is that "continuous and repetitive use
//! of redundant components will cause them to become problematic gradually".
//! This module models that as a marked Poisson process: per stressed hour,
//! each incident category has a small onset rate; when an onset fires, a
//! concrete [`FaultKind`] is sampled and injected. Redundancy-masked
//! faults (row remaps, NVLink lanes) accumulate silently before any
//! benchmark moves — exactly the gray state validation exists to catch.

use crate::fault::{FaultKind, IncidentCategory};
use crate::node::NodeSim;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Per-category onset rates (events per stressed hour).
#[derive(Debug, Clone, PartialEq)]
pub struct WearModel {
    rates: Vec<(IncidentCategory, f64)>,
}

impl WearModel {
    /// An Azure-like wear profile: one onset every ~200 stressed hours in
    /// total, split across categories roughly like the Figure 1 mix.
    pub fn azure_like() -> Self {
        let total_rate = 1.0 / 200.0;
        Self {
            rates: vec![
                (IncidentCategory::GpuCompute, 0.22 * total_rate),
                (IncidentCategory::GpuMemory, 0.15 * total_rate),
                (IncidentCategory::IbLink, 0.21 * total_rate),
                (IncidentCategory::Nic, 0.08 * total_rate),
                (IncidentCategory::NvLink, 0.06 * total_rate),
                (IncidentCategory::Pcie, 0.05 * total_rate),
                (IncidentCategory::CpuMemory, 0.07 * total_rate),
                (IncidentCategory::Disk, 0.04 * total_rate),
                (IncidentCategory::Software, 0.12 * total_rate),
            ],
        }
    }

    /// A profile scaled by `factor` (e.g. tropical data centers: the paper
    /// saw 35× more degraded IB links there).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rates: self.rates.iter().map(|&(c, r)| (c, r * factor)).collect(),
        }
    }

    /// Total onset rate per stressed hour.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().map(|(_, r)| r).sum()
    }

    /// Samples a mild wear-grade fault for a category. Wear onsets are
    /// *gradual*: severities start small, and redundancy-backed categories
    /// consume redundancy first.
    fn sample_onset(&self, category: IncidentCategory, rng: &mut ChaCha8Rng) -> FaultKind {
        match category {
            IncidentCategory::GpuCompute => FaultKind::ThermalThrottle {
                severity: rng.random_range(0.02..0.12),
            },
            IncidentCategory::GpuMemory => {
                // Wear shows up as remapped correctable errors first.
                FaultKind::RowRemapErrors {
                    correctable_errors: rng.random_range(1..6),
                }
            }
            IncidentCategory::NvLink => FaultKind::NvLinkLanesDown {
                lanes: rng.random_range(1..6),
            },
            IncidentCategory::IbLink => FaultKind::IbLinkBer {
                severity: rng.random_range(0.05..0.25),
            },
            IncidentCategory::Nic => FaultKind::HcaDegraded {
                severity: rng.random_range(0.05..0.25),
            },
            IncidentCategory::Pcie => FaultKind::PcieDowngrade {
                severity: rng.random_range(0.2..0.5),
            },
            IncidentCategory::CpuMemory => FaultKind::CpuMemoryLatency {
                severity: rng.random_range(0.05..0.2),
            },
            IncidentCategory::Disk => FaultKind::DiskSlow {
                severity: rng.random_range(0.1..0.35),
            },
            IncidentCategory::Software => FaultKind::OverlapInterference {
                severity: rng.random_range(0.05..0.2),
            },
        }
    }

    /// Advances a node by `hours` of stressed operation: time passes and
    /// wear onsets are sampled and injected. Returns the faults injected.
    pub fn advance(&self, node: &mut NodeSim, hours: f64, rng: &mut ChaCha8Rng) -> Vec<FaultKind> {
        node.advance_hours(hours);
        let mut injected = Vec::new();
        for &(category, rate) in &self.rates {
            // Poisson thinning: expected onsets = rate × hours; sample the
            // count then the concrete faults.
            let expected = rate * hours.max(0.0);
            let mut count = 0u32;
            // Inverse-CDF Poisson sampling (rates are tiny, counts small).
            let mut cumulative = (-expected).exp();
            let mut threshold = cumulative;
            let u: f64 = rng.random();
            while u > threshold && count < 50 {
                count += 1;
                cumulative *= expected / f64::from(count);
                threshold += cumulative;
            }
            for _ in 0..count {
                let fault = self.sample_onset(category, rng);
                node.inject_fault(fault);
                injected.push(fault);
            }
        }
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;
    use crate::NodeId;
    use rand::SeedableRng;

    #[test]
    fn onset_volume_matches_rate() {
        let model = WearModel::azure_like();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut total = 0usize;
        let runs = 200;
        for i in 0..runs {
            let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 1);
            total += model.advance(&mut node, 400.0, &mut rng).len();
        }
        // Expected 2 onsets per node over 400 stressed hours.
        let mean = total as f64 / f64::from(runs);
        assert!((1.6..2.4).contains(&mean), "mean onsets {mean}");
    }

    #[test]
    fn wear_is_mostly_hidden_at_first() {
        let model = WearModel::azure_like();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut hidden = 0usize;
        let mut visible = 0usize;
        for i in 0..300 {
            let mut node = NodeSim::new(NodeId(i), NodeSpec::a100_8x(), 2);
            model.advance(&mut node, 150.0, &mut rng);
            if node.has_hidden_damage() && !node.has_detectable_defect() {
                hidden += 1;
            }
            if node.has_detectable_defect() {
                visible += 1;
            }
        }
        assert!(hidden > 0, "some nodes must sit in the gray state");
        assert!(visible > 0, "some wear must be benchmark-visible");
    }

    #[test]
    fn tropical_scaling_multiplies_rates() {
        let base = WearModel::azure_like();
        let tropical = base.scaled(35.0);
        assert!((tropical.total_rate() / base.total_rate() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn zero_hours_injects_nothing() {
        let model = WearModel::azure_like();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut node = NodeSim::new(NodeId(0), NodeSpec::a100_8x(), 1);
        assert!(model.advance(&mut node, 0.0, &mut rng).is_empty());
        assert_eq!(node.uptime_hours(), 0.0);
    }
}

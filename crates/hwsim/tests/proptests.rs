//! Property-based tests for the hardware simulator.

use anubis_hwsim::node::DiskMode;
use anubis_hwsim::{FaultKind, NodeId, NodeSim, NodeSpec, Precision};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = NodeSpec> {
    prop::sample::select(vec![
        NodeSpec::a100_8x(),
        NodeSpec::h100_8x(),
        NodeSpec::mi250x_8x(),
    ])
}

fn fault_strategy() -> impl Strategy<Value = FaultKind> {
    let severity = 0.01f64..0.8;
    prop_oneof![
        severity
            .clone()
            .prop_map(|s| FaultKind::GpuComputeDegraded { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::ThermalThrottle { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::GpuMemoryBandwidthDegraded { severity: s }),
        (1u32..60).prop_map(|c| FaultKind::RowRemapErrors {
            correctable_errors: c
        }),
        (1u32..96).prop_map(|l| FaultKind::NvLinkLanesDown { lanes: l }),
        severity
            .clone()
            .prop_map(|s| FaultKind::PcieDowngrade { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::IbLinkBer { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::HcaDegraded { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::CpuMemoryLatency { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::DiskSlow { severity: s }),
        severity
            .clone()
            .prop_map(|s| FaultKind::OverlapInterference { severity: s }),
        severity.prop_map(|s| FaultKind::KernelLaunchOverhead { severity: s }),
    ]
}

proptest! {
    /// Every measurement stays finite and non-negative under any fault
    /// combination — the invariant `Sample::new` depends on.
    #[test]
    fn measurements_always_well_formed(
        spec in spec_strategy(),
        faults in prop::collection::vec(fault_strategy(), 0..6),
        seed in 0u64..500,
    ) {
        let mut node = NodeSim::new(NodeId(0), spec, seed);
        for fault in faults {
            node.inject_fault(fault);
        }
        let measurements = [
            node.measure_gemm_tflops(Precision::Fp16, 4096),
            node.measure_gemm_tflops(Precision::Fp32, 2048),
            node.measure_kernel_launch_us(),
            node.measure_h2d_gbps(),
            node.measure_d2h_gbps(),
            node.measure_gpu_copy_gbps(),
            node.measure_nvlink_allreduce_gbps(32 << 20),
            node.measure_hca_loopback_gbps(),
            node.measure_ib_single_node_allreduce_gbps(),
            node.measure_cpu_latency_ns(),
            node.measure_disk(DiskMode::SeqRead),
            node.measure_disk(DiskMode::RandWrite),
            node.measure_gpu_burn_tflops(Precision::Fp16),
            node.measure_overlap_matmul_allreduce_tflops(Precision::Fp16),
            node.measure_sharding_matmul_tflops(Precision::Fp16),
        ];
        for (i, m) in measurements.iter().enumerate() {
            prop_assert!(m.is_finite() && *m >= 0.0, "measurement {i}: {m}");
        }
    }

    /// Throughput impacts compose monotonically: adding any fault never
    /// *raises* a throughput factor and never lowers a latency factor.
    #[test]
    fn impacts_compose_monotonically(
        base in prop::collection::vec(fault_strategy(), 0..4),
        extra in fault_strategy(),
        seed in 0u64..200,
    ) {
        let mut node = NodeSim::new(NodeId(1), NodeSpec::a100_8x(), seed);
        for fault in base {
            node.inject_fault(fault);
        }
        let before = *node.impact();
        node.inject_fault(extra);
        let after = *node.impact();
        prop_assert!(after.compute <= before.compute + 1e-12);
        prop_assert!(after.hbm_bandwidth <= before.hbm_bandwidth + 1e-12);
        prop_assert!(after.nvlink_bandwidth <= before.nvlink_bandwidth + 1e-12);
        prop_assert!(after.pcie_bandwidth <= before.pcie_bandwidth + 1e-12);
        prop_assert!(after.network_bandwidth <= before.network_bandwidth + 1e-12);
        prop_assert!(after.disk <= before.disk + 1e-12);
        prop_assert!(after.overlap <= before.overlap + 1e-12);
        prop_assert!(after.cpu_latency >= before.cpu_latency - 1e-12);
        prop_assert!(after.kernel_launch >= before.kernel_launch - 1e-12);
    }

    /// repair_all is a total reset: no faults, no hidden damage, nominal
    /// effective rates.
    #[test]
    fn repair_all_is_total(
        faults in prop::collection::vec(fault_strategy(), 1..8),
        seed in 0u64..200,
    ) {
        let reference = NodeSim::new(NodeId(2), NodeSpec::h100_8x(), seed);
        let mut node = NodeSim::new(NodeId(2), NodeSpec::h100_8x(), seed);
        for fault in faults {
            node.inject_fault(fault);
        }
        node.repair_all();
        prop_assert!(!node.has_detectable_defect());
        prop_assert!(!node.has_hidden_damage());
        prop_assert!(node.active_faults().is_empty());
        prop_assert_eq!(
            node.effective_tflops(Precision::Fp16),
            reference.effective_tflops(Precision::Fp16)
        );
        prop_assert_eq!(node.effective_hbm_gbps(), reference.effective_hbm_gbps());
        prop_assert_eq!(node.effective_nvlink_gbps(), reference.effective_nvlink_gbps());
    }
}

//! Property-based harnesses driving the lifecycle machine and the
//! coordinator model through randomized event streams.
//!
//! These complement the exhaustive enumerator in `model.rs`: the
//! enumerator proves the three properties for small bounded models, and
//! these proptests hammer the same invariants along random walks through
//! larger configurations.

use anubis_lifecycle::{
    check_model, transition, CoordinatorBugs, LifecycleEvent, ModelConfig, NodeLifecycle,
    NodeState, Property,
};
use proptest::prelude::*;

const ALL_STATES: [NodeState; 6] = [
    NodeState::Healthy,
    NodeState::Busy,
    NodeState::Suspect,
    NodeState::Validating,
    NodeState::Quarantined,
    NodeState::Repaired,
];

const ALL_EVENTS: [LifecycleEvent; 10] = [
    LifecycleEvent::RiskCrossed,
    LifecycleEvent::RiskCleared,
    LifecycleEvent::JobAssigned,
    LifecycleEvent::JobCompleted,
    LifecycleEvent::ValidationStarted,
    LifecycleEvent::ValidationPassed,
    LifecycleEvent::DefectConfirmed,
    LifecycleEvent::IncidentObserved,
    LifecycleEvent::RepairCompleted,
    LifecycleEvent::ReturnedToService,
];

fn arb_event() -> impl Strategy<Value = LifecycleEvent> {
    (0usize..ALL_EVENTS.len()).prop_map(|i| ALL_EVENTS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any event stream applied through `NodeLifecycle` keeps the node in
    /// a reachable, well-defined state, and every rejected event leaves
    /// the state untouched.
    #[test]
    fn random_event_streams_never_corrupt_state(
        events in prop::collection::vec(arb_event(), 0..64)
    ) {
        let mut life = NodeLifecycle::new();
        for event in events {
            let before = life.state();
            match life.apply(event) {
                Ok(next) => {
                    prop_assert_eq!(next, life.state());
                    // The wrapper agrees with the bare transition function.
                    prop_assert_eq!(transition(before, event), Ok(next));
                }
                Err(err) => {
                    prop_assert_eq!(life.state(), before);
                    prop_assert_eq!(err.from, before);
                    prop_assert_eq!(err.event, event);
                }
            }
        }
    }

    /// Discipline property 2 at the machine level: `ValidationStarted`
    /// succeeds from `Suspect` and from nowhere else — in particular never
    /// from `Busy` (no validation on a node serving a job).
    #[test]
    fn validation_only_starts_on_suspects(state_index in 0usize..6) {
        let state = ALL_STATES[state_index];
        let outcome = transition(state, LifecycleEvent::ValidationStarted);
        prop_assert_eq!(outcome.is_ok(), state.is_suspect());
    }

    /// Jobs only land on healthy nodes: a crossed threshold (`Suspect`)
    /// can never be skipped by scheduling work onto the node.
    #[test]
    fn jobs_only_land_on_healthy_nodes(state_index in 0usize..6) {
        let state = ALL_STATES[state_index];
        let outcome = transition(state, LifecycleEvent::JobAssigned);
        prop_assert_eq!(outcome.is_ok(), state.is_healthy());
    }

    /// `in_service` is invariant under legal transitions in the sense the
    /// capacity property needs: only `ValidationStarted` and
    /// `IncidentObserved` take a node out of service, and only
    /// `ValidationPassed` and `ReturnedToService` bring one back.
    #[test]
    fn service_membership_changes_only_at_known_events(
        state_index in 0usize..6,
        event_index in 0usize..10,
    ) {
        let state = ALL_STATES[state_index];
        let event = ALL_EVENTS[event_index];
        if let Ok(next) = transition(state, event) {
            if state.in_service() && !next.in_service() {
                prop_assert!(matches!(
                    event,
                    LifecycleEvent::ValidationStarted | LifecycleEvent::IncidentObserved
                ));
            }
            if !state.in_service() && next.in_service() {
                prop_assert!(matches!(
                    event,
                    LifecycleEvent::ValidationPassed | LifecycleEvent::ReturnedToService
                ));
            }
        }
    }
}

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (3usize..=5, 1usize..=2, 0usize..=3, 0usize..=3, 0usize..=2).prop_map(
        |(nodes, floor, jobs, risk, incidents)| ModelConfig {
            nodes,
            min_in_service: floor.min(nodes - 1),
            jobs,
            risk_crossings: risk,
            incidents,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The correct coordinator satisfies all three properties on every
    /// valid small configuration, not just the defaults.
    #[test]
    fn correct_coordinator_holds_on_random_configs(cfg in arb_config()) {
        let outcome = check_model(&cfg, &CoordinatorBugs::default()).unwrap();
        prop_assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    /// Every injected bug that is reachable under the configuration's
    /// budgets produces a violation of exactly its matching property, and
    /// the counterexample trace replays from the initial state.
    #[test]
    fn injected_bugs_violate_their_property(cfg in arb_config(), which in 0usize..3) {
        let (bugs, expected) = match which {
            0 => (
                CoordinatorBugs { forget_pending_risk: true, ..Default::default() },
                Property::EventualValidation,
            ),
            1 => (
                CoordinatorBugs { validate_while_busy: true, ..Default::default() },
                Property::NoValidationWhileServing,
            ),
            _ => (
                CoordinatorBugs { ignore_capacity_floor: true, ..Default::default() },
                Property::CapacityFloor,
            ),
        };
        let outcome = check_model(&cfg, &bugs).unwrap();
        if let Some(violation) = outcome.violation {
            prop_assert_eq!(violation.property, expected);
            prop_assert!(violation.trace.first().is_some_and(|s| s.starts_with("initial:")));
        } else {
            // The bug needs at least one job + one crossing (and for the
            // floor bug, a floor that can actually be crossed) to fire.
            prop_assert!(cfg.jobs == 0 || cfg.risk_crossings == 0 || which == 2);
        }
    }
}

//! Small-model abstraction of the Selector/Validator coordinator loop
//! and an exhaustive checker over bounded event interleavings.
//!
//! The model is the coordinator as the paper describes it: the Selector
//! raises risk crossings, the coordinator schedules validation on
//! suspect nodes subject to a capacity floor, the Validator reports
//! pass/fail, repair returns quarantined nodes to service. Budgets on
//! jobs, crossings, and incidents make the reachable state space finite,
//! so [`check_model`] can enumerate it exhaustively (breadth-first) and
//! decide three properties:
//!
//! 1. **Eventual validation** ([`Property::EventualValidation`]) — in
//!    every terminal state (no stimulus enabled), no node still has an
//!    unserviced risk crossing.
//! 2. **No validation while serving** ([`Property::NoValidationWhileServing`])
//!    — validation is never started on a `Busy` node. The transition
//!    table rejects it; the model reports the rejection as a violation
//!    when a (deliberately injected) coordinator bug attempts it.
//! 3. **Capacity floor** ([`Property::CapacityFloor`]) — taking a node
//!    out of service for validation never drops the in-service count
//!    below the configured floor.
//!
//! A correct coordinator satisfies all three; [`CoordinatorBugs`] flags
//! re-introduce one class of bug each so the checker's counterexample
//! machinery stays honest (each bug yields a printable trace ending in
//! the corresponding violation).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::machine::{LifecycleEvent, NodeLifecycle, TransitionError};

/// Bounds for one model-checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Fleet size (the issue targets 3–5 nodes).
    pub nodes: usize,
    /// Capacity floor: scheduling validation must keep at least this
    /// many nodes in service.
    pub min_in_service: usize,
    /// How many jobs may arrive in total.
    pub jobs: usize,
    /// How many risk crossings the Selector may raise in total.
    pub risk_crossings: usize,
    /// How many incidents may strike in total.
    pub incidents: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            nodes: 3,
            min_in_service: 2,
            jobs: 2,
            risk_crossings: 2,
            incidents: 1,
        }
    }
}

/// Deliberately injectable coordinator bugs, one per checked property.
///
/// With all flags false the coordinator is correct and [`check_model`]
/// finds no violation; each flag demonstrates one property failure with
/// a concrete counterexample trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordinatorBugs {
    /// Drop a risk crossing that arrives while the node is busy instead
    /// of parking it — violates [`Property::EventualValidation`].
    pub forget_pending_risk: bool,
    /// Try to start validation the moment risk crosses, even on a busy
    /// node — violates [`Property::NoValidationWhileServing`].
    pub validate_while_busy: bool,
    /// Schedule validation without consulting the capacity floor —
    /// violates [`Property::CapacityFloor`].
    pub ignore_capacity_floor: bool,
}

/// The three checked properties (plus the transition discipline itself,
/// which every step of the model exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Every threshold crossing is eventually validated.
    EventualValidation,
    /// No validation is scheduled on a node serving a job.
    NoValidationWhileServing,
    /// Quarantine/validation never drops the fleet below capacity.
    CapacityFloor,
    /// A model step attempted an illegal lifecycle transition.
    TransitionDiscipline,
}

impl Property {
    /// Stable name, for traces and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::EventualValidation => "eventual-validation",
            Self::NoValidationWhileServing => "no-validation-while-serving",
            Self::CapacityFloor => "capacity-floor",
            Self::TransitionDiscipline => "transition-discipline",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Environment stimuli the enumerator interleaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stimulus {
    /// A customer job arrives and is placed on the first healthy node.
    JobArrives,
    /// The job on node `n` finishes.
    JobFinishes(usize),
    /// The Selector's incident probability for node `n` crosses the
    /// threshold.
    RiskCrosses(usize),
    /// Validation on node `n` passes.
    ValidationPasses(usize),
    /// Validation on node `n` confirms a defect.
    ValidationFails(usize),
    /// An incident strikes node `n` mid-job.
    IncidentStrikes(usize),
    /// Repair of node `n` finishes and it returns to service.
    RepairFinishes(usize),
}

impl fmt::Display for Stimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::JobArrives => write!(f, "job arrives"),
            Self::JobFinishes(n) => write!(f, "job on node {n} finishes"),
            Self::RiskCrosses(n) => write!(f, "risk crosses threshold on node {n}"),
            Self::ValidationPasses(n) => write!(f, "validation passes on node {n}"),
            Self::ValidationFails(n) => write!(f, "validation confirms defect on node {n}"),
            Self::IncidentStrikes(n) => write!(f, "incident strikes node {n}"),
            Self::RepairFinishes(n) => write!(f, "repair finishes on node {n}"),
        }
    }
}

/// A property violation with the interleaving that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which property failed.
    pub property: Property,
    /// What exactly went wrong in the final step.
    pub detail: String,
    /// Human-readable replay of every step from the initial state.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property violated: {}", self.property)?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "counterexample trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i.saturating_add(1))?;
        }
        Ok(())
    }
}

/// Result of one exhaustive run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Distinct model states visited.
    pub states_explored: usize,
    /// Stimulus applications explored (edges).
    pub transitions: usize,
    /// First violation found, if any (breadth-first, so a shortest
    /// counterexample).
    pub violation: Option<Violation>,
}

/// One model state: the coordinator's bookkeeping plus the environment's
/// ground truth and remaining budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Model {
    lives: Vec<NodeLifecycle>,
    /// Coordinator memory: risk crossed while the node was busy; revisit
    /// at job completion.
    pending_risk: Vec<bool>,
    /// Environment ground truth: node `i` has an unserviced crossing.
    crossed: Vec<bool>,
    jobs_left: usize,
    risk_left: usize,
    incidents_left: usize,
}

/// What applying one stimulus produced.
enum StepOutcome {
    /// Step applied; description for the trace.
    Ok(String),
    /// Step surfaced a property violation.
    Violated(Property, String),
}

impl Model {
    fn new(cfg: &ModelConfig) -> Self {
        Self {
            lives: vec![NodeLifecycle::new(); cfg.nodes],
            pending_risk: vec![false; cfg.nodes],
            crossed: vec![false; cfg.nodes],
            jobs_left: cfg.jobs,
            risk_left: cfg.risk_crossings,
            incidents_left: cfg.incidents,
        }
    }

    fn in_service(&self) -> usize {
        self.lives.iter().filter(|l| l.in_service()).count()
    }

    /// Compact canonical encoding for the visited set.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.lives.len().saturating_add(3));
        for (i, life) in self.lives.iter().enumerate() {
            let s = life.state();
            let mut b: u8 = if s.is_healthy() {
                0
            } else if s.is_busy() {
                1
            } else if s.is_suspect() {
                2
            } else if s.is_validating() {
                3
            } else if s.is_quarantined() {
                4
            } else {
                5
            };
            if self.pending_risk.get(i).copied().unwrap_or(false) {
                b |= 0x10;
            }
            if self.crossed.get(i).copied().unwrap_or(false) {
                b |= 0x20;
            }
            out.push(b);
        }
        out.push(self.jobs_left as u8);
        out.push(self.risk_left as u8);
        out.push(self.incidents_left as u8);
        out
    }

    /// Stimuli enabled in this state, in deterministic order.
    fn enabled(&self) -> Vec<Stimulus> {
        let mut out = Vec::new();
        if self.jobs_left > 0 && self.lives.iter().any(|l| l.state().is_healthy()) {
            out.push(Stimulus::JobArrives);
        }
        for (i, life) in self.lives.iter().enumerate() {
            let s = life.state();
            if s.is_busy() {
                out.push(Stimulus::JobFinishes(i));
                if self.incidents_left > 0 {
                    out.push(Stimulus::IncidentStrikes(i));
                }
            }
            if self.risk_left > 0
                && (s.is_healthy() || s.is_busy())
                && !self.crossed.get(i).copied().unwrap_or(false)
            {
                out.push(Stimulus::RiskCrosses(i));
            }
            if s.is_validating() {
                out.push(Stimulus::ValidationPasses(i));
                out.push(Stimulus::ValidationFails(i));
            }
            if s.is_quarantined() {
                out.push(Stimulus::RepairFinishes(i));
            }
        }
        out
    }

    fn drive(&mut self, node: usize, event: LifecycleEvent) -> Result<(), (Property, String)> {
        let life = self
            .lives
            .get_mut(node)
            .ok_or_else(|| (Property::TransitionDiscipline, format!("no node {node}")))?;
        match life.apply(event) {
            Ok(_) => Ok(()),
            Err(TransitionError { from, event }) => Err((
                Property::TransitionDiscipline,
                format!("node {node}: event `{event}` illegal in state `{from}`"),
            )),
        }
    }

    fn set_pending(&mut self, node: usize, value: bool) {
        if let Some(slot) = self.pending_risk.get_mut(node) {
            *slot = value;
        }
    }

    fn set_crossed(&mut self, node: usize, value: bool) {
        if let Some(slot) = self.crossed.get_mut(node) {
            *slot = value;
        }
    }

    /// Coordinator scheduling pass: start validation on suspect nodes
    /// while the capacity floor allows it. Returns trace fragments.
    fn schedule(
        &mut self,
        cfg: &ModelConfig,
        bugs: &CoordinatorBugs,
    ) -> Result<Vec<String>, (Property, String)> {
        let mut notes = Vec::new();
        for i in 0..self.lives.len() {
            let suspect = self.lives.get(i).is_some_and(|l| l.state().is_suspect());
            if !suspect {
                continue;
            }
            let room = self.in_service() > cfg.min_in_service;
            if !room && !bugs.ignore_capacity_floor {
                notes.push(format!(
                    "coordinator defers validation of node {i}: capacity floor \
                     ({} in service, floor {})",
                    self.in_service(),
                    cfg.min_in_service
                ));
                continue;
            }
            self.drive(i, LifecycleEvent::ValidationStarted)?;
            self.set_crossed(i, false);
            self.set_pending(i, false);
            notes.push(format!("coordinator starts validation on node {i}"));
            if self.in_service() < cfg.min_in_service {
                return Err((
                    Property::CapacityFloor,
                    format!(
                        "starting validation on node {i} left {} nodes in service, \
                         below floor {}",
                        self.in_service(),
                        cfg.min_in_service
                    ),
                ));
            }
        }
        Ok(notes)
    }

    /// Applies one stimulus (environment move + coordinator reaction).
    fn step(&mut self, s: Stimulus, cfg: &ModelConfig, bugs: &CoordinatorBugs) -> StepOutcome {
        let mut notes: Vec<String> = vec![format!("{s}")];
        let result: Result<(), (Property, String)> = (|| {
            match s {
                Stimulus::JobArrives => {
                    let target = self
                        .lives
                        .iter()
                        .position(|l| l.state().is_healthy())
                        .ok_or_else(|| {
                            (
                                Property::TransitionDiscipline,
                                "job arrived with no healthy node".to_string(),
                            )
                        })?;
                    self.jobs_left = self.jobs_left.saturating_sub(1);
                    self.drive(target, LifecycleEvent::JobAssigned)?;
                    notes.push(format!("coordinator places job on node {target}"));
                }
                Stimulus::JobFinishes(i) => {
                    self.drive(i, LifecycleEvent::JobCompleted)?;
                    if self.pending_risk.get(i).copied().unwrap_or(false) {
                        self.drive(i, LifecycleEvent::RiskCrossed)?;
                        self.set_pending(i, false);
                        notes.push(format!(
                            "coordinator re-raises parked risk crossing on node {i}"
                        ));
                    }
                    notes.extend(self.schedule(cfg, bugs)?);
                }
                Stimulus::RiskCrosses(i) => {
                    self.risk_left = self.risk_left.saturating_sub(1);
                    self.set_crossed(i, true);
                    let state =
                        self.lives.get(i).map(NodeLifecycle::state).ok_or_else(|| {
                            (Property::TransitionDiscipline, format!("no node {i}"))
                        })?;
                    if state.is_busy() {
                        if bugs.validate_while_busy {
                            // Buggy coordinator: validate immediately.
                            if let Err((_, detail)) =
                                self.drive(i, LifecycleEvent::ValidationStarted)
                            {
                                return Err((Property::NoValidationWhileServing, detail));
                            }
                        } else if bugs.forget_pending_risk {
                            notes.push(format!(
                                "coordinator drops risk crossing on busy node {i} (bug)"
                            ));
                        } else {
                            self.set_pending(i, true);
                            notes.push(format!("coordinator parks risk crossing on busy node {i}"));
                        }
                    } else {
                        self.drive(i, LifecycleEvent::RiskCrossed)?;
                    }
                    notes.extend(self.schedule(cfg, bugs)?);
                }
                Stimulus::ValidationPasses(i) => {
                    self.drive(i, LifecycleEvent::ValidationPassed)?;
                    notes.extend(self.schedule(cfg, bugs)?);
                }
                Stimulus::ValidationFails(i) => {
                    self.drive(i, LifecycleEvent::DefectConfirmed)?;
                }
                Stimulus::IncidentStrikes(i) => {
                    self.incidents_left = self.incidents_left.saturating_sub(1);
                    self.drive(i, LifecycleEvent::IncidentObserved)?;
                    // The incident confirmed whatever risk was suspected.
                    self.set_crossed(i, false);
                    self.set_pending(i, false);
                }
                Stimulus::RepairFinishes(i) => {
                    self.drive(i, LifecycleEvent::RepairCompleted)?;
                    self.drive(i, LifecycleEvent::ReturnedToService)?;
                    notes.extend(self.schedule(cfg, bugs)?);
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => StepOutcome::Ok(notes.join("; ")),
            Err((property, detail)) => StepOutcome::Violated(property, detail),
        }
    }

    /// Terminal-state check for eventual validation: with no stimulus
    /// enabled, no node may still carry an unserviced crossing.
    fn terminal_violation(&self) -> Option<(Property, String)> {
        for (i, crossed) in self.crossed.iter().enumerate() {
            if *crossed {
                let state = self.lives.get(i).map_or("?", |l| l.state().name());
                return Some((
                    Property::EventualValidation,
                    format!(
                        "terminal state: node {i} crossed the risk threshold but was \
                         never validated (final state `{state}`)"
                    ),
                ));
            }
        }
        None
    }
}

/// Reconstructs the stimulus sequence leading to `target` and replays it
/// into a human-readable trace.
fn replay_trace(
    cfg: &ModelConfig,
    bugs: &CoordinatorBugs,
    pred: &BTreeMap<Vec<u8>, (Vec<u8>, Stimulus)>,
    target: &[u8],
    last: Option<Stimulus>,
) -> Vec<String> {
    let mut stimuli = VecDeque::new();
    if let Some(s) = last {
        stimuli.push_front(s);
    }
    let mut cursor = target.to_vec();
    while let Some((prev, s)) = pred.get(&cursor) {
        stimuli.push_front(*s);
        cursor = prev.clone();
    }
    let mut model = Model::new(cfg);
    let mut trace = vec![format!(
        "initial: {} nodes healthy, floor {}, budgets: jobs {}, crossings {}, incidents {}",
        cfg.nodes, cfg.min_in_service, cfg.jobs, cfg.risk_crossings, cfg.incidents
    )];
    for s in stimuli {
        match model.step(s, cfg, bugs) {
            StepOutcome::Ok(desc) => trace.push(desc),
            StepOutcome::Violated(property, detail) => {
                trace.push(format!("{s}; VIOLATION [{property}]: {detail}"));
                break;
            }
        }
    }
    trace
}

/// Exhaustively enumerates every bounded interleaving of environment
/// stimuli from the all-healthy initial state and checks the three
/// coordinator properties.
///
/// Breadth-first over the reachable state graph, so a reported
/// [`Violation`] carries a shortest counterexample trace. The budgets in
/// `cfg` make the graph finite; a default-bug run over the issue's 3–5
/// node grid explores a few thousand states in well under a second.
///
/// # Errors
///
/// Returns a description when `cfg` is unusable for checking: zero
/// nodes, a floor not below the fleet size, or budgets so large the
/// `u8` state encoding would alias.
pub fn check_model(cfg: &ModelConfig, bugs: &CoordinatorBugs) -> Result<CheckOutcome, String> {
    if cfg.nodes == 0 {
        return Err("model needs at least one node".to_string());
    }
    if cfg.min_in_service >= cfg.nodes {
        return Err(format!(
            "capacity floor {} must be below the fleet size {}",
            cfg.min_in_service, cfg.nodes
        ));
    }
    if cfg.nodes > 8 || cfg.jobs > 200 || cfg.risk_crossings > 200 || cfg.incidents > 200 {
        return Err("model bounds too large for exhaustive enumeration".to_string());
    }

    let initial = Model::new(cfg);
    let mut visited: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut pred: BTreeMap<Vec<u8>, (Vec<u8>, Stimulus)> = BTreeMap::new();
    let mut queue: VecDeque<Model> = VecDeque::new();
    visited.insert(initial.encode());
    queue.push_back(initial);
    let mut transitions = 0usize;

    while let Some(model) = queue.pop_front() {
        let key = model.encode();
        let enabled = model.enabled();
        if enabled.is_empty() {
            if let Some((property, detail)) = model.terminal_violation() {
                return Ok(CheckOutcome {
                    states_explored: visited.len(),
                    transitions,
                    violation: Some(Violation {
                        property,
                        detail: detail.clone(),
                        trace: replay_trace(cfg, bugs, &pred, &key, None),
                    }),
                });
            }
            continue;
        }
        for s in enabled {
            transitions = transitions.saturating_add(1);
            let mut next = model.clone();
            match next.step(s, cfg, bugs) {
                StepOutcome::Ok(_) => {
                    let next_key = next.encode();
                    if visited.insert(next_key.clone()) {
                        pred.insert(next_key, (key.clone(), s));
                        queue.push_back(next);
                    }
                }
                StepOutcome::Violated(property, detail) => {
                    return Ok(CheckOutcome {
                        states_explored: visited.len(),
                        transitions,
                        violation: Some(Violation {
                            property,
                            detail,
                            trace: replay_trace(cfg, bugs, &pred, &key, Some(s)),
                        }),
                    });
                }
            }
        }
    }

    Ok(CheckOutcome {
        states_explored: visited.len(),
        transitions,
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, floor: usize) -> ModelConfig {
        ModelConfig {
            nodes,
            min_in_service: floor,
            jobs: 2,
            risk_crossings: 2,
            incidents: 1,
        }
    }

    #[test]
    fn correct_coordinator_has_no_violation() {
        for nodes in 3..=5 {
            let outcome = check_model(&cfg(nodes, nodes - 2), &CoordinatorBugs::default()).unwrap();
            assert!(
                outcome.violation.is_none(),
                "nodes={nodes}: {:?}",
                outcome.violation
            );
            assert!(outcome.states_explored > 1);
        }
    }

    #[test]
    fn forgetting_pending_risk_breaks_eventual_validation() {
        let bugs = CoordinatorBugs {
            forget_pending_risk: true,
            ..CoordinatorBugs::default()
        };
        let outcome = check_model(&cfg(3, 1), &bugs).unwrap();
        let violation = outcome.violation.expect("expected a violation");
        assert_eq!(violation.property, Property::EventualValidation);
        assert!(!violation.trace.is_empty());
        // The trace replays end-to-end from the initial state.
        assert!(violation.trace.first().unwrap().starts_with("initial:"));
    }

    #[test]
    fn validating_busy_nodes_is_caught_via_the_transition_table() {
        let bugs = CoordinatorBugs {
            validate_while_busy: true,
            ..CoordinatorBugs::default()
        };
        let outcome = check_model(&cfg(3, 1), &bugs).unwrap();
        let violation = outcome.violation.expect("expected a violation");
        assert_eq!(violation.property, Property::NoValidationWhileServing);
        assert!(violation.detail.contains("busy"), "{}", violation.detail);
    }

    #[test]
    fn ignoring_the_floor_breaks_capacity() {
        let bugs = CoordinatorBugs {
            ignore_capacity_floor: true,
            ..CoordinatorBugs::default()
        };
        let outcome = check_model(&cfg(3, 2), &bugs).unwrap();
        let violation = outcome.violation.expect("expected a violation");
        assert_eq!(violation.property, Property::CapacityFloor);
    }

    #[test]
    fn counterexample_is_printable() {
        let bugs = CoordinatorBugs {
            ignore_capacity_floor: true,
            ..CoordinatorBugs::default()
        };
        let outcome = check_model(&cfg(3, 2), &bugs).unwrap();
        let text = outcome.violation.unwrap().to_string();
        assert!(text.contains("counterexample trace"), "{text}");
        assert!(text.contains("capacity-floor"), "{text}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(check_model(
            &ModelConfig {
                nodes: 0,
                ..ModelConfig::default()
            },
            &CoordinatorBugs::default()
        )
        .is_err());
        assert!(check_model(
            &ModelConfig {
                nodes: 3,
                min_in_service: 3,
                ..ModelConfig::default()
            },
            &CoordinatorBugs::default()
        )
        .is_err());
        assert!(check_model(
            &ModelConfig {
                nodes: 9,
                min_in_service: 1,
                ..ModelConfig::default()
            },
            &CoordinatorBugs::default()
        )
        .is_err());
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = check_model(&cfg(4, 2), &CoordinatorBugs::default()).unwrap();
        let b = check_model(&cfg(4, 2), &CoordinatorBugs::default()).unwrap();
        assert_eq!(a, b);
    }
}

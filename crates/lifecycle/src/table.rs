//! Bulk per-node lifecycle state tables for fleet-scale coordinators.
//!
//! A control plane over 100k+ nodes cannot afford a `BTreeMap<NodeId,
//! NodeLifecycle>` on its hot loop, and it *must not* hold raw
//! [`NodeState`]s it mutates by hand — the `A005` pass forbids that
//! outside this crate. [`LifecycleTable`] is the sanctioned middle
//! ground: a flat `Vec<NodeState>` indexed by node, where every change
//! still routes through the one [`transition`] function, per-state
//! population counts are maintained incrementally (`O(1)` snapshots for
//! per-tick summaries), and an optional journal records every applied
//! transition so tests can replay the whole history through
//! [`transition`] and prove the discipline held.

use crate::machine::{transition, LifecycleEvent, NodeState, TransitionError};

/// One applied transition, as recorded by the table's journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Node index in the table.
    pub node: u32,
    /// State before the event.
    pub from: NodeState,
    /// The applied event.
    pub event: LifecycleEvent,
    /// State after the event.
    pub to: NodeState,
}

/// Per-state population counts of a table, taken in `O(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateCounts {
    /// Nodes in `Healthy`.
    pub healthy: usize,
    /// Nodes in `Busy`.
    pub busy: usize,
    /// Nodes in `Suspect`.
    pub suspect: usize,
    /// Nodes in `Validating`.
    pub validating: usize,
    /// Nodes in `Quarantined`.
    pub quarantined: usize,
    /// Nodes in `Repaired`.
    pub repaired: usize,
}

impl StateCounts {
    /// Nodes counting toward serving capacity (healthy + busy + suspect).
    pub fn in_service(&self) -> usize {
        self.healthy + self.busy + self.suspect
    }

    /// Total nodes across every state.
    pub fn total(&self) -> usize {
        self.healthy + self.busy + self.suspect + self.validating + self.quarantined + self.repaired
    }
}

/// A bulk per-node lifecycle table: flat state storage, incremental
/// per-state counts, and an optional transition journal.
///
/// # Examples
///
/// ```
/// use anubis_lifecycle::{LifecycleEvent, LifecycleTable};
///
/// let mut table = LifecycleTable::new(4);
/// assert!(table.apply_if_legal(2, LifecycleEvent::RiskCrossed));
/// assert!(!table.apply_if_legal(2, LifecycleEvent::JobAssigned)); // suspect: no new work
/// assert_eq!(table.counts().suspect, 1);
/// ```
#[derive(Debug, Clone)]
pub struct LifecycleTable {
    states: Vec<NodeState>,
    counts: StateCounts,
    journal: Option<Vec<TransitionRecord>>,
}

/// Adjusts one state's population count by `delta` (`+1`/`-1`).
fn bump(counts: &mut StateCounts, state: NodeState, delta: isize) {
    let slot = match state {
        NodeState::Healthy => &mut counts.healthy,
        NodeState::Busy => &mut counts.busy,
        NodeState::Suspect => &mut counts.suspect,
        NodeState::Validating => &mut counts.validating,
        NodeState::Quarantined => &mut counts.quarantined,
        NodeState::Repaired => &mut counts.repaired,
    };
    *slot = slot.wrapping_add_signed(delta);
}

impl LifecycleTable {
    /// A table of `nodes` fresh (healthy) nodes with the journal off.
    pub fn new(nodes: usize) -> Self {
        Self {
            states: vec![NodeState::Healthy; nodes],
            counts: StateCounts {
                healthy: nodes,
                ..StateCounts::default()
            },
            journal: None,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the table tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Read-only view of every node's state, indexed by node. Handing
    /// out the slice is safe: consumers can interrogate states (the
    /// predicate methods) but all mutation still comes back through
    /// [`LifecycleTable::apply`].
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// One node's state, or `None` when `node` is out of range.
    pub fn state(&self, node: usize) -> Option<NodeState> {
        self.states.get(node).copied()
    }

    /// Per-state population counts (maintained incrementally).
    pub fn counts(&self) -> StateCounts {
        self.counts
    }

    /// Shared implementation of [`LifecycleTable::apply`] /
    /// [`LifecycleTable::apply_if_legal`]. Uniquely named on purpose: the
    /// A001 pass walks a name-based call graph from the public surface,
    /// and a generic method name here would alias unrelated `apply`s
    /// elsewhere in the workspace.
    fn apply_inner(
        &mut self,
        node: usize,
        event: LifecycleEvent,
    ) -> Result<NodeState, TransitionError> {
        let Some(slot) = self.states.get_mut(node) else {
            return Err(TransitionError {
                from: NodeState::Healthy,
                event,
            });
        };
        let from = *slot;
        let to = transition(from, event)?;
        *slot = to;
        bump(&mut self.counts, from, -1);
        bump(&mut self.counts, to, 1);
        if let Some(journal) = self.journal.as_mut() {
            journal.push(TransitionRecord {
                node: node.min(u32::MAX as usize) as u32,
                from,
                event,
                to,
            });
        }
        Ok(to)
    }

    /// Applies `event` to `node` through [`transition`].
    ///
    /// # Errors
    ///
    /// Returns the [`TransitionError`] (table unchanged) when the event
    /// is illegal in the node's current state or `node` is out of range
    /// (reported as an illegal transition from `Healthy`).
    pub fn apply(
        &mut self,
        node: usize,
        event: LifecycleEvent,
    ) -> Result<NodeState, TransitionError> {
        self.apply_inner(node, event)
    }

    /// Applies `event` when it is legal in the node's current state,
    /// returning whether it was applied. The gated twin of
    /// [`LifecycleTable::apply`] for coordinators whose proposals may
    /// legitimately race a state change (e.g. an incident report for a
    /// node that already left `Busy`).
    pub fn apply_if_legal(&mut self, node: usize, event: LifecycleEvent) -> bool {
        self.apply_inner(node, event).is_ok()
    }

    /// Whether `event` is legal in `node`'s current state.
    pub fn can(&self, node: usize, event: LifecycleEvent) -> bool {
        self.states
            .get(node)
            .is_some_and(|state| transition(*state, event).is_ok())
    }

    /// Turns the transition journal on (empty) — subsequent applies are
    /// recorded.
    pub fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// The recorded transitions (empty when the journal is off).
    pub fn journal(&self) -> &[TransitionRecord] {
        self.journal.as_deref().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_applies_incrementally() {
        let mut table = LifecycleTable::new(3);
        assert_eq!(table.counts().healthy, 3);
        assert!(table.apply_if_legal(0, LifecycleEvent::RiskCrossed));
        assert!(table.apply_if_legal(0, LifecycleEvent::ValidationStarted));
        assert!(table.apply_if_legal(1, LifecycleEvent::JobAssigned));
        let counts = table.counts();
        assert_eq!(
            (counts.healthy, counts.busy, counts.validating),
            (1, 1, 1),
            "incremental counts must match the applied transitions"
        );
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.in_service(), 2);
    }

    #[test]
    fn illegal_events_leave_the_table_unchanged() {
        let mut table = LifecycleTable::new(1);
        assert!(table.apply(0, LifecycleEvent::ValidationPassed).is_err());
        assert!(table.apply(7, LifecycleEvent::RiskCrossed).is_err());
        assert_eq!(table.counts().healthy, 1);
        assert!(table.state(0).is_some_and(NodeState::is_healthy));
        assert_eq!(table.state(7), None);
    }

    #[test]
    fn journal_records_every_applied_transition() {
        let mut table = LifecycleTable::new(2);
        table.enable_journal();
        assert!(table.apply_if_legal(1, LifecycleEvent::RiskCrossed));
        assert!(!table.apply_if_legal(1, LifecycleEvent::JobAssigned)); // illegal: not recorded
        assert!(table.apply_if_legal(1, LifecycleEvent::ValidationStarted));
        let journal = table.journal();
        assert_eq!(journal.len(), 2);
        for record in journal {
            assert_eq!(
                transition(record.from, record.event),
                Ok(record.to),
                "journal must replay through the single transition function"
            );
        }
    }
}

//! The node-lifecycle state machine and its single transition function.
//!
//! The machine encodes the operator loop of paper Section 3: a node
//! serves jobs while healthy, is flagged *suspect* when its incident
//! probability crosses the Selector's threshold, runs validation
//! benchmarks, and is quarantined/repaired when a defect is confirmed.
//! Two discipline rules are built into the transition table itself:
//!
//! - a node never starts validation while serving a job (there is no
//!   `Busy` + [`LifecycleEvent::ValidationStarted`] transition), and
//! - a suspect node never takes a new job before it was validated (no
//!   `Suspect` + [`LifecycleEvent::JobAssigned`] transition) — a crossed
//!   threshold cannot be skipped.
//!
//! Everything else in the workspace must change node state exclusively
//! through [`transition`] (usually via the [`NodeLifecycle`] wrapper);
//! the `A005` analysis pass enforces that no other crate constructs or
//! mutates a [`NodeState`].

use std::error::Error;
use std::fmt;

/// Operational lifecycle state of one fleet node.
///
/// Outside `anubis-lifecycle`, interrogate the state with the `is_*`
/// predicates instead of naming variants: any `NodeState::<Variant>`
/// token in another crate is an A005 finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeState {
    /// In service and idle; no elevated risk known.
    Healthy,
    /// In service, running a customer job.
    Busy,
    /// Incident probability crossed the Selector threshold; awaiting
    /// validation (still in service, but not schedulable).
    Suspect,
    /// Validation benchmarks are running; out of service.
    Validating,
    /// Confirmed defective; out of service awaiting repair.
    Quarantined,
    /// Repair finished; awaiting return to service.
    Repaired,
}

impl NodeState {
    /// Whether the node is `Healthy`.
    pub fn is_healthy(self) -> bool {
        self == Self::Healthy
    }

    /// Whether the node is serving a job.
    pub fn is_busy(self) -> bool {
        self == Self::Busy
    }

    /// Whether the node awaits validation after a threshold crossing.
    pub fn is_suspect(self) -> bool {
        self == Self::Suspect
    }

    /// Whether validation benchmarks are running on the node.
    pub fn is_validating(self) -> bool {
        self == Self::Validating
    }

    /// Whether the node is quarantined as confirmed-defective.
    pub fn is_quarantined(self) -> bool {
        self == Self::Quarantined
    }

    /// Whether the node finished repair but has not returned to service.
    pub fn is_repaired(self) -> bool {
        self == Self::Repaired
    }

    /// Whether the node counts toward serving capacity: `Healthy`,
    /// `Busy`, or `Suspect` (a suspect node is still in the fleet — it
    /// only stops taking *new* work).
    pub fn in_service(self) -> bool {
        matches!(self, Self::Healthy | Self::Busy | Self::Suspect)
    }

    /// Stable lower-case name, for traces and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Busy => "busy",
            Self::Suspect => "suspect",
            Self::Validating => "validating",
            Self::Quarantined => "quarantined",
            Self::Repaired => "repaired",
        }
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Events that move a node through the lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The Selector's incident probability crossed the threshold.
    RiskCrossed,
    /// A model refresh lowered the probability back under the threshold.
    RiskCleared,
    /// The orchestrator placed a customer job on the node.
    JobAssigned,
    /// The node's job finished normally.
    JobCompleted,
    /// Validation benchmarks started on the node.
    ValidationStarted,
    /// Validation passed: no defect found.
    ValidationPassed,
    /// Validation confirmed a defect.
    DefectConfirmed,
    /// A customer-visible incident struck the node mid-stress.
    IncidentObserved,
    /// Repair (or hot-buffer swap) finished.
    RepairCompleted,
    /// The repaired node re-entered the serving pool.
    ReturnedToService,
}

impl LifecycleEvent {
    /// Stable lower-kebab name, for traces and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::RiskCrossed => "risk-crossed",
            Self::RiskCleared => "risk-cleared",
            Self::JobAssigned => "job-assigned",
            Self::JobCompleted => "job-completed",
            Self::ValidationStarted => "validation-started",
            Self::ValidationPassed => "validation-passed",
            Self::DefectConfirmed => "defect-confirmed",
            Self::IncidentObserved => "incident-observed",
            Self::RepairCompleted => "repair-completed",
            Self::ReturnedToService => "returned-to-service",
        }
    }
}

impl fmt::Display for LifecycleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An event that is illegal in the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// The state the event was applied in.
    pub from: NodeState,
    /// The rejected event.
    pub event: LifecycleEvent,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal lifecycle transition: `{}` in state `{}`",
            self.event, self.from
        )
    }
}

impl Error for TransitionError {}

/// The single transition function of the node lifecycle.
///
/// Every state change in the workspace routes through here; the match is
/// exhaustive over the legal pairs and everything else is a
/// [`TransitionError`]. Notable rejections (the discipline the model
/// checker relies on): `Busy` + `ValidationStarted` and `Suspect` +
/// `JobAssigned`.
///
/// # Errors
///
/// Returns [`TransitionError`] when `event` is not legal in `state`.
///
/// # Examples
///
/// ```
/// use anubis_lifecycle::{transition, LifecycleEvent, NodeState};
///
/// let s = transition(NodeState::Healthy, LifecycleEvent::RiskCrossed).unwrap();
/// assert!(s.is_suspect());
/// // A suspect node cannot take a job before it was validated.
/// assert!(transition(s, LifecycleEvent::JobAssigned).is_err());
/// ```
pub fn transition(state: NodeState, event: LifecycleEvent) -> Result<NodeState, TransitionError> {
    use LifecycleEvent as E;
    use NodeState as S;
    let next = match (state, event) {
        // Risk assessment (the Selector).
        (S::Healthy, E::RiskCrossed) => S::Suspect,
        (S::Suspect, E::RiskCrossed) => S::Suspect, // idempotent re-flag
        (S::Suspect, E::RiskCleared) => S::Healthy,
        // Job scheduling: only healthy nodes take work.
        (S::Healthy, E::JobAssigned) => S::Busy,
        (S::Busy, E::JobCompleted) => S::Healthy,
        // Validation (the Validator): suspects only — never a busy node.
        (S::Suspect, E::ValidationStarted) => S::Validating,
        (S::Validating, E::ValidationPassed) => S::Healthy,
        (S::Validating, E::DefectConfirmed) => S::Quarantined,
        // Incidents confirm a defect under stress (job or benchmarks).
        (S::Busy, E::IncidentObserved) => S::Quarantined,
        (S::Validating, E::IncidentObserved) => S::Quarantined,
        // Repair and return to service.
        (S::Quarantined, E::RepairCompleted) => S::Repaired,
        (S::Repaired, E::ReturnedToService) => S::Healthy,
        (from, event) => return Err(TransitionError { from, event }),
    };
    Ok(next)
}

/// Tracks one node's lifecycle, routing every change through
/// [`transition`].
///
/// The inner state is private on purpose: holders cannot bypass the
/// machine, and the `A005` pass additionally rejects any crate that
/// constructs a bare [`NodeState`] to sidestep it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLifecycle {
    state: NodeState,
}

impl Default for NodeLifecycle {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeLifecycle {
    /// A fresh node, starting `Healthy`.
    pub fn new() -> Self {
        Self {
            state: NodeState::Healthy,
        }
    }

    /// The current state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Applies `event` through [`transition`], updating the tracked state.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] (state unchanged) when the event is
    /// illegal in the current state.
    pub fn apply(&mut self, event: LifecycleEvent) -> Result<NodeState, TransitionError> {
        let next = transition(self.state, event)?;
        self.state = next;
        Ok(next)
    }

    /// Whether `event` would be legal in the current state.
    pub fn can(&self, event: LifecycleEvent) -> bool {
        transition(self.state(), event).is_ok()
    }

    /// Whether the node counts toward serving capacity.
    pub fn in_service(&self) -> bool {
        self.state().in_service()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LifecycleEvent as E;
    use NodeState as S;

    const ALL_STATES: [NodeState; 6] = [
        S::Healthy,
        S::Busy,
        S::Suspect,
        S::Validating,
        S::Quarantined,
        S::Repaired,
    ];
    const ALL_EVENTS: [LifecycleEvent; 10] = [
        E::RiskCrossed,
        E::RiskCleared,
        E::JobAssigned,
        E::JobCompleted,
        E::ValidationStarted,
        E::ValidationPassed,
        E::DefectConfirmed,
        E::IncidentObserved,
        E::RepairCompleted,
        E::ReturnedToService,
    ];

    #[test]
    fn happy_path_through_the_whole_lifecycle() {
        let mut life = NodeLifecycle::new();
        assert!(life.state().is_healthy());
        assert_eq!(life.apply(E::RiskCrossed).unwrap(), S::Suspect);
        assert_eq!(life.apply(E::ValidationStarted).unwrap(), S::Validating);
        assert_eq!(life.apply(E::DefectConfirmed).unwrap(), S::Quarantined);
        assert_eq!(life.apply(E::RepairCompleted).unwrap(), S::Repaired);
        assert_eq!(life.apply(E::ReturnedToService).unwrap(), S::Healthy);
        assert_eq!(life.apply(E::JobAssigned).unwrap(), S::Busy);
        assert_eq!(life.apply(E::JobCompleted).unwrap(), S::Healthy);
    }

    #[test]
    fn busy_node_never_starts_validation() {
        assert!(transition(S::Busy, E::ValidationStarted).is_err());
    }

    #[test]
    fn suspect_node_never_takes_a_job() {
        assert!(transition(S::Suspect, E::JobAssigned).is_err());
    }

    #[test]
    fn validation_requires_a_crossed_threshold() {
        assert!(transition(S::Healthy, E::ValidationStarted).is_err());
    }

    #[test]
    fn failed_apply_leaves_state_unchanged() {
        let mut life = NodeLifecycle::new();
        life.apply(E::JobAssigned).unwrap();
        let err = life.apply(E::ValidationStarted).unwrap_err();
        assert_eq!(err.from, S::Busy);
        assert_eq!(err.event, E::ValidationStarted);
        assert!(life.state().is_busy());
    }

    #[test]
    fn exactly_the_documented_pairs_are_legal() {
        let mut legal = 0usize;
        for &state in &ALL_STATES {
            for &event in &ALL_EVENTS {
                if transition(state, event).is_ok() {
                    legal += 1;
                }
            }
        }
        assert_eq!(legal, 12, "transition table size is pinned");
    }

    #[test]
    fn in_service_matches_states() {
        for &state in &ALL_STATES {
            let expected = matches!(state, S::Healthy | S::Busy | S::Suspect);
            assert_eq!(state.in_service(), expected, "{state}");
        }
    }

    #[test]
    fn predicates_and_names_are_consistent() {
        assert!(S::Healthy.is_healthy());
        assert!(S::Busy.is_busy());
        assert!(S::Suspect.is_suspect());
        assert!(S::Validating.is_validating());
        assert!(S::Quarantined.is_quarantined());
        assert!(S::Repaired.is_repaired());
        let names: Vec<&str> = ALL_STATES.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn error_display_names_state_and_event() {
        let err = transition(S::Busy, E::ValidationStarted).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("validation-started"), "{text}");
        assert!(text.contains("busy"), "{text}");
    }
}

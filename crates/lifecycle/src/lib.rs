//! Verified node-lifecycle state machine (ROADMAP item 4).
//!
//! SuperBench's core promise is that proactive validation never makes the
//! fleet *less* reliable: nodes move healthy → suspect → validating →
//! quarantined → repaired without deadlocking capacity or skipping a
//! crossed risk threshold. This crate makes that loop explicit and
//! auditable:
//!
//! - [`machine`] defines [`NodeState`], [`LifecycleEvent`], and the
//!   **single** [`transition`] function every state change in the
//!   workspace must route through. The `A005` analysis pass
//!   (`cargo xtask analyze`) rejects any other crate that constructs or
//!   mutates a `NodeState` directly.
//! - [`model`] is a small-model abstraction of the Selector/Validator
//!   coordinator loop plus an exhaustive enumerator
//!   ([`check_model`]) over bounded event interleavings. It verifies the
//!   three ROADMAP safety/liveness properties — every threshold crossing
//!   is eventually validated, no validation is scheduled on a node
//!   serving a job, and coordinator-initiated quarantine never drops the
//!   fleet below its capacity floor — and produces a printable
//!   counterexample trace when a (deliberately injected) coordinator bug
//!   violates one. `cargo xtask modelcheck` drives a grid of model
//!   configurations through it on the deterministic executor.
//!
//! Outside this crate, code interrogates state through the predicate
//! methods ([`NodeState::is_healthy`] and friends) and changes it through
//! [`NodeLifecycle::apply`]; naming a `NodeState` variant anywhere else is
//! an A005 finding.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod machine;
pub mod model;
pub mod table;

pub use machine::{transition, LifecycleEvent, NodeLifecycle, NodeState, TransitionError};
pub use model::{
    check_model, CheckOutcome, CoordinatorBugs, ModelConfig, Property, Stimulus, Violation,
};
pub use table::{LifecycleTable, StateCounts, TransitionRecord};

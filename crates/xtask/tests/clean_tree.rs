//! The workspace itself must lint clean: `cargo run -p anubis-xtask --
//! lint` exits 0, with every intentional exemption recorded in the
//! checked-in allowlist. This test is the same walk the CLI performs.

use anubis_xtask::{run_lint, Allowlist};
use std::path::Path;

#[test]
fn workspace_has_no_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist_text = std::fs::read_to_string(root.join("lint-allowlist.txt"))
        .expect("workspace allowlist exists");
    let allowlist = Allowlist::parse(&allowlist_text).expect("workspace allowlist parses");
    let diagnostics = run_lint(&root, &allowlist).expect("lint walk succeeds");
    assert!(
        diagnostics.is_empty(),
        "workspace lint violations:\n{}",
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

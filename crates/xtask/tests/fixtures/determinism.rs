//! Fixture: determinism violations (never compiled, scanned by tests).

use std::time::{Instant, SystemTime};

/// Measures elapsed time the wrong way.
pub fn elapsed() -> u64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    let mut rng = rand::thread_rng();
    start.elapsed().as_secs()
}

#[cfg(test)]
mod tests {
    use std::time::Instant; // exempt: test-only code
}

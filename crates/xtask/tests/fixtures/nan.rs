//! Fixture: NaN-safety violations (never compiled, scanned by tests).

/// Sorts with a NaN-propagating comparator.
pub fn sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Compares against a float literal.
pub fn is_day(hours: f64) -> bool {
    hours == 24.0
}

/// Sentinel comparisons are permitted.
pub fn is_trivial(x: f64) -> bool {
    x == 0.0 || x == 1.0
}

//! Fixture: a fully conforming module (zero diagnostics expected).

/// Adds one, saturating.
pub fn add_one(x: u64) -> u64 {
    x.saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds() {
        assert_eq!(add_one(1), 2);
        let missing: Option<u8> = None;
        assert_eq!(missing.unwrap_or(9), 9);
    }
}

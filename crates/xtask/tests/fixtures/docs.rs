use std::fmt::Debug;

pub struct Undocumented;

/// Documented.
pub struct Fine;

pub fn also_undocumented() {}

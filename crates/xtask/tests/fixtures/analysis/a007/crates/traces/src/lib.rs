//! A007 fixture: a worker closure accumulating into a captured `&mut`
//! variable instead of returning per-chunk results through the
//! executor's slot-output protocol.

/// Sums chunk lengths by mutating a captured accumulator — the classic
/// race the discipline pass exists to reject.
pub fn total_len(values: &[f64]) -> f64 {
    let mut total = 0.0;
    anubis_parallel::map_chunks(values, 64, 0, |_idx, chunk| {
        total += chunk.len() as f64;
    });
    total
}

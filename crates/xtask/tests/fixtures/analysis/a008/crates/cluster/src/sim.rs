//! A008 fixture: a direct allocation inside an arena-clean function.

/// Registered arena-clean in `AnalysisConfig::arena_clean_entries`: all
/// per-call scratch must come from `anubis-arena`, so the direct `vec!`
/// below is an enforced finding even though it never escapes.
pub fn try_allocate(n: usize) -> usize {
    let scratch = vec![0u32; n];
    scratch.len()
}

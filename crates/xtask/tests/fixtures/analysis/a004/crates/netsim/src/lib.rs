//! A004 fixture: result depends on `HashMap` iteration order.

use std::collections::HashMap;

/// Folds link loads in whatever order the hasher yields.
pub fn first_loaded(loads: &HashMap<u32, u64>) -> u32 {
    let mut found = 0;
    for (port, load) in loads {
        if *load > 0 && found == 0 {
            found = *port;
        }
    }
    found
}

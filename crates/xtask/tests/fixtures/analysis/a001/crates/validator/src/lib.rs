//! A001 fixture: a gated public API that transitively reaches `.unwrap()`.

/// Public entry point; panics two hops away.
pub fn entry(input: Option<u32>) -> u32 {
    helper(input)
}

fn helper(input: Option<u32>) -> u32 {
    input.unwrap()
}

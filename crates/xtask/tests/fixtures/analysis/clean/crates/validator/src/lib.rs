//! Clean fixture: panic-free, float-safe, allocation-free, deterministic.

/// Saturating accumulator with no analysis findings.
pub fn add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

/// Total-ordering comparison done the approved way.
pub fn ordered(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_lt()
}

//! A005 fixture: the machine itself may name states freely.

/// Lifecycle state (fixture copy).
pub enum NodeState {
    /// In service.
    Healthy,
    /// Risk crossed the threshold.
    Suspect,
}

/// The single transition function: state construction is legal here.
pub fn transition(state: NodeState) -> NodeState {
    match state {
        NodeState::Healthy => NodeState::Suspect,
        NodeState::Suspect => NodeState::Healthy,
    }
}

//! A005 fixture: a hand-rolled lifecycle transition outside the machine.

/// Gated public entry whose helper constructs a state by hand.
pub fn allocate() -> bool {
    mark_suspect()
}

fn mark_suspect() -> bool {
    let state = NodeState::Suspect;
    let _ = state;
    true
}

//! A003 fixture: an allocation reachable from the `fit` hot entry.

/// Hot entry point registered in [`AnalysisConfig::hot_entries`].
pub fn fit(n: usize) -> usize {
    accumulate(n)
}

fn accumulate(n: usize) -> usize {
    let mut buffer = Vec::new();
    let mut i = 0;
    while i < n {
        buffer.push(i);
        i += 1;
    }
    buffer.len()
}

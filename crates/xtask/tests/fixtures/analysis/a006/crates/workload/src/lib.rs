//! A006 fixture: hash-container iteration inside a parallel chunk body.
//! The closure is owned by the calling function in the token model, so
//! the caller is the deterministic root and the site is distance 0.

use std::collections::HashMap;

/// Parallel map whose chunk body iterates a `HashMap` — the iteration
/// order leaks into the per-slot outputs.
pub fn spread(m: &HashMap<u32, f64>, slots: usize) -> Vec<f64> {
    anubis_parallel::map_indexed(slots, 0, |i| {
        m.values().copied().next().unwrap_or(0.0) + i as f64
    })
}

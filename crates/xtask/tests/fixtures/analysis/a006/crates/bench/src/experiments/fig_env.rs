//! A006 fixture: a deterministic root (experiment renderer) reaching an
//! environment read two calls deep. The helpers are private, so only the
//! public renderer roots the chain.

/// The renderer: deterministic root by path.
pub fn run() -> bool {
    helper()
}

fn helper() -> bool {
    deep()
}

fn deep() -> bool {
    std::env::var("FIXTURE_KNOB").is_ok()
}

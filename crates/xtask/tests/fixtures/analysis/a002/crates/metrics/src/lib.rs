//! A002 fixture: NaN-unsafe float equality on non-sentinel operands.

/// Convergence check that silently fails on NaN.
pub fn converged(delta: f64, target: f64) -> bool {
    delta == target
}

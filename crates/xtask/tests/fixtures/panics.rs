//! Fixture: panic-freedom violations (never compiled, scanned by tests).

/// Panics four different ways.
pub fn boom(x: Option<u8>) -> u8 {
    let v = x.unwrap();
    let w = x.expect("present");
    if v == 0 {
        panic!("zero");
    }
    if w == 1 {
        todo!();
    }
    v + w
}

/// Fine: defaulting is not panicking, and `unwrap_or` is not `unwrap`.
pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or_default().min(x.unwrap_or(3))
}

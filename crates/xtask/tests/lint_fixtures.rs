//! Fixture-based linter tests: each fixture under `tests/fixtures/` holds
//! known violations, and these tests assert the exact `file:line`
//! diagnostics the checks must produce. The fixtures are never compiled —
//! the lint walker also skips any directory named `fixtures`.

use anubis_xtask::{check_file, Allowlist, Diagnostic};
use std::fs;
use std::path::Path;

/// Reads a fixture and lints it under a pseudo workspace path (the path
/// decides which checks apply: gated crate, src/, test code).
fn lint_fixture(fixture: &str, pseudo_path: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("read fixture {}: {error}", path.display()));
    check_file(pseudo_path, &source)
}

/// The `(check, line)` pairs of a diagnostic list, for exact comparisons.
fn keyed(diags: &[Diagnostic]) -> Vec<(&str, usize)> {
    diags.iter().map(|d| (d.check, d.line)).collect()
}

#[test]
fn determinism_fixture_exact_lines() {
    let diags = lint_fixture("determinism.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        keyed(&diags),
        vec![
            ("determinism", 3), // use …::Instant
            ("determinism", 3), // use …::SystemTime
            ("determinism", 7), // Instant::now()
            ("determinism", 8), // SystemTime::now()
            ("determinism", 9), // thread_rng()
        ],
        "diagnostics: {diags:#?}"
    );
    assert!(diags.iter().all(|d| d.path == "crates/core/src/fixture.rs"));
}

#[test]
fn panics_fixture_exact_lines_in_gated_crate() {
    let diags = lint_fixture("panics.rs", "crates/hwsim/src/fixture.rs");
    assert_eq!(
        keyed(&diags),
        vec![
            ("panic-freedom", 5),  // .unwrap()
            ("panic-freedom", 6),  // .expect(…)
            ("panic-freedom", 8),  // panic!
            ("panic-freedom", 11), // todo!
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn panics_fixture_is_clean_outside_gated_crates() {
    let diags = lint_fixture("panics.rs", "crates/metrics/src/fixture.rs");
    assert!(diags.is_empty(), "diagnostics: {diags:#?}");
}

#[test]
fn nan_fixture_exact_lines() {
    let diags = lint_fixture("nan.rs", "crates/metrics/src/fixture.rs");
    assert_eq!(
        keyed(&diags),
        vec![
            ("nan-safety", 5),  // partial_cmp(..).unwrap()
            ("nan-safety", 10), // == 24.0
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn docs_fixture_exact_lines() {
    let diags = lint_fixture("docs.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        keyed(&diags),
        vec![
            ("doc-coverage", 1), // missing //! module doc
            ("doc-coverage", 3), // pub struct Undocumented
            ("doc-coverage", 8), // pub fn also_undocumented
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn clean_fixture_has_no_diagnostics_even_when_gated() {
    let diags = lint_fixture("clean.rs", "crates/hwsim/src/fixture.rs");
    assert!(diags.is_empty(), "diagnostics: {diags:#?}");
}

#[test]
fn diagnostics_render_as_path_line_check_message() {
    let diags = lint_fixture("nan.rs", "crates/metrics/src/fixture.rs");
    let first = diags.first().expect("nan fixture has diagnostics");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/metrics/src/fixture.rs:5: [nan-safety] "),
        "rendered: {rendered}"
    );
}

#[test]
fn allowlist_filters_matching_diagnostics() {
    let diags = lint_fixture("determinism.rs", "crates/core/src/fixture.rs");
    let allowlist =
        Allowlist::parse("determinism crates/core/src/fixture.rs Instant\n").expect("valid");
    let surviving: Vec<&Diagnostic> = diags.iter().filter(|d| !allowlist.permits(d)).collect();
    // The two `Instant` hits are exempt; `SystemTime` and `thread_rng` stay.
    assert_eq!(surviving.len(), 3, "surviving: {surviving:#?}");
    assert!(surviving.iter().all(|d| !d.message.contains("`Instant`")));
}

//! Adversarial inputs for the token-level source model.
//!
//! The analyzer never parses Rust properly — it works on a masked,
//! tokenized approximation — so these tests pin its behavior on exactly
//! the inputs where approximations rot: raw strings full of code-shaped
//! text, `r#` raw identifiers, deeply nested generics, closures inside
//! closures, and macro invocations. A property-based section then churns
//! generated function soups through the full analysis to establish that
//! no input shape panics the pipeline.

use anubis_xtask::model::{CallKind, Workspace};
use anubis_xtask::passes::{run_analysis, AnalysisConfig};
use proptest::prelude::*;

fn ws(source: &str) -> Workspace {
    Workspace::from_sources([("crates/workload/src/lib.rs", source)])
}

#[test]
fn raw_strings_full_of_code_are_inert() {
    // The raw string contains a function declaration, an env read, and an
    // unbalanced close brace; none of it may leak into the model.
    let source = "pub fn render() -> String {\n\
                      let t = r#\"fn fake() { std::env::var(\"HOME\"); } }\"#;\n\
                      t.to_owned()\n\
                  }\n";
    let w = ws(source);
    assert_eq!(w.fns.len(), 1);
    assert_eq!(w.fns[0].name, "render");
    assert!(
        w.fns[0]
            .calls
            .iter()
            .all(|c| c.name != "var" && c.name != "fake"),
        "calls leaked from raw string: {:?}",
        w.fns[0].calls
    );
    // The whole analysis sees no env read either.
    assert!(run_analysis(&w, &AnalysisConfig::default()).is_empty());
}

#[test]
fn raw_identifiers_are_single_tokens_and_resolve_as_calls() {
    // `r#loop` and `r#fn` are ordinary identifiers; in particular `r#fn`
    // must not open a function item and `r#` must not split into `r`.
    let source = "pub fn entry() { r#loop(); }\n\
                  pub fn r#loop() { let r#fn = 1; let _ = r#fn; }\n";
    let w = ws(source);
    let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["entry", "r#loop"]);
    let call = &w.fns[0].calls[0];
    assert_eq!(call.name, "r#loop");
    assert_eq!(call.kind, CallKind::Free);
}

#[test]
fn nested_generics_do_not_derail_fn_scanning() {
    let source = "pub fn pack<T: Ord>(rows: Vec<Vec<(T, f64)>>) -> Vec<Vec<T>> {\n\
                      rows.into_iter().map(|r| r.into_iter().map(|(t, _)| t).collect::<Vec<T>>()).collect::<Vec<Vec<T>>>()\n\
                  }\n\
                  pub fn after() {}\n";
    let w = ws(source);
    let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["pack", "after"], "generics swallowed a sibling fn");
    assert_eq!(w.fns[0].params.len(), 1);
}

#[test]
fn closure_in_closure_calls_attribute_to_the_enclosing_fn() {
    let source = "pub fn outer(vs: &[Vec<f64>]) -> usize {\n\
                      vs.iter().map(|v| v.iter().filter(|x| keep(**x)).count()).sum()\n\
                  }\n\
                  fn keep(x: f64) -> bool { x > 0.0 }\n";
    let w = ws(source);
    assert_eq!(w.fns[0].name, "outer");
    assert!(
        w.fns[0]
            .calls
            .iter()
            .any(|c| c.name == "keep" && c.kind == CallKind::Free),
        "call inside nested closure lost: {:?}",
        w.fns[0].calls
    );
}

#[test]
fn nested_fn_bodies_are_not_owned_by_the_outer_fn() {
    // `inner`'s env read belongs to `inner`; `outer` reaches it only
    // through the call edge, never by token ownership.
    let source = "pub fn outer() -> bool {\n\
                      fn inner() -> bool { std::env::var(\"X\").is_ok() }\n\
                      inner()\n\
                  }\n";
    let w = ws(source);
    let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["outer", "inner"]);
    let outer_owned_text: Vec<&str> = w
        .body_tokens(&w.fns[0])
        .map(|(_, t)| t.text.as_str())
        .collect();
    assert!(
        !outer_owned_text.contains(&"var"),
        "outer owns inner's tokens"
    );
}

#[test]
fn macro_arguments_still_surface_calls() {
    // Call extraction deliberately looks inside macro invocation
    // arguments: `assert_eq!(helper(), 3)` must produce the `helper`
    // edge or reachability passes under-approximate.
    let source = "pub fn entry() { assert_eq!(helper(), 3); }\n\
                  fn helper() -> usize { 3 }\n";
    let w = ws(source);
    assert!(
        w.fns[0]
            .calls
            .iter()
            .any(|c| c.name == "helper" && c.kind == CallKind::Free),
        "call inside macro args lost: {:?}",
        w.fns[0].calls
    );
    assert!(
        w.fns[0]
            .calls
            .iter()
            .any(|c| c.name == "assert_eq" && c.kind == CallKind::Macro),
        "macro call itself lost: {:?}",
        w.fns[0].calls
    );
}

#[test]
fn byte_and_char_literals_with_braces_are_inert() {
    let source = "pub fn scan(s: &str) -> usize {\n\
                      s.chars().filter(|&c| c == '{' || c == '}').count() + (b'{' as usize)\n\
                  }\n\
                  pub fn after() {}\n";
    let w = ws(source);
    let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        ["scan", "after"],
        "brace literals broke brace matching"
    );
}

// --- property-based section ------------------------------------------------

/// Fragment pool for generated function bodies: statements exercising
/// every token shape the model special-cases. Indexed by strategy so case
/// generation stays deterministic.
const BODY_FRAGMENTS: &[&str] = &[
    "let x = vec![1, 2, 3];",
    "let s = r#\"fn not_a_fn() { } }\"#;",
    "let _ = helper(0);",
    "let _ = std::mem::take(&mut Vec::<u8>::new());",
    "let f = |a: usize| a + 1; let _ = f(2);",
    "let g = |v: &[u8]| v.iter().map(|b| b + 1).count(); let _ = g(&[1]);",
    "let r#match = 1usize; let _ = r#match;",
    "assert_eq!(1 + 1, 2);",
    "let _ = \"fn fake(){\".len();",
    "let _: Vec<Vec<f64>> = Vec::new();",
    "if b'}' == 125 { let _ = 0; }",
];

fn body_strategy() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(prop::sample::select(BODY_FRAGMENTS.to_vec()), 0..6)
}

proptest! {
    #[test]
    fn generated_sources_never_break_the_model_or_the_passes(
        bodies in prop::collection::vec(body_strategy(), 1..5),
        public_mask in prop::collection::vec(any::<bool>(), 1..5),
    ) {
        // Assemble one fn per generated body (plus the `helper` the
        // fragments call) and push the result through scanning and the
        // full analysis. The invariants: every assembled fn is found,
        // token offsets strictly increase, and nothing panics.
        let mut source = String::from("fn helper(x: usize) -> usize { x }\n");
        for (i, frags) in bodies.iter().enumerate() {
            let vis = if *public_mask.get(i).unwrap_or(&false) { "pub " } else { "" };
            source.push_str(&format!("{vis}fn gen_{i}() {{\n"));
            for frag in frags {
                source.push_str("    ");
                source.push_str(frag);
                source.push('\n');
            }
            source.push_str("}\n");
        }
        let w = ws(&source);
        prop_assert_eq!(w.fns.len(), bodies.len() + 1, "fns lost in: \n{}", source);
        for file in &w.files {
            for pair in file.tokens.windows(2) {
                prop_assert!(pair[0].offset < pair[1].offset);
            }
        }
        let findings = run_analysis(&w, &AnalysisConfig::default());
        // Raw strings and string literals must never manufacture taint.
        prop_assert!(
            findings.iter().all(|f| f.code != "A006" && f.code != "A007"),
            "phantom findings: {:#?}\nsource:\n{}", findings, source
        );
    }
}

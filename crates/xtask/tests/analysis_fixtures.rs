//! One fixture mini-crate per diagnostic code: each triggers exactly its
//! own code, and the clean fixture triggers nothing. The fixtures live
//! under `tests/fixtures/analysis/<code>/` shaped like a real workspace
//! (`crates/<name>/src/…`), so crate gating and the hot-entry registry
//! behave exactly as they do on the real tree.

use anubis_xtask::model::Workspace;
use anubis_xtask::passes::{run_analysis, AnalysisConfig, Finding};
use std::path::PathBuf;

fn analyze_fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analysis")
        .join(name);
    let ws = Workspace::scan(&root).expect("scan fixture");
    run_analysis(&ws, &AnalysisConfig::default())
}

#[test]
fn a001_fixture_reports_panic_reachability_with_call_path() {
    let findings = analyze_fixture("a001");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A001");
    assert_eq!(f.path, "crates/validator/src/lib.rs");
    assert_eq!(f.func, "entry");
    assert!(
        f.message.contains("entry -> helper"),
        "call path missing: {}",
        f.message
    );
    assert!(
        f.message.contains("`.unwrap()`"),
        "panic source missing: {}",
        f.message
    );
}

#[test]
fn a002_fixture_reports_float_equality() {
    let findings = analyze_fixture("a002");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A002");
    assert_eq!(f.path, "crates/metrics/src/lib.rs");
    assert_eq!(f.func, "converged");
}

#[test]
fn a003_fixture_reports_hot_path_allocation_with_call_path() {
    let findings = analyze_fixture("a003");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A003");
    assert_eq!(f.path, "crates/selector/src/coxtime.rs");
    assert_eq!(f.func, "accumulate");
    assert_eq!(f.kind, "Vec::new");
    assert!(
        f.message.contains("fit -> accumulate"),
        "call path from hot entry missing: {}",
        f.message
    );
}

#[test]
fn a004_fixture_reports_hash_iteration() {
    let findings = analyze_fixture("a004");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A004");
    assert_eq!(f.path, "crates/netsim/src/lib.rs");
    assert_eq!(f.func, "first_loaded");
    assert_eq!(f.kind, "hash-iteration");
}

#[test]
fn a005_fixture_reports_out_of_band_state_construction() {
    let findings = analyze_fixture("a005");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A005");
    assert_eq!(f.path, "crates/cluster/src/lib.rs");
    assert_eq!(f.func, "mark_suspect");
    assert_eq!(f.kind, "construct");
    assert!(
        f.message.contains("allocate -> mark_suspect"),
        "call path from public entry missing: {}",
        f.message
    );
}

#[test]
fn a006_fixture_reports_taint_chains_and_chunk_body_hash_iteration() {
    let findings = analyze_fixture("a006");
    // The hash iteration in the chunk body draws both its direct-scan
    // (A004) and interprocedural (A006) findings; the env chain is A006
    // only. Exactly these three.
    assert_eq!(findings.len(), 3, "findings: {findings:#?}");

    let env = findings
        .iter()
        .find(|f| f.code == "A006" && f.kind == "env-read")
        .expect("env-read finding");
    assert_eq!(env.path, "crates/bench/src/experiments/fig_env.rs");
    assert_eq!(env.func, "run");
    assert!(
        env.message.contains("run -> helper -> deep"),
        "call path missing: {}",
        env.message
    );
    assert!(
        env.message.contains("std::env::var"),
        "source missing: {}",
        env.message
    );

    let hash = findings
        .iter()
        .find(|f| f.code == "A006" && f.kind == "hash-iteration")
        .expect("hash-iteration finding");
    assert_eq!(hash.path, "crates/workload/src/lib.rs");
    assert_eq!(hash.func, "spread");
    assert!(
        hash.message.contains("directly touches"),
        "chunk-body site should be distance 0: {}",
        hash.message
    );

    assert!(
        findings
            .iter()
            .any(|f| f.code == "A004" && f.func == "spread" && f.kind == "hash-iteration"),
        "A004 companion missing: {findings:#?}"
    );
}

#[test]
fn a007_fixture_reports_mut_capture_in_parallel_closure() {
    let findings = analyze_fixture("a007");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A007");
    assert_eq!(f.path, "crates/traces/src/lib.rs");
    assert_eq!(f.func, "total_len");
    assert_eq!(f.kind, "mut-capture");
    assert!(
        f.message.contains("captured `total`"),
        "captured variable missing: {}",
        f.message
    );
}

#[test]
fn a008_fixture_reports_direct_allocation_in_arena_clean_fn() {
    let findings = analyze_fixture("a008");
    assert_eq!(findings.len(), 1, "findings: {findings:#?}");
    let f = &findings[0];
    assert_eq!(f.code, "A008");
    assert_eq!(f.path, "crates/cluster/src/sim.rs");
    assert_eq!(f.func, "try_allocate");
    assert_eq!(f.kind, "non-arena-alloc");
    assert!(f.enforced, "arena-clean violations are hard failures");
    assert!(
        f.message.contains("escape: local"),
        "escape class missing: {}",
        f.message
    );
}

#[test]
fn a003_fixture_site_is_inventoried_as_arena_able() {
    // The a003 fixture's hot-path buffer never escapes `accumulate`, so
    // the informational arena-able inventory proposes it for conversion,
    // with the call path from the hot entry.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/analysis/a003");
    let ws = Workspace::scan(&root).expect("scan fixture");
    let report = anubis_xtask::passes::arena_able_report(&ws, &AnalysisConfig::default());
    assert_eq!(report.len(), 1, "report: {report:#?}");
    let site = &report[0];
    assert_eq!(site.path, "crates/selector/src/coxtime.rs");
    assert_eq!(site.func, "accumulate");
    assert_eq!(site.kind, "Vec::new");
    assert!(
        site.via.contains("fit -> accumulate"),
        "call path missing: {}",
        site.via
    );
}

#[test]
fn clean_fixture_reports_nothing() {
    let findings = analyze_fixture("clean");
    assert!(findings.is_empty(), "findings: {findings:#?}");
}

//! The committed `analysis-baseline.json` must exactly match what the
//! analysis reports on the current tree: no unrecorded findings (a
//! regression CI would reject) and no stale keys (fixed findings must be
//! removed from the baseline via `--write-baseline`).

use anubis_xtask::model::Workspace;
use anubis_xtask::passes::{run_analysis, AnalysisConfig};
use anubis_xtask::report::Baseline;
use std::fs;
use std::path::PathBuf;

#[test]
fn workspace_matches_committed_analysis_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::scan(&root).expect("scan workspace");
    let findings = run_analysis(&ws, &AnalysisConfig::default());
    let current = Baseline::from_findings(&findings);

    let text = fs::read_to_string(root.join("analysis-baseline.json")).expect("read baseline");
    let committed = Baseline::parse(&text).expect("parse baseline");

    let regressions = committed.regressions(&current);
    assert!(
        regressions.is_empty(),
        "unbaselined findings (rerun `cargo xtask analyze --write-baseline` \
         if deliberate): {regressions:#?}"
    );
    let stale = committed.stale(&current);
    assert!(
        stale.is_empty(),
        "stale baseline keys (rerun `cargo xtask analyze --write-baseline`): {stale:#?}"
    );
    assert_eq!(
        current.to_json(),
        committed.to_json(),
        "baseline file must be byte-regenerable from the current tree"
    );
}

//! Deterministic workspace file walker.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the lint never descends into: build output, vendored
/// dependency stand-ins (which keep their own lint configuration), VCS
/// metadata, and lint-test fixtures (which violate invariants on purpose).
const SKIPPED_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, skipping [`SKIPPED_DIRS`],
/// returned as workspace-relative forward-slash paths in sorted order so
/// diagnostics are stable across platforms and runs.
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if path.is_dir() {
                if !SKIPPED_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(relative) = path.strip_prefix(root) {
                    files.push(
                        relative
                            .components()
                            .map(|c| c.as_os_str().to_string_lossy())
                            .collect::<Vec<_>>()
                            .join("/"),
                    );
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_crate_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).expect("walk xtask");
        assert!(files.contains(&"src/walk.rs".to_owned()));
        assert!(files.iter().all(|f| !f.contains("fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walker output must be sorted");
    }
}

//! Cross-crate call graph over the token-level [`crate::model`].
//!
//! Nodes are the non-test functions of a [`Workspace`]; edges connect a
//! caller to every workspace function its call sites *may* resolve to.
//! Resolution is name-based and deliberately over-approximate (a static
//! analysis that misses a panic path is worse than one that reports a
//! spurious edge), but it is not naive — unconstrained name matching would
//! resolve `Vec::new()` to every `new` in the workspace. The rules:
//!
//! - **Qualified calls** (`Q::f(..)`) resolve only to functions whose
//!   `impl` type is `Q` or whose file stem is `Q` (module-style calls like
//!   `mask::mask`). A qualifier matching nothing in the workspace (e.g.
//!   `Vec`, `String`, `f64`) resolves to no edge at all: the callee is
//!   foreign, and foreign panics are modeled by the passes' direct token
//!   scans, not by the graph.
//! - **Crate-qualified calls** (`anubis_parallel::map_chunks(..)`,
//!   `crate::helper(..)`) resolve to the free functions of that crate
//!   directory sharing the name (`anubis` itself maps to `crates/core`,
//!   `crate` to the caller's own crate). Without this rule, cross-crate
//!   facade calls — exactly the ones the interprocedural taint pass must
//!   follow — would produce no edges at all.
//! - **Method calls** (`recv.f(..)`) resolve to every workspace function
//!   named `f` that takes `self` — the receiver's type is unknown at the
//!   token level, so all impls are candidates. Names on the
//!   [`STD_COLLISION_METHODS`] list (`unwrap`, `clone`, `len`, …) resolve
//!   to nothing: they almost always target std types, and their effects
//!   are modeled by the passes' direct token scans.
//! - **Free calls** (`f(..)`) resolve to every function named `f` that
//!   does *not* take `self`; same-file candidates are preferred when any
//!   exist (an unqualified call usually targets the local module), and a
//!   name matching one of the caller's own parameters resolves to nothing
//!   (it invokes a closure argument).
//! - **Macro calls** never produce edges; passes inspect them directly.
//!
//! Traversals are breadth-first over sorted adjacency, so reported
//! shortest paths are deterministic across runs and platforms.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::model::{Call, CallKind, Workspace};

/// Method names so ubiquitous in std that a method call with one of them
/// almost certainly targets a std type, not a workspace impl that happens
/// to share the name (`.expect()` on an `Option` must not edge into a
/// parser's `expect` method). Their panics and allocations are modeled by
/// the passes' direct token scans, so dropping the edges loses nothing.
const STD_COLLISION_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "iter",
    "iter_mut",
    "into_iter",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "next",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "sort",
    "sort_by",
    "extend",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
];

/// A call graph: `edges[i]` lists the function indices `fns[i]` may call.
#[derive(Debug)]
pub struct CallGraph {
    /// Adjacency by function index into [`Workspace::fns`], sorted and
    /// deduplicated per node.
    pub edges: Vec<Vec<usize>>,
}

/// Result of a multi-source BFS: distance and predecessor per function.
#[derive(Debug)]
pub struct Reach {
    /// `dist[i]` is the edge count from the nearest root to function `i`,
    /// or `usize::MAX` when unreachable.
    pub dist: Vec<usize>,
    /// `prev[i]` is the function preceding `i` on one shortest path, or
    /// `usize::MAX` for roots and unreachable functions.
    pub prev: Vec<usize>,
}

impl CallGraph {
    /// Builds the graph for `ws` using the resolution rules above.
    pub fn build(ws: &Workspace) -> Self {
        let index = NameIndex::build(ws);
        let mut edges = Vec::with_capacity(ws.fns.len());
        for (caller, item) in ws.fns.iter().enumerate() {
            let mut out: Vec<usize> = item
                .calls
                .iter()
                .flat_map(|call| index.resolve(ws, caller, call))
                .filter(|&callee| callee != caller)
                .collect();
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        Self { edges }
    }

    /// Multi-source BFS from `roots`, following edges caller → callee.
    pub fn reach(&self, roots: &[usize]) -> Reach {
        let n = self.edges.len();
        let mut dist = vec![usize::MAX; n];
        let mut prev = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &root in &sorted_roots {
            if root < n && dist[root] == usize::MAX {
                dist[root] = 0;
                queue.push_back(root);
            }
        }
        while let Some(node) = queue.pop_front() {
            for &next in &self.edges[node] {
                if dist[next] == usize::MAX {
                    dist[next] = dist[node] + 1;
                    prev[next] = node;
                    queue.push_back(next);
                }
            }
        }
        Reach { dist, prev }
    }

    /// BFS over *reversed* edges: which functions can reach `targets`.
    /// `dist[i]` becomes the shortest call-chain length from `i` into the
    /// target set, and following `prev` from `i` walks *toward* a target.
    pub fn reach_reverse(&self, targets: &[usize]) -> Reach {
        let reversed = self.reversed();
        reversed.reach(targets)
    }

    /// The graph with every edge flipped (callee → caller).
    fn reversed(&self) -> CallGraph {
        let mut edges = vec![Vec::new(); self.edges.len()];
        for (caller, out) in self.edges.iter().enumerate() {
            for &callee in out {
                edges[callee].push(caller);
            }
        }
        for out in &mut edges {
            out.sort_unstable();
            out.dedup();
        }
        CallGraph { edges }
    }
}

impl Reach {
    /// The shortest path from `start` following predecessor links until a
    /// node with no predecessor (a root/target), as function indices
    /// starting at `start`. Empty when `start` is unreachable.
    pub fn path_from(&self, start: usize) -> Vec<usize> {
        if start >= self.dist.len() || self.dist[start] == usize::MAX {
            return Vec::new();
        }
        let mut path = vec![start];
        let mut node = start;
        while self.prev[node] != usize::MAX {
            node = self.prev[node];
            path.push(node);
            if path.len() > self.dist.len() {
                break; // Defensive: malformed predecessor chain.
            }
        }
        path
    }
}

/// Name-keyed lookup tables for call resolution. `pub(crate)` so the A007
/// pass can resolve the calls of one closure body in isolation.
pub(crate) struct NameIndex {
    /// Method name → indices of fns taking `self` (or any impl fn).
    methods: BTreeMap<String, Vec<usize>>,
    /// Free name → indices of fns not taking `self` and outside impls.
    free: BTreeMap<String, Vec<usize>>,
    /// `Type::name` or `stem::name` → indices (qualified resolution).
    qualified: BTreeMap<(String, String), Vec<usize>>,
    /// `(crate_dir, name)` → indices of that crate's free fns, for
    /// crate-qualified calls (`anubis_parallel::map_chunks`).
    crate_free: BTreeMap<(String, String), Vec<usize>>,
}

impl NameIndex {
    pub(crate) fn build(ws: &Workspace) -> Self {
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut qualified: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut crate_free: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, item) in ws.fns.iter().enumerate() {
            if item.in_test {
                continue;
            }
            if let Some(ty) = &item.impl_type {
                qualified
                    .entry((ty.clone(), item.name.clone()))
                    .or_default()
                    .push(i);
                // Associated fns are also reachable as method calls when
                // they take self; `Self::name()` inside the impl resolves
                // via the qualified table.
                if item.has_self {
                    methods.entry(item.name.clone()).or_default().push(i);
                }
            } else {
                free.entry(item.name.clone()).or_default().push(i);
                crate_free
                    .entry((ws.files[item.file].crate_name.clone(), item.name.clone()))
                    .or_default()
                    .push(i);
            }
            // Module-style qualification: `stem::name(..)`.
            let stem = ws.files[item.file].stem.clone();
            qualified
                .entry((stem, item.name.clone()))
                .or_default()
                .push(i);
        }
        Self {
            methods,
            free,
            qualified,
            crate_free,
        }
    }

    /// The crate directory a qualifier names, if any: `anubis_parallel` →
    /// `parallel`, `anubis` → `core` (the package at `crates/core`),
    /// `crate` → the caller's own crate directory.
    fn qualifier_crate(ws: &Workspace, caller: usize, qualifier: &str) -> Option<String> {
        if qualifier == "crate" {
            return Some(ws.files[ws.fns[caller].file].crate_name.clone());
        }
        if qualifier == "anubis" {
            return Some("core".to_owned());
        }
        qualifier.strip_prefix("anubis_").map(str::to_owned)
    }

    pub(crate) fn resolve(&self, ws: &Workspace, caller: usize, call: &Call) -> Vec<usize> {
        match call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Method => {
                if STD_COLLISION_METHODS.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                self.methods.get(&call.name).cloned().unwrap_or_default()
            }
            CallKind::Qualified => {
                let Some(qualifier) = &call.qualifier else {
                    return Vec::new();
                };
                // `Self::f` resolves against the caller's own impl type.
                let qualifier = if qualifier == "Self" {
                    match &ws.fns[caller].impl_type {
                        Some(ty) => ty.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    qualifier.clone()
                };
                // Crate-qualified facade call: `anubis_parallel::f(..)` /
                // `crate::f(..)` edges into that crate's free fns.
                if let Some(dir) = Self::qualifier_crate(ws, caller, &qualifier) {
                    if let Some(hits) = self.crate_free.get(&(dir, call.name.clone())) {
                        return hits.clone();
                    }
                }
                self.qualified
                    .get(&(qualifier, call.name.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            CallKind::Free => {
                // `f(x)` where `f` is a parameter of the caller invokes a
                // closure, never a named workspace function.
                if ws.fns[caller].params.iter().any(|p| p.name == call.name) {
                    return Vec::new();
                }
                let Some(candidates) = self.free.get(&call.name) else {
                    return Vec::new();
                };
                // Prefer same-file candidates: an unqualified call almost
                // always targets the enclosing module.
                let file = ws.fns[caller].file;
                let local: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| ws.fns[i].file == file)
                    .collect();
                if local.is_empty() {
                    candidates.clone()
                } else {
                    local
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files.iter().copied())
    }

    fn find(ws: &Workspace, qual: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual_name() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_call_resolves_same_file_first() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn top() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let top = find(&w, "top");
        let local = find(&w, "helper");
        assert_eq!(g.edges[top], vec![local]);
    }

    #[test]
    fn free_call_falls_back_to_cross_file() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn top() { helper(); }\n"),
            ("crates/b/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let top = find(&w, "top");
        let helper = find(&w, "helper");
        assert_eq!(g.edges[top], vec![helper]);
    }

    #[test]
    fn qualified_call_requires_matching_type_or_stem() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "struct S;\nimpl S { pub fn new() -> S { S } }\n\
                 pub fn make() -> S { S::new() }\n\
                 pub fn noise() { Vec::new(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct T;\nimpl T { pub fn new() -> T { T } }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let make = find(&w, "make");
        let s_new = find(&w, "S::new");
        assert_eq!(
            g.edges[make],
            vec![s_new],
            "S::new resolves to S's impl only"
        );
        let noise = find(&w, "noise");
        assert!(g.edges[noise].is_empty(), "Vec::new resolves to nothing");
    }

    #[test]
    fn module_stem_qualification_resolves() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn top() { util::helper(); }\n"),
            ("crates/a/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let top = find(&w, "top");
        let helper = find(&w, "helper");
        assert_eq!(g.edges[top], vec![helper]);
    }

    #[test]
    fn crate_qualified_calls_resolve_across_crates() {
        let w = ws(&[
            (
                "crates/selector/src/select.rs",
                "pub fn pick() { anubis_parallel::map_items(); crate::local(); }\n",
            ),
            ("crates/selector/src/lib.rs", "pub fn local() {}\n"),
            ("crates/parallel/src/lib.rs", "pub fn map_items() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let pick = find(&w, "pick");
        let local = find(&w, "local");
        let map_items = find(&w, "map_items");
        assert_eq!(
            g.edges[pick],
            vec![local.min(map_items), local.max(map_items)]
        );
    }

    #[test]
    fn self_qualified_resolves_to_own_impl() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n  fn inner(&self) {}\n  pub fn outer(&self) { Self::inner(self); }\n}\n",
        )]);
        let g = CallGraph::build(&w);
        let outer = find(&w, "S::outer");
        let inner = find(&w, "S::inner");
        assert!(g.edges[outer].contains(&inner));
    }

    #[test]
    fn method_call_resolves_to_all_self_takers() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "struct A;\nimpl A { pub fn go(&self) {} }\npub fn drive(a: &A) { a.go(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct B;\nimpl B { pub fn go(&self) {} }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let drive = find(&w, "drive");
        let a_go = find(&w, "A::go");
        let b_go = find(&w, "B::go");
        assert_eq!(g.edges[drive], vec![a_go.min(b_go), a_go.max(b_go)]);
    }

    #[test]
    fn reverse_reach_reports_path_toward_target() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { mid(); }\nfn mid() { sink(); }\nfn sink() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let api = find(&w, "api");
        let mid = find(&w, "mid");
        let sink = find(&w, "sink");
        let reach = g.reach_reverse(&[sink]);
        assert_eq!(reach.dist[api], 2);
        assert_eq!(reach.path_from(api), vec![api, mid, sink]);
    }

    #[test]
    fn forward_reach_from_roots() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { mid(); }\nfn mid() {}\nfn orphan() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let api = find(&w, "api");
        let mid = find(&w, "mid");
        let orphan = find(&w, "orphan");
        let reach = g.reach(&[api]);
        assert_eq!(reach.dist[api], 0);
        assert_eq!(reach.dist[mid], 1);
        assert_eq!(reach.dist[orphan], usize::MAX);
        assert!(reach.path_from(orphan).is_empty());
    }

    #[test]
    fn test_fns_are_not_resolution_targets() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { helper(); }\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n",
        )]);
        let g = CallGraph::build(&w);
        let api = find(&w, "api");
        assert!(g.edges[api].is_empty());
    }
}

//! `cargo xtask modelcheck` — exhaustive verification of the
//! Selector/Validator coordination loop.
//!
//! Drives [`anubis_lifecycle::check_model`] over a grid of small fleet
//! configurations (3–5 nodes, bounded job/risk/incident budgets) and
//! reports the first counterexample, if any. The enumerator explores
//! *every* reachable interleaving of the bounded event streams, so a pass
//! is a proof over the model — not a sampled test — that:
//!
//! 1. every node whose incident probability crosses the threshold is
//!    eventually validated (`eventual-validation`);
//! 2. no validation is scheduled on a node serving a job
//!    (`no-validation-while-serving`);
//! 3. quarantine never drops the fleet below the capacity floor
//!    (`capacity-floor`);
//!
//! plus the meta-property that every state change the coordinator makes
//! is a legal `transition` (`transition-discipline`).
//!
//! Configurations run concurrently on the deterministic executor
//! ([`anubis_parallel::map_items`]), so the output ordering — and any
//! counterexample found — is independent of thread count. The `--bug`
//! flag injects a known coordinator defect to demonstrate the failure
//! path end to end: the command prints the counterexample trace, writes
//! it to `--out`, and exits nonzero.

use anubis_lifecycle::{check_model, CheckOutcome, CoordinatorBugs, ModelConfig};
use anubis_parallel::map_items;
use std::fmt::Write as _;

/// The verification grid: exhaustive budgets on 3-node fleets, reduced
/// budgets as the node count (and per-node state fan-out) grows. Sized to
/// finish in seconds while still covering both floor regimes (slack and
/// tight) at every fleet size.
pub fn default_grid() -> Vec<ModelConfig> {
    vec![
        // 3 nodes, full budgets, slack floor.
        ModelConfig {
            nodes: 3,
            min_in_service: 1,
            jobs: 3,
            risk_crossings: 3,
            incidents: 2,
        },
        // 3 nodes, tight floor: scheduling must defer validations.
        ModelConfig {
            nodes: 3,
            min_in_service: 2,
            jobs: 3,
            risk_crossings: 3,
            incidents: 2,
        },
        ModelConfig {
            nodes: 4,
            min_in_service: 2,
            jobs: 3,
            risk_crossings: 3,
            incidents: 2,
        },
        ModelConfig {
            nodes: 4,
            min_in_service: 3,
            jobs: 2,
            risk_crossings: 3,
            incidents: 1,
        },
        ModelConfig {
            nodes: 5,
            min_in_service: 3,
            jobs: 2,
            risk_crossings: 2,
            incidents: 2,
        },
        ModelConfig {
            nodes: 5,
            min_in_service: 4,
            jobs: 2,
            risk_crossings: 2,
            incidents: 1,
        },
    ]
}

/// One configuration's verification result.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// The configuration checked.
    pub config: ModelConfig,
    /// What the enumerator found.
    pub outcome: CheckOutcome,
}

/// Checks every configuration in `configs` under `bugs`, in parallel.
///
/// # Errors
///
/// Returns the enumerator's own error (invalid configuration) verbatim;
/// property violations are *not* errors — they come back inside
/// [`CheckOutcome::violation`].
pub fn check_grid(
    configs: &[ModelConfig],
    bugs: CoordinatorBugs,
    threads: usize,
) -> Result<Vec<ConfigResult>, String> {
    let outcomes = map_items(configs, threads, |config| check_model(config, &bugs));
    configs
        .iter()
        .zip(outcomes)
        .map(|(config, outcome)| {
            outcome.map(|outcome| ConfigResult {
                config: *config,
                outcome,
            })
        })
        .collect()
}

/// Renders the human-readable report: one line per configuration plus the
/// first counterexample in full, if any.
pub fn render(results: &[ConfigResult]) -> String {
    let mut out = String::new();
    for result in results {
        let ModelConfig {
            nodes,
            min_in_service,
            jobs,
            risk_crossings,
            incidents,
        } = result.config;
        let verdict = if result.outcome.violation.is_some() {
            "VIOLATED"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "modelcheck: nodes={nodes} floor={min_in_service} jobs={jobs} \
             risks={risk_crossings} incidents={incidents}: {} state(s), {} transition(s) — {verdict}",
            result.outcome.states_explored, result.outcome.transitions,
        );
    }
    if let Some(result) = results.iter().find(|r| r.outcome.violation.is_some()) {
        if let Some(violation) = &result.outcome.violation {
            let _ = writeln!(out, "\n{violation}");
        }
    }
    out
}

/// The first violation across the grid, if any.
pub fn first_violation(results: &[ConfigResult]) -> Option<&ConfigResult> {
    results.iter().find(|r| r.outcome.violation.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anubis_lifecycle::Property;

    #[test]
    fn the_default_grid_verifies_clean() {
        // The smoke subset: full grids run in the CLI / CI. Two
        // configurations cover both floor regimes.
        let grid = &default_grid()[..2];
        let results = check_grid(grid, CoordinatorBugs::default(), 2).expect("valid configs");
        assert!(first_violation(&results).is_none(), "{}", render(&results));
        assert!(results.iter().all(|r| r.outcome.states_explored > 100));
    }

    #[test]
    fn an_injected_bug_produces_a_rendered_counterexample() {
        let grid = &default_grid()[..1];
        let bugs = CoordinatorBugs {
            validate_while_busy: true,
            ..CoordinatorBugs::default()
        };
        let results = check_grid(grid, bugs, 2).expect("valid configs");
        let bad = first_violation(&results).expect("bug must be caught");
        let violation = bad.outcome.violation.as_ref().expect("violation");
        assert_eq!(violation.property, Property::NoValidationWhileServing);
        let rendered = render(&results);
        assert!(rendered.contains("VIOLATED"), "{rendered}");
        assert!(rendered.contains("counterexample trace"), "{rendered}");
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let grid = &default_grid()[..2];
        let one = check_grid(grid, CoordinatorBugs::default(), 1).expect("valid");
        let four = check_grid(grid, CoordinatorBugs::default(), 4).expect("valid");
        assert_eq!(render(&one), render(&four));
    }

    #[test]
    fn invalid_configurations_surface_as_errors() {
        let bad = ModelConfig {
            nodes: 0,
            ..ModelConfig::default()
        };
        assert!(check_grid(&[bad], CoordinatorBugs::default(), 1).is_err());
    }
}

//! `anubis-xtask` — workspace maintenance commands.
//!
//! Currently one subcommand:
//!
//! ```text
//! cargo run -p anubis-xtask -- lint [--root <dir>] [--allowlist <file>]
//! ```
//!
//! which runs the invariant checks of [`anubis_xtask::checks`] over the
//! workspace and exits `1` when violations remain after applying the
//! allowlist (default: `lint-allowlist.txt` at the workspace root).

use anubis_xtask::{run_lint, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p anubis-xtask -- lint [--root <dir>] [--allowlist <file>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default workspace root: two levels up from this crate's manifest.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = default_root();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let value = iter.next();
        match (flag.as_str(), value) {
            ("--root", Some(value)) => root = PathBuf::from(value),
            ("--allowlist", Some(value)) => allowlist_path = Some(PathBuf::from(value)),
            _ => {
                eprintln!("unexpected argument `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allowlist.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err((line, reason)) => {
                eprintln!(
                    "{}:{line}: malformed allowlist: {reason}",
                    allowlist_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => Allowlist::empty(),
        Err(error) => {
            eprintln!("cannot read {}: {error}", allowlist_path.display());
            return ExitCode::from(2);
        }
    };

    match run_lint(&root, &allowlist) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("lint: no violations");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for diagnostic in &diagnostics {
                println!("{diagnostic}");
            }
            println!("lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("lint failed: {error}");
            ExitCode::from(2)
        }
    }
}

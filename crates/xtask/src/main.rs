//! `anubis-xtask` — workspace maintenance commands.
//!
//! Five subcommands:
//!
//! ```text
//! cargo xtask lint       [--root <dir>] [--allowlist <file>] [--allow-unused-allowlist]
//! cargo xtask analyze    [--root <dir>] [--baseline <file>] [--json <file>] [--write-baseline]
//!                        [--arena-report]
//! cargo xtask modelcheck [--out <file>] [--threads <n>]
//!                        [--bug <forget-risk|validate-busy|ignore-floor>]
//! cargo xtask profile    [<trace.jsonl>] [--top <n>]
//! cargo xtask perfgate   [--root <dir>] [--baseline <file>] [--current <file>] [--out <file>]
//!                        [--print-baseline]
//! ```
//!
//! `lint` runs the line-level invariant checks of [`anubis_xtask::checks`]
//! and exits `1` when violations remain after the allowlist (default:
//! `lint-allowlist.txt` at the workspace root). Stale allowlist entries —
//! ones that no longer exempt anything — also fail the run so they get
//! pruned; `--allow-unused-allowlist` tolerates them during refactors
//! (`--error-on-unused-allowlist` remains accepted as a no-op for older
//! scripts).
//!
//! `analyze` runs the call-graph passes of [`anubis_xtask::passes`]
//! (A001–A008) and compares the findings against the committed
//! `analysis-baseline.json`: only *regressions* — new finding keys or
//! grown counts — fail the build. `--write-baseline` regenerates the
//! baseline after intentional changes; `--json` writes a SARIF-style
//! report for CI artifacts. Findings under an *enforced* hot entry are
//! hard failures the baseline never absorbs. `--arena-report` prints the
//! A008 inventory of scope-local (arena-able) allocations in hot-entry
//! reach — conversion candidates, not findings.
//!
//! `modelcheck` exhaustively enumerates the Selector/Validator
//! coordination loop over small fleet models (see
//! [`anubis_xtask::modelcheck`]) and exits `1` with a printed
//! counterexample trace when a liveness/safety property is violated; the
//! trace is also written to `--out` for CI artifacts. `--bug` injects a
//! known coordinator defect to demonstrate the failure path.
//!
//! `profile` summarizes an `anubis-obs` trace (the repro binary's
//! `--trace` output, default `target/trace.jsonl`): top-k hot spans by
//! exclusive virtual time, a per-crate rollup, counter totals and
//! histograms.
//!
//! `perfgate` compares this run's bench medians
//! (`target/bench-current.jsonl`, written by the vendored Criterion
//! harness under `ANUBIS_BENCH_JSON`) against the `"kernels"` baseline in
//! `BENCH_2.json`, writes `target/BENCH_CURRENT.json` for CI artifacts,
//! and exits `1` when a tracked kernel regressed beyond the tolerance.

use anubis_lifecycle::CoordinatorBugs;
use anubis_xtask::model::Workspace;
use anubis_xtask::modelcheck as mc;
use anubis_xtask::passes::{run_analysis, AnalysisConfig};
use anubis_xtask::perf;
use anubis_xtask::profile::Profile;
use anubis_xtask::report::{to_sarif, Baseline};
use anubis_xtask::{run_lint_tracked, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask <lint|analyze|modelcheck|profile|perfgate>\n  \
lint       [--root <dir>] [--allowlist <file>] [--allow-unused-allowlist]\n  \
analyze    [--root <dir>] [--baseline <file>] [--json <file>] [--write-baseline] [--arena-report]\n  \
modelcheck [--out <file>] [--threads <n>] [--bug <forget-risk|validate-busy|ignore-floor>]\n  \
profile    [<trace.jsonl>] [--top <n>]\n  \
perfgate   [--root <dir>] [--baseline <file>] [--current <file>] [--out <file>] [--print-baseline]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("modelcheck") => modelcheck(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("perfgate") => perfgate(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default workspace root: two levels up from this crate's manifest.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = default_root();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut error_on_unused = true;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            // Stale entries fail by default; kept as an accepted no-op so
            // older scripts and CI configurations don't break.
            "--error-on-unused-allowlist" => {
                error_on_unused = true;
                continue;
            }
            "--allow-unused-allowlist" => {
                error_on_unused = false;
                continue;
            }
            "--root" => match iter.next() {
                Some(value) => root = PathBuf::from(value),
                None => return usage_error(flag),
            },
            "--allowlist" => match iter.next() {
                Some(value) => allowlist_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            _ => return usage_error(flag),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allowlist.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err((line, reason)) => {
                eprintln!(
                    "{}:{line}: malformed allowlist: {reason}",
                    allowlist_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => Allowlist::empty(),
        Err(error) => {
            eprintln!("cannot read {}: {error}", allowlist_path.display());
            return ExitCode::from(2);
        }
    };

    let outcome = match run_lint_tracked(&root, &allowlist) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("lint failed: {error}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    if outcome.diagnostics.is_empty() {
        println!("lint: no violations");
    } else {
        for diagnostic in &outcome.diagnostics {
            println!("{diagnostic}");
        }
        println!("lint: {} violation(s)", outcome.diagnostics.len());
        failed = true;
    }

    let unused: Vec<usize> = outcome
        .used_entries
        .iter()
        .enumerate()
        .filter(|(_, used)| !**used)
        .map(|(index, _)| index)
        .collect();
    if !unused.is_empty() {
        for &index in &unused {
            println!(
                "{}: stale allowlist entry `{}` no longer exempts anything",
                allowlist_path.display(),
                allowlist.describe(index)
            );
        }
        if error_on_unused {
            println!("lint: {} stale allowlist entr(ies)", unused.len());
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut arena_report = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--write-baseline" => {
                write_baseline = true;
                continue;
            }
            "--arena-report" => {
                arena_report = true;
                continue;
            }
            "--root" => match iter.next() {
                Some(value) => root = PathBuf::from(value),
                None => return usage_error(flag),
            },
            "--baseline" => match iter.next() {
                Some(value) => baseline_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            "--json" => match iter.next() {
                Some(value) => json_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            _ => return usage_error(flag),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analysis-baseline.json"));

    let ws = match Workspace::scan(&root) {
        Ok(ws) => ws,
        Err(error) => {
            eprintln!("analyze failed: {error}");
            return ExitCode::from(2);
        }
    };
    let findings = run_analysis(&ws, &AnalysisConfig::default());
    if arena_report {
        let sites = anubis_xtask::passes::arena_able_report(&ws, &AnalysisConfig::default());
        for site in &sites {
            println!(
                "{}:{}: A008(arena-able): `{}` in `{}` is scope-local (lines {}-{}), via {}",
                site.path, site.line, site.kind, site.func, site.span.0, site.span.1, site.via
            );
        }
        println!(
            "analyze: {} arena-able site(s) in hot-entry reach",
            sites.len()
        );
    }
    let current = Baseline::from_findings(&findings);
    // Enforced findings (allocations under an enforced hot entry) are
    // hard failures: the baseline excludes them by construction, so not
    // even --write-baseline can absorb one.
    let enforced: Vec<_> = findings.iter().filter(|f| f.enforced).collect();
    for finding in &enforced {
        println!("{finding} [enforced]");
    }

    if write_baseline {
        // Diff against the previous file so the refresh leaves an audit
        // trail of exactly which keys it pruned or added. A missing or
        // malformed previous baseline diffs as empty: every key reports
        // as added.
        let previous = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| Baseline::parse(&text).ok())
            .unwrap_or_default();
        if let Err(error) = std::fs::write(&baseline_path, current.to_json()) {
            eprintln!("cannot write {}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
        for line in anubis_xtask::report::refresh_summary(&previous, &current) {
            println!("{line}");
        }
        println!(
            "analyze: wrote {} ({} key(s), {} finding(s))",
            baseline_path.display(),
            current.findings.len(),
            findings.len()
        );
        if !enforced.is_empty() {
            println!(
                "analyze: {} enforced finding(s) remain hard failures",
                enforced.len()
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(reason) => {
                eprintln!("{}: malformed baseline: {reason}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(error) => {
            eprintln!("cannot read {}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &json_path {
        if let Err(error) = std::fs::write(json_path, to_sarif(&findings, &baseline)) {
            eprintln!("cannot write {}: {error}", json_path.display());
            return ExitCode::from(2);
        }
    }

    let regressions = baseline.regressions(&current);
    let regressed_keys: Vec<&str> = regressions.iter().map(|r| r.key.as_str()).collect();
    for finding in &findings {
        if regressed_keys.contains(&finding.key().as_str()) {
            println!("{finding}");
        }
    }
    for regression in &regressions {
        println!(
            "analyze: new finding `{}` ({} now vs {} baselined)",
            regression.key, regression.current, regression.baselined
        );
    }
    for stale in baseline.stale(&current) {
        println!(
            "analyze: stale baseline entry `{}` ({} now vs {} baselined) — \
             regenerate with --write-baseline",
            stale.key, stale.current, stale.baselined
        );
    }
    println!(
        "analyze: {} finding(s), {} baselined key(s), {} new, {} enforced",
        findings.len(),
        baseline.findings.len(),
        regressions.len(),
        enforced.len()
    );
    if regressions.is_empty() && enforced.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn modelcheck(args: &[String]) -> ExitCode {
    let mut out_path: Option<PathBuf> = None;
    let mut threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut bugs = CoordinatorBugs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => match iter.next() {
                Some(value) => out_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => threads = value,
                _ => return usage_error(flag),
            },
            "--bug" => match iter.next().map(String::as_str) {
                Some("forget-risk") => bugs.forget_pending_risk = true,
                Some("validate-busy") => bugs.validate_while_busy = true,
                Some("ignore-floor") => bugs.ignore_capacity_floor = true,
                _ => return usage_error(flag),
            },
            _ => return usage_error(flag),
        }
    }
    let out_path =
        out_path.unwrap_or_else(|| default_root().join("target").join("modelcheck-trace.txt"));

    let grid = mc::default_grid();
    let results = match mc::check_grid(&grid, bugs, threads) {
        Ok(results) => results,
        Err(error) => {
            eprintln!("modelcheck failed: {error}");
            return ExitCode::from(2);
        }
    };
    let report = mc::render(&results);
    print!("{report}");
    let states: usize = results.iter().map(|r| r.outcome.states_explored).sum();
    let transitions: usize = results.iter().map(|r| r.outcome.transitions).sum();
    println!(
        "modelcheck: {} configuration(s), {states} state(s), {transitions} transition(s) total",
        results.len()
    );
    if mc::first_violation(&results).is_some() {
        if let Some(parent) = out_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(error) = std::fs::write(&out_path, &report) {
            eprintln!("cannot write {}: {error}", out_path.display());
            return ExitCode::from(2);
        }
        println!(
            "modelcheck: counterexample written to {}",
            out_path.display()
        );
        return ExitCode::FAILURE;
    }
    println!("modelcheck: all properties hold on every configuration");
    ExitCode::SUCCESS
}

fn profile(args: &[String]) -> ExitCode {
    let mut trace_path: Option<PathBuf> = None;
    let mut top_k = 15usize;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--top" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => top_k = value,
                _ => return usage_error(flag),
            },
            other if !other.starts_with("--") && trace_path.is_none() => {
                trace_path = Some(PathBuf::from(other));
            }
            _ => return usage_error(flag),
        }
    }
    let trace_path =
        trace_path.unwrap_or_else(|| default_root().join("target").join("trace.jsonl"));

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "cannot read {}: {error}\n(generate one with `cargo run --release -p anubis-bench \
                 --bin repro -- <experiment> --trace`)",
                trace_path.display()
            );
            return ExitCode::from(2);
        }
    };
    match Profile::from_jsonl(&text) {
        Ok(profile) => {
            println!("profile of {}", trace_path.display());
            print!("{}", profile.render(top_k));
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{}: {error}", trace_path.display());
            ExitCode::from(2)
        }
    }
}

fn perfgate(args: &[String]) -> ExitCode {
    let mut root = default_root();
    let mut baseline_path: Option<PathBuf> = None;
    let mut current_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut print_baseline = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--print-baseline" => {
                print_baseline = true;
                continue;
            }
            "--root" => match iter.next() {
                Some(value) => root = PathBuf::from(value),
                None => return usage_error(flag),
            },
            "--baseline" => match iter.next() {
                Some(value) => baseline_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            "--current" => match iter.next() {
                Some(value) => current_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            "--out" => match iter.next() {
                Some(value) => out_path = Some(PathBuf::from(value)),
                None => return usage_error(flag),
            },
            _ => return usage_error(flag),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("BENCH_2.json"));
    let current_path =
        current_path.unwrap_or_else(|| root.join("target").join("bench-current.jsonl"));
    let out_path = out_path.unwrap_or_else(|| root.join("target").join("BENCH_CURRENT.json"));

    let current_text = match std::fs::read_to_string(&current_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "cannot read {}: {error}\n(run the smoke benches first: \
                 ANUBIS_BENCH_QUICK=1 ANUBIS_BENCH_JSON={} cargo bench -p anubis-bench)",
                current_path.display(),
                current_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let current = match perf::parse_current(&current_text) {
        Ok(current) => current,
        Err(error) => {
            eprintln!("{}: {error}", current_path.display());
            return ExitCode::from(2);
        }
    };

    if print_baseline {
        print!("{}", perf::baseline_snippet(&current));
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let baseline = match perf::parse_baseline(&baseline_text) {
        Ok(baseline) => baseline,
        Err(error) => {
            eprintln!("{}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let tolerance = match perf::tolerance_from_env() {
        Ok(tolerance) => tolerance,
        Err(error) => {
            eprintln!("perfgate: {error}");
            return ExitCode::from(2);
        }
    };

    let report = perf::compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if let Some(parent) = out_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(error) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {}: {error}", out_path.display());
        return ExitCode::from(2);
    }
    println!("perfgate: wrote {}", out_path.display());
    // Rotate the consumed measurements aside so a later gate run cannot
    // silently compare against this run's (now stale) numbers. Gate mode
    // only: `--print-baseline` is a read-only inspection.
    match perf::rotate_consumed(&current_path) {
        Ok(rotated) => println!(
            "perfgate: rotated {} -> {}",
            current_path.display(),
            rotated.display()
        ),
        Err(error) => {
            eprintln!("perfgate: {error}");
            return ExitCode::from(2);
        }
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(flag: &str) -> ExitCode {
    eprintln!("unexpected or incomplete argument `{flag}`\n{USAGE}");
    ExitCode::from(2)
}

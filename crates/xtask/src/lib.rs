//! Workspace invariant checker.
//!
//! The ANUBIS workspace makes two promises that ordinary compilation does
//! not verify: every simulation is **deterministic** (all randomness and
//! time flow from explicit seeds, so paper figures reproduce bit-for-bit)
//! and the fleet-facing crates are **panic-free** (a validation run on ten
//! thousand nodes must degrade into `Result`s, not abort). This crate is
//! the `cargo xtask`-style enforcement tool:
//!
//! ```text
//! cargo run -p anubis-xtask -- lint
//! ```
//!
//! walks every non-vendored `.rs` file and reports `file:line` diagnostics
//! for four invariants — see [`checks`] for their definitions — exiting
//! nonzero if any violation is not covered by the checked-in allowlist
//! (`lint-allowlist.txt` at the workspace root, format in [`allowlist`]).

pub mod allowlist;
pub mod checks;
pub mod mask;
pub mod spans;
pub mod walk;

pub use allowlist::Allowlist;
pub use checks::{check_file, classify, Diagnostic, GATED_CRATES};

use std::fs;
use std::io;
use std::path::Path;

/// Lints every workspace `.rs` file under `root`, filtering through
/// `allowlist`, and returns the surviving diagnostics sorted by path,
/// line, and check.
pub fn run_lint(root: &Path, allowlist: &Allowlist) -> io::Result<Vec<Diagnostic>> {
    let mut diagnostics = Vec::new();
    for relative in walk::rust_files(root)? {
        let source = fs::read_to_string(root.join(&relative))?;
        diagnostics.extend(
            check_file(&relative, &source)
                .into_iter()
                .filter(|diagnostic| !allowlist.permits(diagnostic)),
        );
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.check).cmp(&(&b.path, b.line, b.check)));
    Ok(diagnostics)
}

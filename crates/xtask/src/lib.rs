//! Workspace invariant checker.
//!
//! The ANUBIS workspace makes two promises that ordinary compilation does
//! not verify: every simulation is **deterministic** (all randomness and
//! time flow from explicit seeds, so paper figures reproduce bit-for-bit)
//! and the fleet-facing crates are **panic-free** (a validation run on ten
//! thousand nodes must degrade into `Result`s, not abort). This crate is
//! the `cargo xtask`-style enforcement tool:
//!
//! ```text
//! cargo run -p anubis-xtask -- lint
//! ```
//!
//! walks every non-vendored `.rs` file and reports `file:line` diagnostics
//! for four invariants — see [`checks`] for their definitions — exiting
//! nonzero if any violation is not covered by the checked-in allowlist
//! (`lint-allowlist.txt` at the workspace root, format in [`allowlist`]).

pub mod allowlist;
pub mod callgraph;
pub mod checks;
pub mod dataflow;
pub mod json;
pub mod mask;
pub mod model;
pub mod modelcheck;
pub mod passes;
pub mod perf;
pub mod profile;
pub mod report;
pub mod spans;
pub mod walk;

pub use allowlist::Allowlist;
pub use checks::{check_file, classify, Diagnostic, GATED_CRATES};

use std::fs;
use std::io;
use std::path::Path;

/// The result of a lint run: surviving diagnostics plus which allowlist
/// entries actually exempted something (for stale-entry detection).
#[derive(Debug)]
pub struct LintOutcome {
    /// Diagnostics not covered by the allowlist, sorted by path, line,
    /// and check.
    pub diagnostics: Vec<Diagnostic>,
    /// `used[i]` is `true` when allowlist entry `i` exempted at least one
    /// diagnostic this run.
    pub used_entries: Vec<bool>,
}

/// Lints every workspace `.rs` file under `root`, filtering through
/// `allowlist`, and returns the surviving diagnostics sorted by path,
/// line, and check.
pub fn run_lint(root: &Path, allowlist: &Allowlist) -> io::Result<Vec<Diagnostic>> {
    run_lint_tracked(root, allowlist).map(|outcome| outcome.diagnostics)
}

/// [`run_lint`], additionally tracking allowlist entry usage.
pub fn run_lint_tracked(root: &Path, allowlist: &Allowlist) -> io::Result<LintOutcome> {
    let mut diagnostics = Vec::new();
    let mut used_entries = vec![false; allowlist.len()];
    for relative in walk::rust_files(root)? {
        let source = fs::read_to_string(root.join(&relative))?;
        for diagnostic in check_file(&relative, &source) {
            match allowlist.permit_index(&diagnostic) {
                Some(index) => used_entries[index] = true,
                None => diagnostics.push(diagnostic),
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.check).cmp(&(&b.path, b.line, b.check)));
    Ok(LintOutcome {
        diagnostics,
        used_entries,
    })
}

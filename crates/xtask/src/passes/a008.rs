//! A008 — allocation-escape analysis and arena discipline.
//!
//! A003 answers "what allocates inside the measured hot paths"; this pass
//! answers the two follow-up questions that make the report actionable:
//!
//! 1. **Which of those allocations are per-call temporaries?** Every
//!    direct allocation site carries an escape class from the token-level
//!    lattice in [`crate::dataflow`] ([`Escape`](crate::dataflow::Escape)).
//!    A site that provably dies inside its function — never returned,
//!    stored into a place, or captured by a closure — is *arena-able*:
//!    it can be replaced by a pooled buffer from `anubis-arena` without
//!    changing any output byte. [`arena_able`] inventories these for
//!    every A003 hot entry's reach; the `analyze` command prints the
//!    inventory as an informational report (not findings — the committed
//!    baseline stays at zero A008 entries).
//!
//! 2. **Do the converted functions stay clean?** Functions registered in
//!    [`AnalysisConfig::arena_clean_entries`] have been converted to
//!    arena/pooled scratch; any *direct* allocation site in their own
//!    body (closures included) is an enforced finding the baseline never
//!    absorbs. Direct sites only, deliberately: enforcement through the
//!    over-approximate name-based call graph would import collision
//!    noise (`decide` resolves to every `decide` in the workspace), and
//!    the transitive allocation budget is already A003's job. Calls into
//!    the sanctioned arena crates record no sites at extraction
//!    ([`AnalysisConfig::arena_crates`]), so `arena.take()` and friends
//!    are free by construction.

use super::{path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::dataflow::Summaries;
use crate::model::Workspace;

/// Runs the enforcement half of the pass: every direct allocation site
/// inside an arena-clean-registered function is an enforced finding.
pub fn run(
    ws: &Workspace,
    _graph: &CallGraph,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let file_path = &ws.files[item.file].path;
        let registered = config
            .arena_clean_entries
            .iter()
            .any(|e| item.name == e.func && file_path.contains(e.path.as_str()));
        if !registered {
            continue;
        }
        for site in &summaries.alloc_sites[index] {
            let message = format!(
                "`{}` allocates directly in arena-clean `{}` (lines {}-{}, escape: {}); \
                 per-call scratch must come from `anubis-arena` or a caller-provided buffer",
                site.kind,
                item.qual_name(),
                site.span.0,
                site.span.1,
                site.escape.slug(),
            );
            findings.push(Finding {
                code: "A008",
                path: file_path.clone(),
                line: site.line,
                func: item.qual_name(),
                kind: "non-arena-alloc".to_owned(),
                message,
                enforced: true,
            });
        }
    }
    findings
}

/// One arena-able site: a scope-local allocation in a function reachable
/// from an A003 hot entry. These are candidates for conversion, reported
/// informationally by `cargo xtask analyze`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaAble {
    /// Workspace-relative file of the site.
    pub path: String,
    /// Qualified name of the containing function.
    pub func: String,
    /// 1-based line of the allocating construct.
    pub line: usize,
    /// First and last line of the enclosing statement.
    pub span: (usize, usize),
    /// Allocation kind (`vec!`, `collect`, `Vec::with_capacity`, …).
    pub kind: String,
    /// Call path from the nearest hot entry.
    pub via: String,
}

/// The reporting half: every non-escaping ([`Escape::Local`]
/// (crate::dataflow::Escape::Local)) allocation site reachable from an
/// A003 hot entry, sorted by (path, line, kind) for stable output.
pub fn arena_able(
    ws: &Workspace,
    graph: &CallGraph,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Vec<ArenaAble> {
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, item)| {
            !item.in_test
                && config.hot_entries.iter().any(|entry| {
                    item.name == entry.func
                        && ws.files[item.file].path.contains(entry.path.as_str())
                })
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach(&roots);

    let mut out = Vec::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test || reach.dist[index] == usize::MAX {
            continue;
        }
        let mut entry_path = reach.path_from(index);
        entry_path.reverse();
        let via = path_string(ws, &entry_path);
        for site in &summaries.alloc_sites[index] {
            if site.escape.escapes() {
                continue;
            }
            out.push(ArenaAble {
                path: ws.files[item.file].path.clone(),
                func: item.qual_name(),
                line: site.line,
                span: site.span,
                kind: site.kind.clone(),
                via: via.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.kind).cmp(&(&b.path, b.line, &b.kind)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;
    use crate::passes::HotEntry;

    fn setup(files: &[(&str, &str)], config: AnalysisConfig) -> (Vec<Finding>, Vec<ArenaAble>) {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let summaries = Summaries::compute(&ws, &graph, &config);
        let findings = run(&ws, &graph, &summaries, &config);
        let report = arena_able(&ws, &graph, &summaries, &config);
        (findings, report)
    }

    #[test]
    fn allocation_in_arena_clean_fn_is_enforced() {
        let mut config = AnalysisConfig::bare();
        config.arena_clean_entries = vec![HotEntry::enforced("cluster/src/sim.rs", "step")];
        let (findings, _) = setup(
            &[(
                "crates/cluster/src/sim.rs",
                "pub fn step(n: usize) -> usize { let v = vec![0u32; n]; v.len() }\n",
            )],
            config,
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        let f = &findings[0];
        assert_eq!(f.code, "A008");
        assert_eq!(f.kind, "non-arena-alloc");
        assert!(f.enforced, "arena-clean findings are hard failures");
        assert!(f.message.contains("vec!"), "{}", f.message);
        assert!(f.message.contains("escape: local"), "{}", f.message);
    }

    #[test]
    fn clean_registered_fn_reports_nothing() {
        let mut config = AnalysisConfig::bare();
        config.arena_clean_entries = vec![HotEntry::enforced("cluster/src/sim.rs", "step")];
        let (findings, _) = setup(
            &[(
                "crates/cluster/src/sim.rs",
                "pub fn step(buf: &mut Vec<u32>, n: usize) { buf.clear(); buf.push(n as u32); }\n",
            )],
            config,
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn arena_crate_allocations_are_sanctioned() {
        let mut config = AnalysisConfig::bare();
        config.arena_crates = vec!["arena".to_owned()];
        config.arena_clean_entries = vec![HotEntry::enforced("cluster/src/sim.rs", "step")];
        let (findings, _) = setup(
            &[
                (
                    "crates/arena/src/lib.rs",
                    "pub fn take(n: usize) -> Vec<u32> { Vec::with_capacity(n) }\n",
                ),
                (
                    "crates/cluster/src/sim.rs",
                    "pub fn step(n: usize) -> usize { let v = anubis_arena::take(n); v.len() }\n",
                ),
            ],
            config,
        );
        assert!(
            findings.is_empty(),
            "pooled growth inside the arena is sanctioned: {findings:#?}"
        );
    }

    #[test]
    fn only_direct_sites_count_against_arena_clean() {
        // The callee allocates, but enforcement is direct-site only —
        // transitive budgets belong to A003.
        let mut config = AnalysisConfig::bare();
        config.arena_clean_entries = vec![HotEntry::enforced("cluster/src/sim.rs", "step")];
        let (findings, _) = setup(
            &[(
                "crates/cluster/src/sim.rs",
                "pub fn step(x: &[u32]) -> usize { helper(x) }\n\
                 fn helper(x: &[u32]) -> usize { x.to_vec().len() }\n",
            )],
            config,
        );
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn closure_sites_inside_registered_fn_are_direct() {
        let mut config = AnalysisConfig::bare();
        config.arena_clean_entries = vec![HotEntry::enforced("cluster/src/sim.rs", "step")];
        let (findings, _) = setup(
            &[(
                "crates/cluster/src/sim.rs",
                "pub fn step(xs: &[u32]) -> usize { xs.iter().map(|x| vec![*x].len()).sum() }\n",
            )],
            config,
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].func, "step");
    }

    #[test]
    fn arena_able_reports_local_sites_in_hot_reach_with_path() {
        let mut config = AnalysisConfig::bare();
        config.hot_entries = vec![HotEntry::tracked("nn/src/mlp.rs", "forward_into")];
        let (_, report) = setup(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[u32]) -> usize { helper(x) }\n\
                 fn helper(x: &[u32]) -> usize { let v = x.to_vec(); v.len() }\n",
            )],
            config,
        );
        assert_eq!(report.len(), 1, "{report:#?}");
        assert_eq!(report[0].kind, "to_vec");
        assert_eq!(report[0].func, "helper");
        assert!(report[0].via.contains("forward_into -> helper"));
    }

    #[test]
    fn escaping_sites_are_not_arena_able() {
        let mut config = AnalysisConfig::bare();
        config.hot_entries = vec![HotEntry::tracked("nn/src/mlp.rs", "forward_into")];
        let (_, report) = setup(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[u32]) -> Vec<u32> { x.to_vec() }\n",
            )],
            config,
        );
        assert!(report.is_empty(), "returned value escapes: {report:#?}");
    }
}

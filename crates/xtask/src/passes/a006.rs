//! A006 — nondeterminism taint reaching a deterministic root.
//!
//! Paper figures and fleet validation verdicts must reproduce
//! bit-for-bit. A004 flags functions that *directly* touch a
//! nondeterminism source; this pass is its interprocedural upgrade: using
//! the effect summaries of [`crate::dataflow`], it reports every
//! *deterministic root* that can reach a taint source through any call
//! chain, with the full path printed.
//!
//! Deterministic roots are:
//!
//! - every non-test function that calls an `anubis-parallel` entry point
//!   ([`AnalysisConfig::parallel_entries`]) — closures are owned by the
//!   calling function in the token model, so rooting the caller covers
//!   the chunk bodies the executor's determinism contract depends on;
//! - every *public* non-test function in a path from
//!   [`AnalysisConfig::deterministic_root_paths`] — the experiment
//!   renderers (`bench/src/experiments/`) whose output is byte-compared,
//!   and the obs ring-buffer writers whose traces are. Private helpers
//!   are covered transitively through the public roots.
//!
//! Taint sources are the five [`Taint`] kinds: `std::env` reads outside
//! the `anubis-config` shim, `Instant`/`SystemTime` outside the obs
//! facade, std hash-container iteration, thread-identity probes outside
//! the executor, and float reductions over unordered iteration. One
//! finding per (root, taint kind), baseline-gated like A001 — and the
//! committed baseline holds zero of them: new taint on a deterministic
//! root fails CI immediately.

use super::{AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::dataflow::{Summaries, TAINTS};
use crate::model::{CallKind, Workspace};
use std::collections::BTreeSet;

/// Runs the pass.
pub fn run(
    ws: &Workspace,
    _graph: &CallGraph,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Vec<Finding> {
    let mut roots: BTreeSet<usize> = BTreeSet::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let file_path = &ws.files[item.file].path;
        // Only *public* fns root a path-designated file: the renderers and
        // writers whose output is byte-compared. Their private helpers are
        // covered transitively — rooting them too would report the same
        // taint once per frame of the call chain.
        let in_root_path = item.is_public
            && config
                .deterministic_root_paths
                .iter()
                .any(|p| file_path.contains(p.as_str()));
        let calls_executor = item.calls.iter().any(|c| {
            matches!(c.kind, CallKind::Free | CallKind::Qualified)
                && config.parallel_entries.contains(&c.name)
        });
        // The executor's own internals are sanctioned (and covered by the
        // A007 exemption rationale): chunk dispatch is not a root.
        let in_parallel_crate = config
            .parallel_crates
            .iter()
            .any(|c| *c == ws.files[item.file].crate_name);
        if (in_root_path || calls_executor) && !in_parallel_crate {
            roots.insert(index);
        }
    }

    let mut findings = Vec::new();
    for &root in &roots {
        let item = &ws.fns[root];
        for taint in TAINTS {
            let dist = summaries.taint_dist(root, taint);
            if dist == usize::MAX {
                continue;
            }
            let path = summaries.taint_path(root, taint);
            let &terminal = path.last().expect("non-empty path for reachable taint");
            let site = summaries
                .taint_site(terminal, taint)
                .expect("path terminal has a direct site");
            let via = path
                .iter()
                .map(|&i| ws.fns[i].qual_name())
                .collect::<Vec<_>>()
                .join(" -> ");
            let where_ = format!("{}:{}", ws.files[ws.fns[terminal].file].path, site.line);
            let message = if dist == 0 {
                format!(
                    "deterministic root `{}` directly touches nondeterminism source `{}` ({where_})",
                    item.qual_name(),
                    site.what
                )
            } else {
                format!(
                    "deterministic root `{}` reaches nondeterminism source `{}` ({where_}) via {via}",
                    item.qual_name(),
                    site.what
                )
            };
            findings.push(Finding {
                code: "A006",
                path: ws.files[item.file].path.clone(),
                line: if dist == 0 { site.line } else { item.line },
                func: item.qual_name(),
                kind: taint.slug().to_owned(),
                message,
                enforced: false,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let config = AnalysisConfig::default();
        let summaries = Summaries::compute(&ws, &graph, &config);
        run(&ws, &graph, &summaries, &config)
    }

    #[test]
    fn env_read_two_calls_deep_taints_an_experiment_renderer() {
        let findings = analyze(&[(
            "crates/bench/src/experiments/fig0.rs",
            "pub fn run() { helper(); }\n\
             fn helper() { deep(); }\n\
             fn deep() { let _ = std::env::var(\"HOME\"); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        let f = &findings[0];
        assert_eq!(f.code, "A006");
        assert_eq!(f.kind, "env-read");
        assert_eq!(f.func, "run");
        assert!(f.message.contains("run -> helper -> deep"), "{}", f.message);
        assert!(f.message.contains("std::env::var"), "{}", f.message);
    }

    #[test]
    fn parallel_caller_with_hash_iteration_in_chunk_body_is_flagged() {
        let findings = analyze(&[(
            "crates/traces/src/lib.rs",
            "use std::collections::HashMap;\n\
             pub fn render(m: &HashMap<u32, f64>) -> Vec<f64> {\n\
                 anubis_parallel::map_indexed(4, 0, |_i| m.values().copied().next().unwrap_or(0.0))\n\
             }\n",
        )]);
        // The chunk closure is owned by `render`, so the HashIter site is
        // a distance-0 taint on the root.
        let hash: Vec<_> = findings
            .iter()
            .filter(|f| f.kind == "hash-iteration")
            .collect();
        assert_eq!(hash.len(), 1, "{findings:#?}");
        assert!(hash[0].message.contains("directly touches"));
    }

    #[test]
    fn clean_roots_report_nothing() {
        let findings = analyze(&[(
            "crates/bench/src/experiments/fig0.rs",
            "pub fn run(v: &[f64]) -> f64 {\n\
                 anubis_parallel::reduce_chunks(v, 64, 0, |_, c| c.iter().sum::<f64>(), |a, b| a + b).unwrap_or(0.0)\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn sanctioned_facades_do_not_taint_roots() {
        let findings = analyze(&[
            (
                "crates/bench/src/experiments/fig0.rs",
                "pub fn run() { anubis_config::enabled(\"X\"); anubis_obs::stamp(); }\n",
            ),
            (
                "crates/config/src/lib.rs",
                "pub fn enabled(name: &str) -> bool { std::env::var(name).is_ok() }\n",
            ),
            (
                "crates/obs/src/wall.rs",
                "use std::time::Instant;\npub fn stamp() { let _ = Instant::now(); }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn non_root_functions_are_not_reported() {
        // The same env read, but nothing roots the caller: no findings.
        let findings = analyze(&[(
            "crates/workload/src/lib.rs",
            "pub fn top() { let _ = std::env::var(\"HOME\"); }\n",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

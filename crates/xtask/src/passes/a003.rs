//! A003 — hot-path allocation.
//!
//! PR 2's 5.9× speedup came from hoisting allocations out of the Cox-Time
//! gradient loop, the CDF similarity matrix, and the MLP forward/backward
//! kernels. This pass guards that win: starting from a registry of hot
//! entry points ([`AnalysisConfig::hot_entries`]), it walks the call graph
//! *forward* and flags every allocating construct in any reachable
//! function — `Vec::new`/`with_capacity`, `vec!`, `to_vec`, `clone`,
//! `collect`, `format!`, `Box::new`, `to_owned`, `to_string`.
//!
//! The allocation sites themselves come from the interprocedural effect
//! summaries ([`crate::dataflow`]): each function's direct sites are
//! extracted once, and [`Summaries::alloc_dist`] propagates the
//! allocation effect through the call graph, so an enforced entry's
//! verdict — allocation-free or not — is a summary lookup that wrapper
//! shuffles cannot dodge (moving the allocation one call deeper changes
//! the distance, never the verdict).
//!
//! The pass cannot tell a one-time setup allocation from a per-iteration
//! one (no loop structure at the token level); existing deliberate
//! allocations live in the baseline, and the gate fires only when *new*
//! ones appear. Each finding's message carries the call path from the hot
//! entry so reviewers can judge whether the allocation sits on the
//! measured path.

use super::{path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::dataflow::Summaries;
use crate::model::Workspace;

/// Runs the pass: flags the summary-recorded allocation sites of every
/// function reachable from a hot entry point. Findings reachable from an
/// *enforced* entry are marked [`Finding::enforced`] and become hard
/// failures downstream.
pub fn run(
    ws: &Workspace,
    graph: &CallGraph,
    summaries: &Summaries,
    config: &AnalysisConfig,
) -> Vec<Finding> {
    let entry_fns = |enforced_only: bool| -> Vec<usize> {
        ws.fns
            .iter()
            .enumerate()
            .filter(|(_, item)| {
                !item.in_test
                    && config.hot_entries.iter().any(|entry| {
                        (!enforced_only || entry.enforce)
                            && item.name == entry.func
                            && ws.files[item.file].path.contains(entry.path.as_str())
                    })
            })
            .map(|(i, _)| i)
            .collect()
    };
    let roots = entry_fns(false);
    let reach = graph.reach(&roots);
    let enforced_reach = graph.reach(&entry_fns(true));

    let mut findings = Vec::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test || reach.dist[index] == usize::MAX {
            continue;
        }
        // The summary distance and the forward reach agree by
        // construction: both walk the same graph. An entry is
        // allocation-free exactly when `summaries.alloc_dist(entry)` is
        // `usize::MAX`; the per-site findings below reproduce that
        // verdict one allocation at a time.
        let enforced = enforced_reach.dist[index] != usize::MAX;
        // Path from the nearest hot entry down to this function.
        let mut entry_path = reach.path_from(index);
        entry_path.reverse();
        let via = path_string(ws, &entry_path);
        let file_path = &ws.files[item.file].path;

        for site in &summaries.alloc_sites[index] {
            let message = match &site.ctor {
                Some(ty) => format!(
                    "turbofish `{ty}::<..>` constructor in `{}`, reachable from hot entry via {via}",
                    item.qual_name()
                ),
                None => format!(
                    "`{}` allocates in `{}`, reachable from hot entry via {via}",
                    site.kind,
                    item.qual_name()
                ),
            };
            findings.push(Finding {
                code: "A003",
                path: file_path.clone(),
                line: site.line,
                func: item.qual_name(),
                kind: site.kind.clone(),
                message,
                enforced,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)], entries: &[(&str, &str)]) -> Vec<Finding> {
        analyze_entries(
            files,
            &entries
                .iter()
                .map(|(p, f)| super::super::HotEntry::tracked(p, f))
                .collect::<Vec<_>>(),
        )
    }

    fn analyze_entries(files: &[(&str, &str)], entries: &[super::super::HotEntry]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let mut config = AnalysisConfig::bare();
        config.hot_entries = entries.to_vec();
        let summaries = Summaries::compute(&ws, &graph, &config);
        run(&ws, &graph, &summaries, &config)
    }

    #[test]
    fn allocation_in_callee_of_hot_entry_is_flagged_with_path() {
        let findings = analyze(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[f64]) { helper(x); }\n\
                 fn helper(x: &[f64]) { let _y = x.to_vec(); }\n",
            )],
            &[("nn/src/mlp.rs", "forward_into")],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "to_vec");
        assert_eq!(findings[0].func, "helper");
        assert!(findings[0].message.contains("forward_into -> helper"));
    }

    #[test]
    fn allocation_outside_hot_reachability_is_not_flagged() {
        let findings = analyze(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[f64]) -> f64 { x[0] }\n\
                 pub fn cold() { let _v: Vec<f64> = Vec::new(); }\n",
            )],
            &[("nn/src/mlp.rs", "forward_into")],
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn enforced_entries_mark_their_reach_enforced() {
        use super::super::HotEntry;
        let files = [(
            "crates/nn/src/mlp.rs",
            "pub fn forward_into(x: &[f64]) { helper(x); }\n\
             pub fn cold_path(x: &[f64]) { helper(x); }\n\
             fn helper(x: &[f64]) { let _y = x.to_vec(); }\n",
        )];
        // Tracked entry only: finding is not enforced.
        let tracked = analyze_entries(&files, &[HotEntry::tracked("nn/src/mlp.rs", "cold_path")]);
        assert_eq!(tracked.len(), 1);
        assert!(!tracked[0].enforced);
        // An enforced entry sharing the callee upgrades the finding.
        let findings = analyze_entries(
            &files,
            &[
                HotEntry::tracked("nn/src/mlp.rs", "cold_path"),
                HotEntry::enforced("nn/src/mlp.rs", "forward_into"),
            ],
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].enforced, "{findings:#?}");
    }

    #[test]
    fn vec_new_and_macros_in_entry_itself_are_flagged() {
        let findings = analyze(
            &[(
                "crates/metrics/src/distance.rs",
                "pub fn integrate_ecdf() { let mut v = Vec::new(); v.push(format!(\"x\")); }\n",
            )],
            &[("metrics/src/distance.rs", "integrate_ecdf")],
        );
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert!(kinds.contains(&"Vec::new"));
        assert!(kinds.contains(&"format!"));
    }

    #[test]
    fn wrapper_shuffle_cannot_dodge_enforcement() {
        use super::super::HotEntry;
        // The allocation sits two wrappers deep; the summary distance
        // still reaches it, so the enforced verdict is unchanged.
        let findings = analyze_entries(
            &[(
                "crates/metrics/src/distance.rs",
                "pub fn integrate_ecdf(x: &[f64]) { shim(x); }\n\
                 fn shim(x: &[f64]) { deep(x); }\n\
                 fn deep(x: &[f64]) { let _v = x.to_vec(); }\n",
            )],
            &[HotEntry::enforced(
                "metrics/src/distance.rs",
                "integrate_ecdf",
            )],
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].enforced);
        assert!(findings[0]
            .message
            .contains("integrate_ecdf -> shim -> deep"));
    }
}

//! A003 — hot-path allocation.
//!
//! PR 2's 5.9× speedup came from hoisting allocations out of the Cox-Time
//! gradient loop, the CDF similarity matrix, and the MLP forward/backward
//! kernels. This pass guards that win: starting from a registry of hot
//! entry points ([`AnalysisConfig::hot_entries`]), it walks the call graph
//! *forward* and flags every allocating construct in any reachable
//! function — `Vec::new`/`with_capacity`, `vec!`, `to_vec`, `clone`,
//! `collect`, `format!`, `Box::new`, `to_owned`, `to_string`.
//!
//! The pass cannot tell a one-time setup allocation from a per-iteration
//! one (no loop structure at the token level); existing deliberate
//! allocations live in the baseline, and the gate fires only when *new*
//! ones appear. Each finding's message carries the call path from the hot
//! entry so reviewers can judge whether the allocation sits on the
//! measured path.

use super::{path_string, AnalysisConfig, Finding};
use crate::callgraph::CallGraph;
use crate::model::{CallKind, TokenKind, Workspace};

/// Method names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];

/// Macro names that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::fn` pairs that allocate.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "with_capacity"),
];

/// Runs the pass: flags allocations in every function reachable from a
/// hot entry point. Findings reachable from an *enforced* entry are
/// marked [`Finding::enforced`] and become hard failures downstream.
pub fn run(ws: &Workspace, graph: &CallGraph, config: &AnalysisConfig) -> Vec<Finding> {
    let entry_fns = |enforced_only: bool| -> Vec<usize> {
        ws.fns
            .iter()
            .enumerate()
            .filter(|(_, item)| {
                !item.in_test
                    && config.hot_entries.iter().any(|entry| {
                        (!enforced_only || entry.enforce)
                            && item.name == entry.func
                            && ws.files[item.file].path.contains(entry.path.as_str())
                    })
            })
            .map(|(i, _)| i)
            .collect()
    };
    let roots = entry_fns(false);
    let reach = graph.reach(&roots);
    let enforced_reach = graph.reach(&entry_fns(true));

    let mut findings = Vec::new();
    for (index, item) in ws.fns.iter().enumerate() {
        if item.in_test || reach.dist[index] == usize::MAX {
            continue;
        }
        let enforced = enforced_reach.dist[index] != usize::MAX;
        // Path from the nearest hot entry down to this function.
        let mut entry_path = reach.path_from(index);
        entry_path.reverse();
        let via = path_string(ws, &entry_path);
        let file_path = &ws.files[item.file].path;

        for call in &item.calls {
            let kind = match call.kind {
                CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
                    Some(call.name.clone())
                }
                CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
                    Some(format!("{}!", call.name))
                }
                CallKind::Qualified => call.qualifier.as_ref().and_then(|q| {
                    ALLOC_QUALIFIED
                        .iter()
                        .find(|(ty, f)| q == ty && call.name == *f)
                        .map(|(ty, f)| format!("{ty}::{f}"))
                }),
                _ => None,
            };
            if let Some(kind) = kind {
                findings.push(Finding {
                    code: "A003",
                    path: file_path.clone(),
                    line: call.line,
                    func: item.qual_name(),
                    kind: kind.clone(),
                    message: format!(
                        "`{kind}` allocates in `{}`, reachable from hot entry via {via}",
                        item.qual_name()
                    ),
                    enforced,
                });
            }
        }
        // `Vec::new` etc. appear as qualified calls already; nothing else
        // to token-scan, but keep `Box` in expressions like `Box::<T>::new`
        // covered: the model records the qualifier as the segment before
        // the call name, which `::<T>` turbofish breaks. Catch those by a
        // direct token scan.
        let tokens = &ws.files[item.file].tokens;
        for (i, token) in ws.body_tokens(item) {
            if token.kind != TokenKind::Ident {
                continue;
            }
            // `.collect::<Vec<_>>()` — turbofish method calls have `::`
            // after the name, so the model's call extractor (which wants
            // `(` immediately after) misses them.
            if ALLOC_METHODS.contains(&token.text.as_str())
                && i > 0
                && tokens[i - 1].text == "."
                && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            {
                findings.push(Finding {
                    code: "A003",
                    path: file_path.clone(),
                    line: ws.line_of(item, i),
                    func: item.qual_name(),
                    kind: token.text.clone(),
                    message: format!(
                        "`{}` allocates in `{}`, reachable from hot entry via {via}",
                        token.text,
                        item.qual_name()
                    ),
                    enforced,
                });
                continue;
            }
            if (token.text == "Vec" || token.text == "Box" || token.text == "String")
                && tokens.get(i + 1).is_some_and(|t| t.text == "::")
                && tokens.get(i + 2).is_some_and(|t| t.text == "<")
            {
                findings.push(Finding {
                    code: "A003",
                    path: file_path.clone(),
                    line: ws.line_of(item, i),
                    func: item.qual_name(),
                    kind: format!("{}::turbofish", token.text),
                    message: format!(
                        "turbofish `{}::<..>` constructor in `{}`, reachable from hot entry via {via}",
                        token.text,
                        item.qual_name()
                    ),
                    enforced,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::Workspace;

    fn analyze(files: &[(&str, &str)], entries: &[(&str, &str)]) -> Vec<Finding> {
        analyze_entries(
            files,
            &entries
                .iter()
                .map(|(p, f)| super::super::HotEntry::tracked(p, f))
                .collect::<Vec<_>>(),
        )
    }

    fn analyze_entries(files: &[(&str, &str)], entries: &[super::super::HotEntry]) -> Vec<Finding> {
        let ws = Workspace::from_sources(files.iter().copied());
        let graph = CallGraph::build(&ws);
        let config = AnalysisConfig {
            gated_crates: Vec::new(),
            hot_entries: entries.to_vec(),
            timing_facades: Vec::new(),
            lifecycle_crates: Vec::new(),
            state_types: Vec::new(),
        };
        run(&ws, &graph, &config)
    }

    #[test]
    fn allocation_in_callee_of_hot_entry_is_flagged_with_path() {
        let findings = analyze(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[f64]) { helper(x); }\n\
                 fn helper(x: &[f64]) { let _y = x.to_vec(); }\n",
            )],
            &[("nn/src/mlp.rs", "forward_into")],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, "to_vec");
        assert_eq!(findings[0].func, "helper");
        assert!(findings[0].message.contains("forward_into -> helper"));
    }

    #[test]
    fn allocation_outside_hot_reachability_is_not_flagged() {
        let findings = analyze(
            &[(
                "crates/nn/src/mlp.rs",
                "pub fn forward_into(x: &[f64]) -> f64 { x[0] }\n\
                 pub fn cold() { let _v: Vec<f64> = Vec::new(); }\n",
            )],
            &[("nn/src/mlp.rs", "forward_into")],
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn enforced_entries_mark_their_reach_enforced() {
        use super::super::HotEntry;
        let files = [(
            "crates/nn/src/mlp.rs",
            "pub fn forward_into(x: &[f64]) { helper(x); }\n\
             pub fn cold_path(x: &[f64]) { helper(x); }\n\
             fn helper(x: &[f64]) { let _y = x.to_vec(); }\n",
        )];
        // Tracked entry only: finding is not enforced.
        let tracked = analyze_entries(&files, &[HotEntry::tracked("nn/src/mlp.rs", "cold_path")]);
        assert_eq!(tracked.len(), 1);
        assert!(!tracked[0].enforced);
        // An enforced entry sharing the callee upgrades the finding.
        let findings = analyze_entries(
            &files,
            &[
                HotEntry::tracked("nn/src/mlp.rs", "cold_path"),
                HotEntry::enforced("nn/src/mlp.rs", "forward_into"),
            ],
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].enforced, "{findings:#?}");
    }

    #[test]
    fn vec_new_and_macros_in_entry_itself_are_flagged() {
        let findings = analyze(
            &[(
                "crates/metrics/src/distance.rs",
                "pub fn integrate_ecdf() { let mut v = Vec::new(); v.push(format!(\"x\")); }\n",
            )],
            &[("metrics/src/distance.rs", "integrate_ecdf")],
        );
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind.as_str()).collect();
        assert!(kinds.contains(&"Vec::new"));
        assert!(kinds.contains(&"format!"));
    }
}

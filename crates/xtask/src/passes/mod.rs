//! Graph-aware analysis passes over the workspace model.
//!
//! Each pass walks the [`Workspace`](crate::model::Workspace) and the
//! [`CallGraph`](crate::callgraph::CallGraph) and emits [`Finding`]s with a
//! stable diagnostic code:
//!
//! | Code | Pass | Question answered |
//! |------|------|-------------------|
//! | A001 | [`a001`] | Which public fleet-facing APIs can transitively panic? |
//! | A002 | [`a002`] | Where are floats compared or ordered NaN-unsafely? |
//! | A003 | [`a003`] | What allocates inside the measured hot paths? |
//! | A004 | [`a004`] | Where can nondeterminism leak into results? |
//!
//! Findings are keyed by *(code, file, function, kind)* — deliberately not
//! by line — so the committed baseline survives unrelated edits to the
//! same file. Identical keys are aggregated by count in the baseline.

pub mod a001;
pub mod a002;
pub mod a003;
pub mod a004;

use crate::callgraph::CallGraph;
use crate::checks::GATED_CRATES;
use crate::model::Workspace;
use std::fmt;

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable diagnostic code (`A001`…`A004`).
    pub code: &'static str,
    /// Workspace-relative file of the flagged function.
    pub path: String,
    /// 1-based line of the flagged construct (not part of the key).
    pub line: usize,
    /// Qualified name of the flagged function (`Type::name` or `name`).
    pub func: String,
    /// Short machine-readable slug for the finding flavor
    /// (`panic-reach`, `float-eq`, `clone`, `time-source`, …).
    pub kind: String,
    /// Human-readable explanation, including the call path where the pass
    /// computes one.
    pub message: String,
}

impl Finding {
    /// The baseline key: code, file, function, and kind — line-free so the
    /// baseline is stable under refactors that only move code.
    pub fn key(&self) -> String {
        format!("{} {} {} {}", self.code, self.path, self.func, self.kind)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.path, self.line, self.code, self.kind, self.message
        )
    }
}

/// Tunable inputs of an analysis run. [`AnalysisConfig::default`] matches
/// the real workspace; fixtures construct custom configs.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Crate directory names whose public APIs are A001/A004 roots.
    pub gated_crates: Vec<String>,
    /// Hot entry points for A003 as `(path substring, fn name)` pairs.
    pub hot_entries: Vec<(String, String)>,
    /// Crate directory names sanctioned to read the wall clock — the
    /// observability facade (`anubis-obs`, which confines `Instant` to a
    /// feature-gated module). A004's time-source scan skips these; every
    /// other crate must go through the facade.
    pub timing_facades: Vec<String>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        let hot = [
            // Cox-Time gradient accumulation (chunk closures are owned by
            // `fit`, so scanning from it covers the chunk bodies too).
            ("selector/src/coxtime.rs", "fit"),
            // CDF similarity matrix and its integration kernel.
            ("metrics/src/distance.rs", "pairwise_similarity_matrix"),
            (
                "metrics/src/distance.rs",
                "pairwise_similarity_matrix_threads",
            ),
            ("metrics/src/distance.rs", "upper_triangle_similarities"),
            ("metrics/src/distance.rs", "integrate_ecdf"),
            // MLP forward/backward and the optimizer step.
            ("nn/src/mlp.rs", "forward_into"),
            ("nn/src/mlp.rs", "forward_scalar_into"),
            ("nn/src/mlp.rs", "backward_flat"),
            ("nn/src/adam.rs", "step_flat"),
            // Deterministic parallel executor: every chunk body runs here.
            ("parallel/src/lib.rs", "execute"),
            ("parallel/src/lib.rs", "map_chunks"),
            ("parallel/src/lib.rs", "map_chunks_mut"),
            ("parallel/src/lib.rs", "map_items"),
            ("parallel/src/lib.rs", "map_indexed"),
            ("parallel/src/lib.rs", "reduce_chunks"),
        ];
        Self {
            gated_crates: GATED_CRATES.iter().map(|c| (*c).to_owned()).collect(),
            hot_entries: hot
                .iter()
                .map(|(p, f)| ((*p).to_owned(), (*f).to_owned()))
                .collect(),
            timing_facades: vec!["obs".to_owned()],
        }
    }
}

/// Runs all four passes and returns findings sorted by (code, path, line,
/// kind, func) — a deterministic order suitable for diffing.
pub fn run_analysis(ws: &Workspace, config: &AnalysisConfig) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let mut findings = a001::run(ws, &graph, config);
    findings.extend(a002::run(ws));
    findings.extend(a003::run(ws, &graph, config));
    findings.extend(a004::run(ws, &graph, config));
    findings.sort_by(|a, b| {
        (a.code, &a.path, a.line, &a.kind, &a.func)
            .cmp(&(b.code, &b.path, b.line, &b.kind, &b.func))
    });
    findings
}

/// Renders a call path of function indices as `a -> B::b -> c`.
pub(crate) fn path_string(ws: &Workspace, path: &[usize]) -> String {
    path.iter()
        .map(|&i| ws.fns[i].qual_name())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Whether the function at `index` is a public API of a gated crate — a
/// root for reachability passes.
pub(crate) fn is_gated_public_root(ws: &Workspace, index: usize, config: &AnalysisConfig) -> bool {
    let item = &ws.fns[index];
    item.is_public
        && !item.in_test
        && config
            .gated_crates
            .iter()
            .any(|c| *c == ws.files[item.file].crate_name)
}
